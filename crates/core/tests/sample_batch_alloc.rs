//! Allocation-regression gate for the sampling hot path (DESIGN.md §11).
//!
//! `ThreadSampler::sample_batch` is contractually allocation-free in steady
//! state: every buffer the bidirectional search needs lives in
//! `TraversalScratch` (or the sampler's pair batch), and after a warm-up
//! batch has grown them to working-set size, a batch must never touch the
//! heap. This test registers a counting global allocator for the whole test
//! binary and pins the contract to exactly zero.
//!
//! The gate holds in debug builds too — capacity reuse is not an optimizer
//! artifact — so it runs under plain `cargo test`. **Waiver path:** builds
//! whose allocator behavior is intentionally not representative (sanitizer
//! instrumentation, allocation-profiling wrappers, miri) can skip the gate
//! by setting `KADABRA_SKIP_ALLOC_GATE=1`; the release-mode
//! `cargo xtask bench --kernel --check` CI job re-checks the same property
//! independently, so a skip here never un-gates a merge.

use kadabra_alloctrack::CountingAlloc;
use kadabra_core::ThreadSampler;
use kadabra_graph::components::largest_component;
use kadabra_graph::generators::{rmat, RmatConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn sample_batch_is_allocation_free_after_warmup() {
    if std::env::var("KADABRA_SKIP_ALLOC_GATE").is_ok_and(|v| v == "1") {
        eprintln!("KADABRA_SKIP_ALLOC_GATE=1: skipping the allocation gate");
        return;
    }
    // The fixed perf instance family at test-friendly scale (~1k vertices).
    let (g, _) = largest_component(&rmat(RmatConfig::graph500(10, 8, 1)));
    let (g, _) = g.relabel_by_degree();
    let batch: u64 = 4_096;

    let mut sampler = ThreadSampler::new(g.num_nodes(), 7, 0, 0);
    let mut interior_visits = 0u64;
    // Warm-up: one batch of the measured size brings the pair buffer and all
    // scratch buffers to steady-state capacity.
    sampler.sample_batch(&g, batch, |interior| interior_visits += interior.len() as u64);

    // The counters are process-wide; with a single test in this binary only
    // the libtest harness could bleed allocations into the window, but retry
    // a few times anyway — a real allocation in the hot path fails every
    // attempt.
    let mut last = CountingAlloc::new().counts(); // zeroed placeholder
    let zero_seen = (0..8).any(|_| {
        let before = ALLOC.counts();
        sampler.sample_batch(&g, batch, |interior| interior_visits += interior.len() as u64);
        last = ALLOC.counts().since(&before);
        last.allocs == 0
    });
    assert!(interior_visits > 0, "the batches must produce interior vertices");
    assert!(
        zero_seen,
        "sample_batch allocated in steady state: {last:?} over a batch of {batch} \
         (see the module docs for the KADABRA_SKIP_ALLOC_GATE waiver)"
    );
}
