//! Property tests of [`SampleLedger`] checkpoint serialization (ISSUE 7):
//! for random confirm histories, `to_bytes`/`from_bytes` must round-trip the
//! `[Σc̃, τ]` state exactly — including under concurrent readers restoring
//! from the same image while refinement continues — and every single-byte
//! corruption of an image must be rejected.

use kadabra_core::{CheckpointError, SampleLedger};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random frame stream (the test's own LCG, so case
/// shrinking stays meaningful).
fn frames(n: usize, count: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..count)
        .map(|_| {
            (0..=n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % 97
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// checkpoint → crash → restore → continued refinement: the restored
    /// ledger must equal the original at checkpoint time, and confirming the
    /// same suffix on both must conserve `[Σc̃, τ]` word for word.
    #[test]
    fn round_trip_conserves_state_through_continued_refinement(
        n in 1usize..40,
        total in 1usize..12,
        cut_raw in 0usize..12,
        seed in 0u64..1024,
    ) {
        let cut = cut_raw % total;
        let all = frames(n, total, seed);
        let mut live = SampleLedger::new(n);
        for f in &all[..cut] {
            live.confirm(f);
        }
        let image = live.to_bytes();
        let mut restored = SampleLedger::from_bytes(&image).expect("valid image");
        prop_assert_eq!(restored.frame(), live.frame(), "restore must be bit-exact");
        prop_assert_eq!(restored.tau(), live.tau());
        // The "crash": the live ledger keeps going; so does the restored
        // one. Conservation means they stay identical word for word.
        for f in &all[cut..] {
            live.confirm(f);
            restored.confirm(f);
        }
        prop_assert_eq!(restored.frame(), live.frame(), "post-restore refinement diverged");
        let expect_tau: u64 = all.iter().map(|f| f[n]).sum();
        prop_assert_eq!(live.tau(), expect_tau, "τ not conserved");
    }

    /// Any single-byte corruption of a checkpoint image must be rejected
    /// with a typed error, never silently restored.
    #[test]
    fn single_byte_corruption_is_always_rejected(
        n in 1usize..24,
        rounds in 1usize..6,
        seed in 0u64..1024,
        victim in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let mut l = SampleLedger::new(n);
        for f in frames(n, rounds, seed) {
            l.confirm(&f);
        }
        let good = l.to_bytes();
        let mut bad = good.clone();
        let at = victim % bad.len();
        bad[at] ^= flip;
        match SampleLedger::from_bytes(&bad) {
            Ok(_) => prop_assert!(false, "corruption at byte {} accepted", at),
            Err(
                CheckpointError::Truncated | CheckpointError::BadMagic | CheckpointError::Corrupt,
            ) => {}
        }
        // And the pristine image still restores.
        prop_assert!(SampleLedger::from_bytes(&good).is_ok());
    }

    /// One image, many concurrent restorers: readers sharing the bytes while
    /// the writer keeps refining its own ledger must each reconstruct the
    /// checkpoint-time state exactly.
    #[test]
    fn concurrent_readers_restore_the_same_state(
        n in 1usize..24,
        rounds in 1usize..6,
        seed in 0u64..1024,
    ) {
        let mut live = SampleLedger::new(n);
        for f in frames(n, rounds, seed) {
            live.confirm(&f);
        }
        let image = Arc::new(live.to_bytes());
        let want = live.frame().to_vec();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let image = Arc::clone(&image);
                std::thread::spawn(move || {
                    SampleLedger::from_bytes(&image).expect("valid image").frame().to_vec()
                })
            })
            .collect();
        // The writer refines past the checkpoint while readers restore.
        for f in frames(n, rounds, seed ^ 0xABCD) {
            live.confirm(&f);
        }
        for r in readers {
            let got = r.join().expect("reader thread");
            prop_assert_eq!(&got, &want, "a concurrent restore diverged");
        }
        prop_assert!(live.tau() >= want[n], "the writer's τ went backwards");
    }
}
