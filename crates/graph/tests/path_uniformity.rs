//! Statistical conformance suite for the bidirectional path sampler
//! (DESIGN.md §11): `sample_shortest_path` must draw **uniformly** from the
//! set of shortest s-t paths — the property the KADABRA (ε, δ) guarantee
//! stands on — across every corner-case topology the meeting-cut logic has:
//! adjacent endpoints (empty interior), disconnected endpoints, and cuts
//! with several vertices of unequal path multiplicity.
//!
//! Each uniformity test takes ≥50 000 seed-pinned samples per vertex pair
//! and applies a chi-square goodness-of-fit test against the brute-force
//! enumeration of the path set; the aggregate test additionally reconciles
//! empirical interior frequencies with `brute_force_betweenness` from
//! `kadabra-baselines` (an enumerator independent of the sampler's σ
//! bookkeeping). Thresholds sit at α ≈ 1e-4 — with pinned seeds a failure
//! means the sampler's distribution moved, not bad luck.

use kadabra_baselines::brute_force_betweenness;
use kadabra_graph::bibfs::{enumerate_shortest_paths, sample_shortest_path, SearchStats};
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::generators::{grid, GridConfig};
use kadabra_graph::scratch::TraversalScratch;
use kadabra_graph::{BatchedBiBfs, Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Samples per tested vertex pair (the ISSUE floor is 50k).
const SAMPLES: u64 = 50_000;

/// Chi-square critical value at `z = 4` normal deviations (α ≈ 3e-5) via the
/// Wilson–Hilferty approximation — accurate to a few percent for df ≥ 2,
/// and the margin is absorbed by the pinned seeds.
fn chi2_critical(df: f64) -> f64 {
    let z = 4.0;
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3)
}

/// Draws `SAMPLES` paths for `(s, t)` and chi-square-tests the empirical
/// path distribution against uniform over the enumerated path set. Also pins
/// the per-sample `distance` / `num_paths` metadata to the oracle.
fn assert_uniform_over_paths(g: &Graph, s: NodeId, t: NodeId, seed: u64) {
    let oracle = enumerate_shortest_paths(g, s, t);
    assert!(!oracle.is_empty(), "pair ({s},{t}) must be connected for this helper");
    // Path length in hops = interior vertices + the final hop.
    let expected_len = oracle[0].len() as u32 + 1;
    // The sampler reports the interior in side-of-expansion order, not s→t
    // order, so key paths by their sorted interior: on a shortest path the
    // vertex set determines the order (distance from s strictly increases),
    // making the sorted set a faithful path identity.
    let mut counts: HashMap<Vec<NodeId>, u64> = oracle
        .iter()
        .map(|p| {
            let mut key = p.clone();
            key.sort_unstable();
            (key, 0)
        })
        .collect();
    assert_eq!(counts.len(), oracle.len(), "oracle paths must have distinct vertex sets");

    let mut scratch = TraversalScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut key = Vec::new();
    for _ in 0..SAMPLES {
        let sample = sample_shortest_path(g, s, t, &mut scratch, &mut rng)
            .expect("oracle found paths; the sampler must too");
        assert_eq!(sample.distance, expected_len, "distance must match the oracle");
        assert_eq!(
            sample.num_paths,
            oracle.len() as u128,
            "σ bookkeeping must count exactly the enumerated paths"
        );
        key.clear();
        key.extend_from_slice(&sample.interior);
        key.sort_unstable();
        let slot = counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("sampled a non-shortest path: {:?}", sample.interior));
        *slot += 1;
    }

    let k = oracle.len() as f64;
    let expected = SAMPLES as f64 / k;
    let stat: f64 = counts.values().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    let critical = chi2_critical(k - 1.0);
    assert!(
        stat <= critical,
        "path distribution not uniform over ({s},{t}): chi2 = {stat:.2} > {critical:.2} \
         (k = {k}, counts = {:?})",
        counts.values().collect::<Vec<_>>()
    );
}

/// The batched-kernel counterpart of [`assert_uniform_over_paths`]: draws
/// `SAMPLES` paths for `(s, t)` through [`BatchedBiBfs`] with every lane of
/// every invocation carrying the same pair (so one chi-square test covers
/// the multi-lane expansion, meet detection, and per-lane selection paths),
/// and tests the empirical path distribution against uniform.
fn assert_uniform_over_paths_batched(g: &Graph, s: NodeId, t: NodeId, width: usize, seed: u64) {
    let oracle = enumerate_shortest_paths(g, s, t);
    assert!(!oracle.is_empty(), "pair ({s},{t}) must be connected for this helper");
    let expected_len = oracle[0].len() as u32 + 1;
    let mut counts: HashMap<Vec<NodeId>, u64> = oracle
        .iter()
        .map(|p| {
            let mut key = p.clone();
            key.sort_unstable();
            (key, 0)
        })
        .collect();

    let mut kernel = BatchedBiBfs::new(g.num_nodes(), width);
    let mut stats = SearchStats::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs: Vec<(NodeId, NodeId)> = vec![(s, t); width];
    let mut drawn = 0u64;
    let mut key = Vec::new();
    while drawn < SAMPLES {
        let lanes = (SAMPLES - drawn).min(width as u64) as usize;
        kernel.sample_batch_into(g, &pairs[..lanes], &mut rng, &mut stats, |_, info, interior| {
            let info = info.expect("oracle found paths; the batched kernel must too");
            assert_eq!(info.distance, expected_len, "distance must match the oracle");
            assert_eq!(
                info.num_paths,
                oracle.len() as u128,
                "σ bookkeeping must count exactly the enumerated paths"
            );
            key.clear();
            key.extend_from_slice(interior);
            key.sort_unstable();
            let slot = counts
                .get_mut(&key)
                .unwrap_or_else(|| panic!("sampled a non-shortest path: {interior:?}"));
            *slot += 1;
        });
        drawn += lanes as u64;
    }

    let k = oracle.len() as f64;
    let expected = SAMPLES as f64 / k;
    let stat: f64 = counts.values().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
    let critical = chi2_critical(k - 1.0);
    assert!(
        stat <= critical,
        "batched (B={width}) path distribution not uniform over ({s},{t}): \
         chi2 = {stat:.2} > {critical:.2} (k = {k}, counts = {:?})",
        counts.values().collect::<Vec<_>>()
    );
}

#[test]
fn uniform_over_grid_corner_paths() {
    // 4x4 grid, opposite corners: C(6,3) = 20 monotone shortest paths.
    let g = grid(GridConfig { rows: 4, cols: 4, diagonal_prob: 0.0, seed: 0 });
    assert_eq!(enumerate_shortest_paths(&g, 0, 15).len(), 20);
    assert_uniform_over_paths(&g, 0, 15, 0xC0FFEE);
}

#[test]
fn uniform_when_cut_vertices_have_unequal_multiplicity() {
    // Three length-3 paths from 0 to 6: [1,3], [2,3], [4,5]. The meeting cut
    // contains vertices with different σ_near·σ_far products (3 carries two
    // paths, 4/5 carry one), so uniformity requires both the proportional
    // cut pick and the σ-proportional backtrack to be correct.
    let g = graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 6), (0, 4), (4, 5), (5, 6)]);
    let oracle = enumerate_shortest_paths(&g, 0, 6);
    assert_eq!(oracle.len(), 3);
    assert_uniform_over_paths(&g, 0, 6, 0xBEEF);
    // And in the reverse direction (the balanced expansion picks sides by
    // frontier degree, so s/t roles are not symmetric in the implementation).
    assert_uniform_over_paths(&g, 6, 0, 0xFEED);
}

#[test]
fn uniform_over_multi_vertex_meeting_cut() {
    // Star-of-middles: 4 disjoint length-2 paths, cut = {1, 2, 3, 4}.
    let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (2, 5), (3, 5), (4, 5)]);
    assert_eq!(enumerate_shortest_paths(&g, 0, 5).len(), 4);
    assert_uniform_over_paths(&g, 0, 5, 0xABAD1DEA);
}

#[test]
fn batched_uniform_over_grid_corner_paths() {
    // Same 20-path corner pair as the scalar test, through the batched
    // kernel at the default width and at full width.
    let g = grid(GridConfig { rows: 4, cols: 4, diagonal_prob: 0.0, seed: 0 });
    assert_uniform_over_paths_batched(&g, 0, 15, 8, 0x0DDB1A5);
    assert_uniform_over_paths_batched(&g, 0, 15, 64, 0x0DDB1A5 ^ 1);
}

#[test]
fn batched_uniform_when_cut_vertices_have_unequal_multiplicity() {
    let g = graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 6), (0, 4), (4, 5), (5, 6)]);
    assert_uniform_over_paths_batched(&g, 0, 6, 8, 0xB007);
    assert_uniform_over_paths_batched(&g, 6, 0, 8, 0x700B);
}

#[test]
fn batched_uniform_over_multi_vertex_meeting_cut() {
    let g = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (2, 5), (3, 5), (4, 5)]);
    assert_uniform_over_paths_batched(&g, 0, 5, 8, 0x5EED);
    assert_uniform_over_paths_batched(&g, 0, 5, 64, 0x5EED ^ 1);
}

#[test]
fn adjacent_pairs_yield_the_edge_with_empty_interior() {
    // 0-1 are adjacent; a longer parallel route 0-2-3-1 must never surface.
    let g = graph_from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 1)]);
    let mut scratch = TraversalScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..SAMPLES {
        let s = sample_shortest_path(&g, 0, 1, &mut scratch, &mut rng)
            .expect("adjacent pair is connected");
        assert_eq!(s.distance, 1);
        assert_eq!(s.num_paths, 1);
        assert!(s.interior.is_empty(), "a direct edge has no interior vertices");
    }
}

#[test]
fn disconnected_pairs_always_return_none() {
    // Two components: {0,1,2} and {3,4}.
    let g = graph_from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
    assert!(enumerate_shortest_paths(&g, 0, 4).is_empty());
    let mut scratch = TraversalScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..1_000 {
        assert!(sample_shortest_path(&g, 0, 4, &mut scratch, &mut rng).is_none());
        assert!(sample_shortest_path(&g, 4, 0, &mut scratch, &mut rng).is_none());
    }
    // The scratch stays usable for connected pairs afterwards.
    assert!(sample_shortest_path(&g, 0, 2, &mut scratch, &mut rng).is_some());
}

#[test]
fn interior_frequencies_reconcile_with_brute_force_betweenness() {
    // Barbell: two triangles bridged by a path — strongly non-uniform
    // betweenness. Sampling every ordered pair equally often makes the
    // expected interior count of v proportional to its exact betweenness:
    // E[count(v)] = per_pair * n * (n-1) * bc(v).
    let g = graph_from_edges(
        8,
        &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (5, 7), (6, 7)],
    );
    let bc = brute_force_betweenness(&g);
    let n = g.num_nodes();
    let per_pair: u64 = 2_000;

    let mut counts = vec![0u64; n];
    let mut scratch = TraversalScratch::new(n);
    let mut rng = StdRng::seed_from_u64(0xD15EA5E);
    let mut total: u64 = 0;
    for s in 0..n as NodeId {
        for t in 0..n as NodeId {
            if s == t {
                continue;
            }
            for _ in 0..per_pair {
                let sample = sample_shortest_path(&g, s, t, &mut scratch, &mut rng)
                    .expect("barbell is connected");
                for &v in &sample.interior {
                    counts[v as usize] += 1;
                }
                total += 1;
            }
        }
    }
    assert_eq!(total, per_pair * (n * (n - 1)) as u64);
    for v in 0..n {
        let expected = total as f64 * bc[v];
        // Binomial-ish tolerance: 4.5 standard deviations of a Poisson with
        // the expected mass, floored so zero-betweenness vertices stay exact.
        let slack = 4.5 * expected.sqrt().max(1.0);
        let got = counts[v] as f64;
        assert!(
            (got - expected).abs() <= slack,
            "vertex {v}: interior count {got} vs expected {expected:.1} (±{slack:.1})"
        );
    }
}
