//! Property-based tests for the directed and weighted graph variants.

use kadabra_graph::digraph::{
    directed_bfs, enumerate_directed_shortest_paths, sample_directed_shortest_path, DiGraph,
};
use kadabra_graph::scratch::{TraversalScratch, UNREACHED};
use kadabra_graph::weighted::{
    dijkstra_sigma, enumerate_weighted_shortest_paths, sample_weighted_shortest_path,
    WeightedGraph, UNREACHED_W,
};
use kadabra_graph::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_arcs(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let arc = (0..n as NodeId, 0..n as NodeId);
        proptest::collection::vec(arc, 0..max_m).prop_map(move |arcs| (n, arcs))
    })
}

fn arb_weighted(
    max_n: usize,
    max_m: usize,
) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as NodeId, 0..n as NodeId, 1u32..8);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| {
            let edges: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            (n, edges)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn digraph_transpose_is_consistent((n, arcs) in arb_arcs(25, 120)) {
        let g = DiGraph::from_arcs(n, &arcs);
        // Every out-arc must appear as an in-arc of its head and vice versa.
        let mut out_count = 0;
        for u in 0..n as NodeId {
            for &v in g.out_neighbors(u) {
                prop_assert!(g.in_neighbors(v).binary_search(&u).is_ok());
                out_count += 1;
            }
        }
        let in_count: usize = (0..n as NodeId).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_count, in_count);
        prop_assert_eq!(out_count, g.num_arcs());
    }

    #[test]
    fn directed_sampler_agrees_with_bfs((n, arcs) in arb_arcs(20, 80), seed in 0u64..500) {
        let g = DiGraph::from_arcs(n, &arcs);
        let mut sc = TraversalScratch::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = 0 as NodeId;
        let t = (n - 1) as NodeId;
        let d = directed_bfs(&g, s)[t as usize];
        match sample_directed_shortest_path(&g, s, t, &mut sc, &mut rng) {
            None => prop_assert_eq!(d, UNREACHED),
            Some(p) => {
                prop_assert_eq!(p.distance, d);
                prop_assert_eq!(p.interior.len() as u32 + 1, p.distance);
                let all = enumerate_directed_shortest_paths(&g, s, t);
                prop_assert_eq!(p.num_paths as usize, all.len());
            }
        }
    }

    #[test]
    fn dijkstra_distances_satisfy_relaxation((n, edges) in arb_weighted(20, 80)) {
        let g = WeightedGraph::from_edges(n, &edges);
        let (dist, sigma, order) = dijkstra_sigma(&g, 0, None);
        // Settled order is non-decreasing in distance.
        for w in order.windows(2) {
            prop_assert!(dist[w[0] as usize] <= dist[w[1] as usize]);
        }
        // No edge can be relaxed further.
        for u in 0..n as NodeId {
            if dist[u as usize] == UNREACHED_W {
                continue;
            }
            for (v, w) in g.neighbors(u) {
                prop_assert!(
                    dist[v as usize] <= dist[u as usize] + w as u64,
                    "edge ({}, {}) relaxable", u, v
                );
            }
        }
        // σ is positive exactly on reachable vertices.
        for v in 0..n {
            prop_assert_eq!(sigma[v] > 0, dist[v] != UNREACHED_W);
        }
    }

    #[test]
    fn weighted_sampler_matches_enumeration((n, edges) in arb_weighted(14, 40), seed in 0u64..500) {
        let g = WeightedGraph::from_edges(n, &edges);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = 0 as NodeId;
        let t = (n - 1) as NodeId;
        let all = enumerate_weighted_shortest_paths(&g, s, t);
        match sample_weighted_shortest_path(&g, s, t, &mut rng) {
            None => prop_assert!(all.is_empty()),
            Some(p) => {
                prop_assert_eq!(p.num_paths as usize, all.len());
                let mut key = p.interior.clone();
                key.sort_unstable();
                let found = all.iter().any(|cand| {
                    let mut c = cand.clone();
                    c.sort_unstable();
                    c == key
                });
                prop_assert!(found);
            }
        }
    }

    #[test]
    fn unit_weight_dijkstra_equals_bfs((n, arcs) in arb_arcs(18, 70)) {
        // Symmetrize the arcs into an undirected unit-weight graph and
        // compare against plain BFS.
        let edges: Vec<(NodeId, NodeId, u32)> = arcs
            .iter()
            .copied()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| (u, v, 1))
            .collect();
        let wg = WeightedGraph::from_edges(n, &edges);
        let ug = kadabra_graph::csr::graph_from_edges(
            n,
            &arcs.iter().copied().filter(|&(u, v)| u != v).collect::<Vec<_>>(),
        );
        let (wd, _, _) = dijkstra_sigma(&wg, 0, None);
        let bd = kadabra_graph::bfs::bfs(&ug, 0).dist;
        for v in 0..n {
            if bd[v] == UNREACHED {
                prop_assert_eq!(wd[v], UNREACHED_W);
            } else {
                prop_assert_eq!(wd[v], bd[v] as u64);
            }
        }
    }
}
