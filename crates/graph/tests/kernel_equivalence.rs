//! Differential conformance suite for the batched traversal kernel
//! (DESIGN.md §16): [`BatchedBiBfs`] must produce **bit-identical** samples
//! to the scalar bidirectional kernel for the same RNG stream — same
//! `SampleInfo`, same interior in the same order, same `SearchStats`
//! totals — at every batch width, over a corpus covering the topologies the
//! meeting-cut logic distinguishes (grids, random graphs, R-MAT skew,
//! disconnected components, adjacent endpoints, multi-vertex cuts).
//!
//! This is the property the default kernel flip stands on: every driver
//! routes its pre-drawn pair batches through the batched kernel, and every
//! determinism/conformance guarantee in the repo (scalar ≡ parallel,
//! relabeled ≡ raw, replay ≡ live) survives only because batched ≡ scalar
//! holds bit-for-bit, not just in distribution.

use kadabra_graph::bibfs::{sample_shortest_path_into, SampleInfo, SearchStats};
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::generators::{gnm, grid, rmat, GnmConfig, GridConfig, RmatConfig};
use kadabra_graph::scratch::TraversalScratch;
use kadabra_graph::{BatchedBiBfs, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Batch widths under test: scalar lane count, sub-word, the default, and a
/// full 64-bit word.
const WIDTHS: [usize; 4] = [1, 4, 8, 64];

/// Pairs drawn per (graph, width) run — enough to cycle several batches at
/// every width (64 lanes ⇒ ≥3 full batches plus a ragged tail).
const PAIRS: usize = 200;

type Sample = (Option<SampleInfo>, Vec<NodeId>);

/// Draws `PAIRS` distinct-endpoint pairs; connectivity is *not* enforced, so
/// disconnected pairs exercise the dead-lane path.
fn draw_pairs(n: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..PAIRS)
        .map(|_| {
            let s = rng.gen_range(0..n as NodeId);
            let mut t = rng.gen_range(0..n as NodeId - 1);
            if t >= s {
                t += 1;
            }
            (s, t)
        })
        .collect()
}

fn run_scalar(g: &Graph, pairs: &[(NodeId, NodeId)], seed: u64) -> (Vec<Sample>, SearchStats) {
    let mut scratch = TraversalScratch::new(g.num_nodes());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    for &(s, t) in pairs {
        let info = sample_shortest_path_into(g, s, t, &mut scratch, &mut rng, &mut stats);
        out.push((info, scratch.path.clone()));
    }
    (out, stats)
}

fn run_batched(
    g: &Graph,
    pairs: &[(NodeId, NodeId)],
    width: usize,
    seed: u64,
) -> (Vec<Sample>, SearchStats) {
    let mut kernel = BatchedBiBfs::new(g.num_nodes(), width);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = SearchStats::default();
    let mut out = Vec::new();
    for chunk in pairs.chunks(width) {
        kernel.sample_batch_into(g, chunk, &mut rng, &mut stats, |_, info, path| {
            out.push((info, path.to_vec()));
        });
    }
    (out, stats)
}

/// The core differential check: for every width, the batched kernel's full
/// (info, interior) transcript and search-stat totals equal the scalar
/// kernel's, for the same RNG seed.
fn assert_kernels_agree(name: &str, g: &Graph, pair_seed: u64, rng_seed: u64) {
    let pairs = draw_pairs(g.num_nodes(), pair_seed);
    let (scalar, scalar_stats) = run_scalar(g, &pairs, rng_seed);
    for width in WIDTHS {
        let (batched, batched_stats) = run_batched(g, &pairs, width, rng_seed);
        assert_eq!(scalar.len(), batched.len(), "{name}: B={width} sample count");
        for (i, (sc, ba)) in scalar.iter().zip(&batched).enumerate() {
            assert_eq!(sc, ba, "{name}: B={width} diverged on sample {i} (pair {:?})", pairs[i]);
        }
        assert_eq!(
            scalar_stats.edges_scanned, batched_stats.edges_scanned,
            "{name}: B={width} edges_scanned"
        );
        assert_eq!(
            scalar_stats.vertices_settled, batched_stats.vertices_settled,
            "{name}: B={width} vertices_settled"
        );
    }
}

#[test]
fn grids_agree_at_all_widths() {
    let plain = grid(GridConfig { rows: 6, cols: 6, diagonal_prob: 0.0, seed: 0 });
    assert_kernels_agree("grid-6x6", &plain, 10, 1000);
    let diag = grid(GridConfig { rows: 5, cols: 9, diagonal_prob: 0.3, seed: 7 });
    assert_kernels_agree("grid-5x9-diag", &diag, 11, 1001);
}

#[test]
fn random_graphs_agree_at_all_widths() {
    // Densities straddling the connectivity threshold: sparse instances are
    // mostly disconnected pairs (dead lanes), dense ones mostly connected.
    for (n, m, seed) in [(30, 25, 1u64), (40, 80, 2), (64, 300, 3), (100, 140, 4)] {
        let g = gnm(GnmConfig { n, m, seed });
        assert_kernels_agree(&format!("gnm-{n}-{m}"), &g, 20 + seed, 2000 + seed);
    }
}

#[test]
fn rmat_skew_agrees_at_all_widths() {
    // Power-law degree skew: hub rows are shared by many lanes at once,
    // the case the interleaved row decode exists for.
    let g = rmat(RmatConfig::graph500(8, 8, 5));
    assert_kernels_agree("rmat-s8", &g, 30, 3000);
}

#[test]
fn handcrafted_cut_topologies_agree_at_all_widths() {
    // Barbell: long bridge, single-vertex cuts at every level.
    let barbell = graph_from_edges(
        8,
        &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (5, 7), (6, 7)],
    );
    assert_kernels_agree("barbell", &barbell, 40, 4000);
    // Star-of-middles: a 4-vertex meeting cut with equal multiplicities.
    let star =
        graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (2, 5), (3, 5), (4, 5)]);
    assert_kernels_agree("star-of-middles", &star, 41, 4001);
    // Unequal cut multiplicities: σ-weighted cut pick must agree exactly.
    let uneven =
        graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 6), (0, 4), (4, 5), (5, 6)]);
    assert_kernels_agree("uneven-cut", &uneven, 42, 4002);
}

#[test]
fn chunking_is_immaterial_to_the_stream() {
    // The RNG stream depends only on the pair sequence, not on how it is
    // chunked into batches: feeding ragged chunk sizes through one kernel
    // instance equals the scalar transcript (and hence any other chunking).
    let g = gnm(GnmConfig { n: 48, m: 120, seed: 9 });
    let pairs = draw_pairs(g.num_nodes(), 50);
    let (scalar, _) = run_scalar(&g, &pairs, 5000);

    let mut kernel = BatchedBiBfs::new(g.num_nodes(), 8);
    let mut rng = StdRng::seed_from_u64(5000);
    let mut stats = SearchStats::default();
    let mut out: Vec<Sample> = Vec::new();
    let mut rest = &pairs[..];
    // 1, 2, 3, ... lane chunks, wrapping below the width.
    let mut take = 1usize;
    while !rest.is_empty() {
        let k = take.min(rest.len());
        kernel.sample_batch_into(&g, &rest[..k], &mut rng, &mut stats, |_, info, path| {
            out.push((info, path.to_vec()));
        });
        rest = &rest[k..];
        take = take % 8 + 1;
    }
    assert_eq!(scalar, out, "ragged chunking changed the transcript");
}

#[test]
fn batched_rng_consumption_matches_scalar() {
    // After identical workloads, both kernels must leave the RNG at the
    // same point: the next draw from each stream agrees. This pins the
    // contract that dead lanes consume no randomness.
    let g = gnm(GnmConfig { n: 30, m: 24, seed: 13 }); // mostly disconnected
    let pairs = draw_pairs(g.num_nodes(), 60);

    let mut scalar_rng = StdRng::seed_from_u64(6000);
    let mut scratch = TraversalScratch::new(g.num_nodes());
    let mut stats = SearchStats::default();
    for &(s, t) in &pairs {
        let _ = sample_shortest_path_into(&g, s, t, &mut scratch, &mut scalar_rng, &mut stats);
    }

    let mut batched_rng = StdRng::seed_from_u64(6000);
    let mut kernel = BatchedBiBfs::new(g.num_nodes(), 64);
    let mut bstats = SearchStats::default();
    for chunk in pairs.chunks(64) {
        kernel.sample_batch_into(&g, chunk, &mut batched_rng, &mut bstats, |_, _, _| {});
    }

    assert_eq!(
        scalar_rng.gen::<u64>(),
        batched_rng.gen::<u64>(),
        "kernels consumed different amounts of randomness"
    );
}
