//! Property tests for the batched kernel's bitset substrate (DESIGN.md §16):
//! [`LaneMatrix`] word-level operations against a naive `Vec<bool>` model —
//! with lane counts deliberately straddling the 64-bit word boundary — and
//! the interaction of the lane-strided [`StampedState`] accessors with the
//! stamp-wrap full clear.

use kadabra_graph::lanes::{for_each_lane, LaneMatrix};
use kadabra_graph::scratch::{StampedState, UNREACHED};
use kadabra_graph::NodeId;
use proptest::prelude::*;

/// Naive reference: one `Vec<bool>` per (row, lane).
struct Model {
    lanes: usize,
    bits: Vec<bool>,
}

impl Model {
    fn new(n: usize, lanes: usize) -> Self {
        Model { lanes, bits: vec![false; n * lanes] }
    }
    fn idx(&self, v: NodeId, lane: usize) -> usize {
        v as usize * self.lanes + lane
    }
}

/// One mutation of the matrix under test.
#[derive(Debug, Clone)]
enum Op {
    Set { v: usize, lane: usize },
    Unset { v: usize, lane: usize },
    ClearRow { v: usize },
}

fn arb_ops(n: usize, lanes: usize, max_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    // Weighted op mix (the shim has no `prop_oneof`): kinds 0-3 set a bit,
    // 4-5 clear a bit, 6 clears a whole row.
    let op = (0usize..7, 0..n, 0..lanes).prop_map(|(kind, v, lane)| match kind {
        0..=3 => Op::Set { v, lane },
        4 | 5 => Op::Unset { v, lane },
        _ => Op::ClearRow { v },
    });
    proptest::collection::vec(op, 1..max_ops)
}

/// Lane counts pinned to interesting word-boundary positions: single word,
/// exact word, one-past-word, mid-second-word, exact two words, beyond.
const LANE_COUNTS: [usize; 9] = [1, 7, 63, 64, 65, 70, 96, 128, 130];

fn arb_lanes() -> impl Strategy<Value = usize> {
    (0..LANE_COUNTS.len()).prop_map(|i| LANE_COUNTS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// set/unset/clear_row/test agree with the bool model, and the
    /// aggregates (any, count) match the model's row sums.
    #[test]
    fn matrix_matches_bool_model(
        lanes in arb_lanes(),
        ops in (8usize..24).prop_flat_map(move |n| {
            arb_ops(n, 130, 120).prop_map(move |ops| (n, ops))
        }),
    ) {
        let (n, ops) = ops;
        let mut m = LaneMatrix::new(n, lanes);
        let mut model = Model::new(n, lanes);
        for op in &ops {
            match *op {
                Op::Set { v, lane } => {
                    let (v, lane) = (v % n, lane % lanes);
                    m.set(v as NodeId, lane);
                    let i = model.idx(v as NodeId, lane);
                    model.bits[i] = true;
                }
                Op::Unset { v, lane } => {
                    let (v, lane) = (v % n, lane % lanes);
                    m.unset(v as NodeId, lane);
                    let i = model.idx(v as NodeId, lane);
                    model.bits[i] = false;
                }
                Op::ClearRow { v } => {
                    let v = v % n;
                    m.clear_row(v as NodeId);
                    for lane in 0..lanes {
                        let i = model.idx(v as NodeId, lane);
                        model.bits[i] = false;
                    }
                }
            }
        }
        for v in 0..n {
            let mut row_count = 0u32;
            for lane in 0..lanes {
                let want = model.bits[model.idx(v as NodeId, lane)];
                prop_assert_eq!(m.test(v as NodeId, lane), want, "row {} lane {}", v, lane);
                row_count += u32::from(want);
            }
            prop_assert_eq!(m.count(v as NodeId), row_count);
            prop_assert_eq!(m.any(v as NodeId), row_count > 0);
        }
    }

    /// `intersect_row` visits exactly the lanes set in BOTH matrices, in
    /// ascending order — the meet-detection primitive.
    #[test]
    fn intersect_row_is_exact_and_ascending(
        lanes in arb_lanes(),
        n in 2usize..12,
        a_bits in proptest::collection::vec((0usize..12, 0usize..130), 0..80),
        b_bits in proptest::collection::vec((0usize..12, 0usize..130), 0..80),
    ) {
        let mut a = LaneMatrix::new(n, lanes);
        let mut b = LaneMatrix::new(n, lanes);
        let mut model_a = Model::new(n, lanes);
        let mut model_b = Model::new(n, lanes);
        for &(v, lane) in &a_bits {
            let (v, lane) = (v % n, lane % lanes);
            a.set(v as NodeId, lane);
            let i = model_a.idx(v as NodeId, lane);
            model_a.bits[i] = true;
        }
        for &(v, lane) in &b_bits {
            let (v, lane) = (v % n, lane % lanes);
            b.set(v as NodeId, lane);
            let i = model_b.idx(v as NodeId, lane);
            model_b.bits[i] = true;
        }
        for v in 0..n as NodeId {
            let mut got = Vec::new();
            a.intersect_row(v, &b, |lane| got.push(lane));
            let want: Vec<usize> = (0..lanes)
                .filter(|&l| model_a.bits[model_a.idx(v, l)] && model_b.bits[model_b.idx(v, l)])
                .collect();
            prop_assert_eq!(&got, &want, "row {}", v);
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]), "not ascending: {:?}", got);
        }
    }

    /// `or_row` and `andnot_row` equal the model's per-lane OR / AND-NOT.
    #[test]
    fn or_and_andnot_match_model(
        lanes in arb_lanes(),
        n in 2usize..10,
        a_bits in proptest::collection::vec((0usize..10, 0usize..130), 0..60),
        b_bits in proptest::collection::vec((0usize..10, 0usize..130), 0..60),
        v in 0usize..10,
    ) {
        let v = (v % n) as NodeId;
        let mut a = LaneMatrix::new(n, lanes);
        let mut b = LaneMatrix::new(n, lanes);
        for &(u, lane) in &a_bits {
            a.set((u % n) as NodeId, lane % lanes);
        }
        for &(u, lane) in &b_bits {
            b.set((u % n) as NodeId, lane % lanes);
        }
        let a_before: Vec<bool> = (0..lanes).map(|l| a.test(v, l)).collect();
        let b_row: Vec<bool> = (0..lanes).map(|l| b.test(v, l)).collect();

        let mut or = LaneMatrix::new(n, lanes);
        for (l, &bit) in a_before.iter().enumerate() {
            if bit {
                or.set(v, l);
            }
        }
        or.or_row(v, &b);
        for l in 0..lanes {
            prop_assert_eq!(or.test(v, l), a_before[l] || b_row[l]);
        }

        let mask: Vec<u64> = b.row(v).to_vec();
        a.andnot_row(v, &mask);
        for l in 0..lanes {
            prop_assert_eq!(a.test(v, l), a_before[l] && !b_row[l]);
        }
    }

    /// `for_each_lane` enumerates exactly the set bits of a word, ascending.
    #[test]
    fn for_each_lane_matches_bit_positions(mask in any::<u64>()) {
        let mut got = Vec::new();
        for_each_lane(mask, |lane| got.push(lane));
        let want: Vec<usize> = (0..64).filter(|&b| mask >> b & 1 == 1).collect();
        prop_assert_eq!(got, want);
    }

    /// Lane-strided `StampedState` accessors across a stamp wrap: with a u8
    /// stamp the full clear fires every 255 resets; state written before a
    /// reset must never leak into a later round through any slot index,
    /// including the high lane-strided ones the batched kernel uses.
    #[test]
    fn stamp_wrap_never_resurrects_lane_slots(
        rows in 2usize..8,
        width in (0usize..3).prop_map(|i| [1usize, 8, 64][i]),
        rounds in 1usize..600,
        writes in proptest::collection::vec((0usize..8, 0usize..64, 1u64..100), 1..20),
    ) {
        let mut st: StampedState<u8> = StampedState::new(rows * width);
        for r in 0..rounds {
            st.reset();
            // Every slot starts the round unreached regardless of history.
            for v in 0..rows {
                for lane in 0..width {
                    let idx = v * width + lane;
                    prop_assert!(!st.reached_at(idx), "round {} slot {} stale", r, idx);
                    prop_assert_eq!(st.dist_at(idx), UNREACHED);
                    prop_assert_eq!(st.sigma_at(idx), 0);
                }
            }
            // Writes land only in their own slot and survive within a round.
            for &(v, lane, sig) in &writes {
                let idx = (v % rows) * width + lane % width;
                if st.reached_at(idx) {
                    st.add_sigma_at(idx, sig);
                } else {
                    st.visit_at(idx, (r % 7) as u32, sig);
                }
            }
            for &(v, lane, _) in &writes {
                let idx = (v % rows) * width + lane % width;
                prop_assert!(st.reached_at(idx));
                prop_assert_eq!(st.dist_at(idx), (r % 7) as u32);
            }
        }
    }
}

/// Non-proptest regression: the NodeId-indexed and usize-indexed accessor
/// families view the same slots (lane stride 1 ⇒ idx == v).
#[test]
fn node_and_slot_accessors_alias() {
    let mut st: StampedState<u32> = StampedState::new(8);
    st.reset();
    st.visit(3, 2, 5);
    assert_eq!(st.dist_at(3), 2);
    assert_eq!(st.sigma_at(3), 5);
    st.add_sigma_at(3, 7);
    assert_eq!(st.sigma(3), 12);
    assert!(st.reached_at(3) && st.reached(3));
    assert!(!st.reached_at(4));
}
