//! Property-based tests of the graph substrate.

use kadabra_graph::bfs::{bfs, hop_distance, sigma_bfs};
use kadabra_graph::bibfs::{enumerate_shortest_paths, sample_shortest_path};
use kadabra_graph::components::{connected_components, largest_component};
use kadabra_graph::csr::{graph_from_edges, NodeId};
use kadabra_graph::diameter::{diameter, diameter_brute_force};
use kadabra_graph::io::{read_binary, read_edge_list, write_binary, write_edge_list};
use kadabra_graph::scratch::{TraversalScratch, UNREACHED};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random edge list over up to `max_n` vertices (possibly with
/// duplicates, self-loops and both orientations — the builder must cope).
fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_always_produces_canonical_csr((n, edges) in arb_edges(40, 200)) {
        let g = graph_from_edges(n, &edges);
        prop_assert!(g.check_canonical().is_ok());
        prop_assert_eq!(g.num_nodes(), n);
        // Degree sum identity.
        let deg_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn bfs_distances_are_metric((n, edges) in arb_edges(30, 120)) {
        let g = graph_from_edges(n, &edges);
        let d0 = bfs(&g, 0).dist;
        // Edge relaxation: adjacent vertices differ by at most 1.
        for (u, v) in g.edges() {
            let (du, dv) = (d0[u as usize], d0[v as usize]);
            if du != UNREACHED && dv != UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "one endpoint reachable, the other not");
            }
        }
        // Symmetry of the hop metric on undirected graphs.
        if n >= 2 {
            prop_assert_eq!(hop_distance(&g, 0, (n - 1) as NodeId),
                            hop_distance(&g, (n - 1) as NodeId, 0));
        }
    }

    #[test]
    fn sigma_bfs_counts_match_enumeration((n, edges) in arb_edges(14, 40)) {
        let g = graph_from_edges(n, &edges);
        let res = sigma_bfs(&g, 0);
        for t in 1..n as NodeId {
            let paths = enumerate_shortest_paths(&g, 0, t);
            prop_assert_eq!(res.sigma[t as usize] as usize, paths.len(), "t={}", t);
        }
    }

    #[test]
    fn bidirectional_sampler_agrees_with_bfs((n, edges) in arb_edges(25, 100), seed in 0u64..1000) {
        let g = graph_from_edges(n, &edges);
        let mut sc = TraversalScratch::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = 0 as NodeId;
        let t = (n - 1) as NodeId;
        let expect = hop_distance(&g, s, t);
        match sample_shortest_path(&g, s, t, &mut sc, &mut rng) {
            None => prop_assert_eq!(expect, None),
            Some(p) => {
                prop_assert_eq!(Some(p.distance), expect);
                prop_assert_eq!(p.interior.len() as u32 + 1, p.distance);
                // Interior vertices must be distinct and exclude endpoints.
                let mut sorted = p.interior.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), p.interior.len());
                prop_assert!(!p.interior.contains(&s) && !p.interior.contains(&t));
            }
        }
    }

    #[test]
    fn components_partition_the_graph((n, edges) in arb_edges(40, 120)) {
        let g = graph_from_edges(n, &edges);
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), n);
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u as usize], c.label[v as usize]);
        }
        let (lcc, map) = largest_component(&g);
        prop_assert_eq!(lcc.num_nodes(), map.len());
        prop_assert_eq!(lcc.num_nodes(), *c.sizes.iter().max().unwrap_or(&0));
        prop_assert!(lcc.check_canonical().is_ok());
    }

    #[test]
    fn diameter_matches_brute_force((n, edges) in arb_edges(24, 80)) {
        let g = graph_from_edges(n, &edges);
        let (lcc, _) = largest_component(&g);
        if lcc.num_nodes() >= 2 {
            prop_assert_eq!(diameter(&lcc, 0, 0).exact(), diameter_brute_force(&lcc));
        }
    }

    #[test]
    fn io_roundtrips((n, edges) in arb_edges(30, 120)) {
        let g = graph_from_edges(n, &edges);
        let mut text = Vec::new();
        write_edge_list(&g, &mut text).unwrap();
        let g_text = read_edge_list(&text[..]).unwrap();
        // The text format drops trailing isolated vertices (ids are implied
        // by the max endpoint), so compare edges only.
        let a: Vec<_> = g.edges().collect();
        let b: Vec<_> = g_text.edges().collect();
        prop_assert_eq!(a, b);

        let mut bin = Vec::new();
        write_binary(&g, &mut bin).unwrap();
        let g_bin = read_binary(&bin[..]).unwrap();
        prop_assert_eq!(g, g_bin);
    }
}

/// Non-proptest statistical check kept in the property suite because it
/// guards the sampler's *distributional* invariant on a structured family.
#[test]
fn sampler_is_uniform_on_random_diamond_chains() {
    // Chains of diamonds have exponentially many tied shortest paths with a
    // known count; uniformity must hold for each.
    for chains in 1..4usize {
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut prev = 0u32;
        let mut next_id = 1u32;
        for _ in 0..chains {
            let (a, b, join) = (next_id, next_id + 1, next_id + 2);
            edges.push((prev, a));
            edges.push((prev, b));
            edges.push((a, join));
            edges.push((b, join));
            prev = join;
            next_id += 3;
        }
        let n = next_id as usize;
        let g = graph_from_edges(n, &edges);
        let all = enumerate_shortest_paths(&g, 0, prev);
        assert_eq!(all.len(), 1 << chains);
        let mut sc = TraversalScratch::new(n);
        let mut rng = StdRng::seed_from_u64(chains as u64);
        let trials = 4000 * all.len();
        let mut counts = vec![0u64; all.len()];
        for _ in 0..trials {
            let p = sample_shortest_path(&g, 0, prev, &mut sc, &mut rng).unwrap();
            let mut key = p.interior.clone();
            key.sort_unstable();
            let idx = all
                .iter()
                .position(|cand| {
                    let mut c = cand.clone();
                    c.sort_unstable();
                    c == key
                })
                .expect("sampled path must be one of the enumerated paths");
            counts[idx] += 1;
        }
        let expected = trials as f64 / all.len() as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.15, "chains={chains} path {i}: count {c} vs expected {expected}");
        }
    }
}
