//! Property tests for degree-descending CSR relabeling (DESIGN.md §11):
//! relabeling is a pure layout change — every quantity the samplers compute
//! must come out **bit-for-bit identical** once mapped back through
//! [`Permutation::unrelabel`].

use kadabra_graph::bfs::sigma_bfs;
use kadabra_graph::bibfs::sample_shortest_path;
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::scratch::{TraversalScratch, UNREACHED};
use kadabra_graph::{Graph, NodeId, Permutation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random edge list over up to `max_n` vertices (duplicates,
/// self-loops, both orientations — the builder canonicalizes).
fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| (n, edges))
    })
}

/// Adds pair (s, t)'s exact per-pair betweenness contribution
/// `σ_st(v)/σ_st` to `out[v]` — pure σ arithmetic, so the contribution is
/// the same rational number (hence the same f64) in any labeling.
fn add_pair_contribution(g: &Graph, s: NodeId, t: NodeId, out: &mut [f64]) {
    let from_s = sigma_bfs(g, s);
    let d = from_s.dist[t as usize];
    if d == UNREACHED {
        return;
    }
    let from_t = sigma_bfs(g, t);
    let sigma_st = from_s.sigma[t as usize];
    for (v, slot) in out.iter_mut().enumerate() {
        let (ds, dt) = (from_s.dist[v], from_t.dist[v]);
        if v as NodeId != s
            && v as NodeId != t
            && ds != UNREACHED
            && dt != UNREACHED
            && ds + dt == d
        {
            *slot += (from_s.sigma[v] * from_t.sigma[v]) as f64 / sigma_st as f64;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: estimates from a fixed pair set, computed on
    /// the relabeled graph and mapped back through `unrelabel`, equal the
    /// original-labeling estimates **bit for bit** (`f64::to_bits`, not an
    /// epsilon) — per-vertex values are sums of identical f64 terms in
    /// identical order, so layout must not perturb a single ULP.
    #[test]
    fn estimates_survive_relabeling_bit_for_bit((n, edges) in arb_edges(24, 80)) {
        let g = graph_from_edges(n, &edges);
        let (rg, perm) = g.relabel_by_degree();

        // Fixed deterministic pair set in original IDs.
        let pairs: Vec<(NodeId, NodeId)> = (0..n as NodeId)
            .flat_map(|s| [(s, (s + 1) % n as NodeId), (s, (s * 7 + 3) % n as NodeId)])
            .filter(|(s, t)| s != t)
            .collect();

        let mut original = vec![0.0f64; n];
        let mut relabeled = vec![0.0f64; n];
        for &(s, t) in &pairs {
            add_pair_contribution(&g, s, t, &mut original);
            add_pair_contribution(&rg, perm.to_new(s), perm.to_new(t), &mut relabeled);
        }
        let mapped = perm.unrelabel(&relabeled);
        for v in 0..n {
            prop_assert_eq!(
                mapped[v].to_bits(),
                original[v].to_bits(),
                "vertex {}: {} (relabeled->unrelabel) vs {} (original)",
                v, mapped[v], original[v]
            );
        }
    }

    /// `relabel ∘ unrelabel` (and the converse) is the identity on value
    /// vectors, and the index maps invert each other.
    #[test]
    fn relabel_unrelabel_roundtrip((n, edges) in arb_edges(32, 120)) {
        let g = graph_from_edges(n, &edges);
        let (_, perm) = g.relabel_by_degree();
        let values: Vec<f64> = (0..n).map(|v| v as f64 * 1.25 + 0.5).collect();
        prop_assert_eq!(&perm.relabel(&perm.unrelabel(&values)), &values);
        prop_assert_eq!(&perm.unrelabel(&perm.relabel(&values)), &values);
        for v in 0..n as NodeId {
            prop_assert_eq!(perm.to_new(perm.to_old(v)), v);
            prop_assert_eq!(perm.to_old(perm.to_new(v)), v);
        }
        prop_assert_eq!(Permutation::identity(n).is_identity(), true);
    }

    /// The relabeled CSR is the same graph: `(u, v)` is an edge iff
    /// `(to_new(u), to_new(v))` is, degrees transport, and the new labeling
    /// is degree-descending.
    #[test]
    fn relabeled_graph_is_isomorphic_and_degree_sorted((n, edges) in arb_edges(32, 120)) {
        let g = graph_from_edges(n, &edges);
        let (rg, perm) = g.relabel_by_degree();
        prop_assert!(rg.check_canonical().is_ok());
        prop_assert_eq!(rg.num_nodes(), g.num_nodes());
        prop_assert_eq!(rg.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(rg.has_edge(perm.to_new(u), perm.to_new(v)));
        }
        for v in 0..n as NodeId {
            prop_assert_eq!(rg.degree(perm.to_new(v)), g.degree(v));
        }
        for w in 1..n as NodeId {
            prop_assert!(rg.degree(w - 1) >= rg.degree(w), "degrees must descend");
        }
    }

    /// Paths sampled on the relabeled graph, mapped back through `to_old`,
    /// are valid shortest paths of the original graph: right distance, and
    /// interior distances partition the levels.
    #[test]
    fn sampled_paths_transport_back_to_original_ids(
        (n, edges) in arb_edges(24, 80),
        seed in 0u64..1_000,
    ) {
        let g = graph_from_edges(n, &edges);
        let (rg, perm) = g.relabel_by_degree();
        let mut scratch = TraversalScratch::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        for s in 0..n.min(6) as NodeId {
            let t = (s + n as NodeId / 2 + 1) % n as NodeId;
            if s == t {
                continue;
            }
            let from_s = sigma_bfs(&g, s);
            let sampled =
                sample_shortest_path(&rg, perm.to_new(s), perm.to_new(t), &mut scratch, &mut rng);
            match sampled {
                None => prop_assert_eq!(from_s.dist[t as usize], UNREACHED),
                Some(p) => {
                    prop_assert_eq!(from_s.dist[t as usize], p.distance);
                    let from_t = sigma_bfs(&g, t);
                    // Each original-ID interior vertex sits on a shortest
                    // s-t path, one per level.
                    let mut levels: Vec<u32> =
                        p.interior.iter().map(|&w| from_s.dist[perm.to_old(w) as usize]).collect();
                    levels.sort_unstable();
                    for (i, &l) in levels.iter().enumerate() {
                        prop_assert_eq!(l, i as u32 + 1);
                    }
                    for &w in &p.interior {
                        let old = perm.to_old(w) as usize;
                        prop_assert_eq!(from_s.dist[old] + from_t.dist[old], p.distance);
                    }
                }
            }
        }
    }
}
