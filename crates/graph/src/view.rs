//! The [`GraphView`] abstraction: the minimal read-only adjacency surface
//! the traversal kernels ([`crate::bibfs`]) actually touch.
//!
//! The bidirectional sampler needs exactly four operations — vertex count,
//! degree, a *slice* of sorted neighbors (the slice-ness is load-bearing:
//! the inner scan prefetches `adj[j + 4]` while probing `adj[j]`), and an
//! optional adjacency-row prefetch hint. Abstracting those behind a trait
//! lets the same monomorphized kernel run over the immutable CSR
//! ([`crate::csr::Graph`]) and over overlay views that splice pending edge
//! updates on top of a base CSR (the `kadabra-dynamic` crate), without a
//! rebuild per update batch and without any dynamic dispatch in the hot
//! loop.

use crate::csr::{Graph, NodeId};

/// Read-only adjacency access over an `n`-vertex undirected graph with
/// sorted, duplicate-free neighbor rows.
///
/// Implementations must uphold the CSR canonical form the kernels assume:
/// `neighbors(v)` is strictly increasing, contains no self-loops, and the
/// edge relation is symmetric (`u ∈ neighbors(v) ⇔ v ∈ neighbors(u)`).
pub trait GraphView {
    /// Number of vertices (vertex ids are `0..num_nodes`).
    fn num_nodes(&self) -> usize;

    /// Degree of `v`. Must equal `self.neighbors(v).len()`.
    fn degree(&self, v: NodeId) -> usize;

    /// Sorted neighbor row of `v`.
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// Whether the undirected edge `{u, v}` is present.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Hint that `neighbors(v)` is about to be scanned. Default: no-op.
    fn prefetch_neighbors(&self, _v: NodeId) {}
}

impl GraphView for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }

    #[inline]
    fn prefetch_neighbors(&self, v: NodeId) {
        Graph::prefetch_neighbors(self, v);
    }
}

impl<T: GraphView + ?Sized> GraphView for &T {
    #[inline]
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        (**self).neighbors(v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline]
    fn prefetch_neighbors(&self, v: NodeId) {
        (**self).prefetch_neighbors(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    fn view_roundtrip<G: GraphView>(g: &G) -> (usize, usize, bool) {
        (g.num_nodes(), g.degree(0), g.has_edge(0, 1))
    }

    #[test]
    fn csr_satisfies_the_view_surface() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (n, d0, e01) = view_roundtrip(&g);
        assert_eq!(n, 4);
        assert_eq!(d0, 2);
        assert!(e01);
        assert_eq!(GraphView::neighbors(&g, 1), &[0, 2]);
        assert!(!GraphView::has_edge(&g, 0, 2));
        // Reference-to-view also implements the trait (generic plumbing).
        let r: &dyn Fn() -> usize = &|| GraphView::num_nodes(&&g);
        assert_eq!(r(), 4);
    }
}
