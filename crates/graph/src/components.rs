//! Connected components.
//!
//! The paper evaluates on the largest connected component of each instance
//! ("For disconnected graphs, we consider the largest connected component",
//! Section V-A); [`largest_component`] provides exactly that, with an id
//! remapping so the extracted subgraph keeps dense 32-bit vertex ids.

use crate::csr::{Graph, GraphBuilder, NodeId};

/// Component labelling: `label[v]` is the component id of `v`; ids are dense
/// (`0..num_components`) in order of discovery.
pub struct Components {
    /// Per-vertex component id.
    pub label: Vec<u32>,
    /// Per-component vertex count, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of a largest component (ties broken by smallest id); `None` for the
    /// empty graph.
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }
}

/// Labels all connected components with iterative BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_nodes();
    const UNSET: u32 = u32::MAX;
    let mut label = vec![UNSET; n];
    let mut sizes = Vec::new();
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if label[start as usize] != UNSET {
            continue;
        }
        // xtask: allow(determinism) — one label per component and at most
        // one component per vertex; vertex counts are u32 by CSR layout.
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        label[start as usize] = comp;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            size += 1;
            for &v in g.neighbors(u) {
                if label[v as usize] == UNSET {
                    label[v as usize] = comp;
                    queue.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Extracts the largest connected component as a new graph with dense vertex
/// ids, together with the mapping `new_id -> old_id`.
///
/// For the empty graph this returns an empty graph and an empty mapping.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let comps = connected_components(g);
    let Some(target) = comps.largest() else {
        return (GraphBuilder::new(0).build(), Vec::new());
    };
    let mut old_of_new: Vec<NodeId> = Vec::with_capacity(comps.sizes[target as usize]);
    let mut new_of_old: Vec<u32> = vec![u32::MAX; g.num_nodes()];
    for v in 0..g.num_nodes() as NodeId {
        if comps.label[v as usize] == target {
            // xtask: allow(determinism) — old_of_new holds at most one
            // entry per vertex; vertex counts are u32 by CSR layout.
            new_of_old[v as usize] = old_of_new.len() as u32;
            old_of_new.push(v);
        }
    }
    let mut b = GraphBuilder::with_capacity(old_of_new.len(), g.num_edges());
    for (u, v) in g.edges() {
        if comps.label[u as usize] == target {
            b.add_edge(new_of_old[u as usize], new_of_old[v as usize])
                // xtask: allow(unwrap) — remapped ids are < component size
                // by construction of new_of_old.
                .expect("remapped ids are in range");
        }
    }
    (b.build(), old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    #[test]
    fn single_component() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes, vec![4]);
        assert!(c.label.iter().all(|&l| l == 0));
    }

    #[test]
    fn multiple_components_and_isolated() {
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(c.sizes, vec![2, 3, 1]);
        assert_eq!(c.largest(), Some(1));
    }

    #[test]
    fn empty_graph_components() {
        let g = graph_from_edges(0, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert_eq!(c.largest(), None);
    }

    #[test]
    fn largest_component_extraction() {
        let g = graph_from_edges(7, &[(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 3);
        assert_eq!(lcc.num_edges(), 3);
        assert_eq!(map, vec![2, 3, 4]);
        assert!(lcc.check_canonical().is_ok());
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 4);
        assert_eq!(lcc.num_edges(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        assert_eq!(lcc, g);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = graph_from_edges(0, &[]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(lcc.num_nodes(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn tie_broken_by_smallest_component_id() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let c = connected_components(&g);
        assert_eq!(c.largest(), Some(0));
    }

    #[test]
    fn extraction_preserves_adjacency() {
        // Component {2,3,4,5} forms a path; check remapped adjacency.
        let g = graph_from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 5)]);
        let (lcc, map) = largest_component(&g);
        assert_eq!(map, vec![2, 3, 4, 5]);
        assert!(lcc.has_edge(0, 1)); // old (2,3)
        assert!(lcc.has_edge(1, 2)); // old (3,4)
        assert!(lcc.has_edge(2, 3)); // old (4,5)
        assert!(!lcc.has_edge(0, 3));
    }
}
