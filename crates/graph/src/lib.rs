//! Graph substrate for the `kadabra-mpi` workspace.
//!
//! This crate plays the role that [NetworKit] plays for the original C++
//! implementation of the paper *"Scaling Betweenness Approximation to Billions
//! of Edges by MPI-based Adaptive Sampling"* (van der Grinten & Meyerhenke,
//! IPDPS 2020): it provides the static graph data structure and every graph
//! primitive the betweenness algorithms need.
//!
//! Contents:
//!
//! * [`csr`] — compressed sparse row storage with 32-bit vertex identifiers
//!   (the paper configures NetworKit the same way), plus a builder that
//!   normalizes arbitrary edge lists (dedup, self-loop removal, symmetrization).
//! * [`bfs`] — breadth-first search kernels: distances, eccentricities,
//!   shortest-path counting (the σ values of Brandes' algorithm).
//! * [`bibfs`] — the balanced **bidirectional BFS** used by KADABRA to sample a
//!   uniformly random shortest path between a random vertex pair.
//! * [`bibfs_batch`] — the multi-source **batched** variant: up to 64
//!   interleaved bidirectional searches share each CSR row scan, with
//!   bit-identical path selection (DESIGN.md §16).
//! * [`lanes`] — the bitset lane matrices (one `u64` bit per in-flight
//!   search) backing the batched kernel's visited/frontier sets.
//! * [`diameter`] — two-sweep lower bound and the iFUB exact-diameter
//!   algorithm (the technique behind the sequential diameter phase, Ref. [6]
//!   of the paper).
//! * [`components`] — connected components; the experiments (like the paper)
//!   run on the largest connected component.
//! * [`generators`] — synthetic instances: R-MAT with Graph500 parameters,
//!   random hyperbolic graphs with power-law exponent 3, Erdős–Rényi G(n,m)
//!   and road-network-like grids. These replace the KONECT/SNAP downloads of
//!   the paper's Table I (see DESIGN.md §3).
//! * [`io`] — plain-text edge-list parsing/writing and a compact binary
//!   format for caching generated instances.
//! * [`scratch`] — reusable per-thread traversal buffers. Each KADABRA sample
//!   is a BFS, so avoiding per-sample allocation is critical (Section IV of
//!   the paper takes a sample in <10ms on billion-edge graphs).
//! * [`prefetch`] — best-effort software prefetch hints used by the sampling
//!   hot path (see DESIGN.md §11).

pub mod bfs;
pub mod bibfs;
pub mod bibfs_batch;
pub mod components;
pub mod csr;
pub mod diameter;
pub mod digraph;
pub mod generators;
pub mod io;
pub mod lanes;
pub mod prefetch;
pub mod scratch;
pub mod stats;
pub mod sumsweep;
pub mod view;
pub mod weighted;

pub use bibfs_batch::BatchedBiBfs;
pub use csr::{CsrArena, Graph, GraphBuilder, NodeId, Permutation};
pub use lanes::LaneMatrix;
pub use scratch::TraversalScratch;
pub use view::GraphView;

/// Convenience result alias used by fallible graph routines (IO, parsing).
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced by graph construction and IO.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id ≥ the declared vertex count.
    VertexOutOfRange {
        /// The out-of-range vertex id.
        vertex: u64,
        /// The declared vertex count.
        n: u64,
    },
    /// The input graph would exceed the 32-bit vertex id space.
    TooManyVertices(u64),
    /// Text parsing failed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// What went wrong on that line.
        msg: String,
    },
    /// Binary format corruption.
    Corrupt(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex id {vertex} out of range for graph with {n} vertices")
            }
            GraphError::TooManyVertices(n) => {
                write!(f, "{n} vertices exceed the 32-bit vertex id space")
            }
            GraphError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            GraphError::Corrupt(msg) => write!(f, "corrupt binary graph: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
