//! Graph input/output.
//!
//! Two formats:
//!
//! * **Edge-list text** — the interchange format of SNAP/KONECT (the paper's
//!   instance sources): one `u v` pair per line, `#` or `%` comments. The
//!   parser auto-sizes the vertex count and normalizes via [`GraphBuilder`].
//! * **Binary CSR** — a compact little-endian dump of the canonical CSR
//!   arrays, used to cache generated instances between experiment runs
//!   (regenerating a 15M-edge hyperbolic graph costs far more than reading
//!   ~120 MB back).

use crate::csr::{Graph, GraphBuilder, NodeId};
use crate::{GraphError, Result};
use bytes::{Buf, BufMut};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Magic header of the binary format ("KDBG" + version 1).
const MAGIC: [u8; 4] = *b"KDBG";
const VERSION: u32 = 1;

/// Parses an edge-list from a reader. Lines starting with `#` or `%` and
/// blank lines are skipped; each other line must hold two integers.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph> {
    read_edge_list_in(reader, &mut crate::csr::CsrArena::new())
}

/// Like [`read_edge_list`], building the CSR arrays in `arena`-recycled
/// buffers so repeated loads (e.g. an experiment sweep over instances)
/// allocate no fresh CSR storage once the arena is warm.
pub fn read_edge_list_in<R: Read>(reader: R, arena: &mut crate::csr::CsrArena) -> Result<Graph> {
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line_no = 0usize;
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    loop {
        buf.clear();
        line_no += 1;
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, line_no: usize| -> Result<u64> {
            tok.ok_or_else(|| GraphError::Parse {
                line: line_no,
                msg: "expected two vertex ids".into(),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse { line: line_no, msg: e.to_string() })
        };
        let u = parse(it.next(), line_no)?;
        let v = parse(it.next(), line_no)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    if n > NodeId::MAX as u64 + 1 {
        return Err(GraphError::TooManyVertices(n));
    }
    let mut b = GraphBuilder::with_capacity(n as usize, edges.len());
    for (u, v) in edges {
        b.add_edge(u as NodeId, v as NodeId)?;
    }
    Ok(b.build_in(arena))
}

/// Writes the graph as an edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    writeln!(writer, "# {} vertices, {} edges", g.num_nodes(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    Ok(())
}

/// Serializes the graph into the binary CSR format.
pub fn write_binary<W: Write>(g: &Graph, mut writer: W) -> Result<()> {
    let (offsets, targets) = g.raw_parts();
    let mut header = Vec::with_capacity(24);
    header.put_slice(&MAGIC);
    header.put_u32_le(VERSION);
    header.put_u64_le(offsets.len() as u64 - 1);
    header.put_u64_le(targets.len() as u64);
    writer.write_all(&header)?;
    // Bulk little-endian dumps; chunked to keep memory bounded.
    let mut buf = Vec::with_capacity(1 << 16);
    for chunk in offsets.chunks(8192) {
        buf.clear();
        for &o in chunk {
            buf.put_u64_le(o);
        }
        writer.write_all(&buf)?;
    }
    for chunk in targets.chunks(16384) {
        buf.clear();
        for &t in chunk {
            buf.put_u32_le(t);
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Deserializes a graph from the binary CSR format, re-validating all
/// invariants (the file may come from an untrusted cache).
pub fn read_binary<R: Read>(mut reader: R) -> Result<Graph> {
    let mut header = [0u8; 24];
    reader.read_exact(&mut header)?;
    let mut h = &header[..];
    let mut magic = [0u8; 4];
    h.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let version = h.get_u32_le();
    if version != VERSION {
        return Err(GraphError::Corrupt(format!("unsupported version {version}")));
    }
    let n = h.get_u64_le() as usize;
    let m2 = h.get_u64_le() as usize;
    if n > NodeId::MAX as usize {
        return Err(GraphError::TooManyVertices(n as u64));
    }
    let mut offsets = vec![0u64; n + 1];
    let mut raw = vec![0u8; (n + 1) * 8];
    reader.read_exact(&mut raw)?;
    let mut cur = &raw[..];
    for o in offsets.iter_mut() {
        *o = cur.get_u64_le();
    }
    let mut targets = vec![0 as NodeId; m2];
    let mut raw = vec![0u8; m2 * 4];
    reader.read_exact(&mut raw)?;
    let mut cur = &raw[..];
    for t in targets.iter_mut() {
        *t = cur.get_u32_le();
    }
    // Validate before trusting.
    if offsets.first() != Some(&0) || offsets.last() != Some(&(m2 as u64)) {
        return Err(GraphError::Corrupt("offset bounds".into()));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(GraphError::Corrupt("offsets not monotone".into()));
        }
    }
    for &t in &targets {
        if t as usize >= n {
            return Err(GraphError::Corrupt(format!("target {t} out of range")));
        }
    }
    let g = Graph::from_sorted_csr(offsets, targets);
    if let Err(msg) = g.check_canonical() {
        return Err(GraphError::Corrupt(msg));
    }
    Ok(g)
}

/// Reads a graph from a path, dispatching on the `.bin` extension.
pub fn read_path(path: &Path) -> Result<Graph> {
    let file = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        read_binary(BufReader::new(file))
    } else {
        read_edge_list(file)
    }
}

/// Writes a graph to a path, dispatching on the `.bin` extension.
pub fn write_path(g: &Graph, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let w = std::io::BufWriter::new(file);
    if path.extension().is_some_and(|e| e == "bin") {
        write_binary(g, w)
    } else {
        write_edge_list(g, w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;
    use crate::generators::{rmat, RmatConfig};

    #[test]
    fn edge_list_roundtrip() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_with_comments_and_blanks() {
        let text = "# comment\n% konect style\n\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn edge_list_normalizes_duplicates() {
        let text = "0 1\n1 0\n0 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_parse_error_carries_line() {
        let text = "0 1\nnot numbers\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
    }

    #[test]
    fn edge_list_missing_second_vertex() {
        let text = "0\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { line: 1, .. })));
    }

    #[test]
    fn empty_edge_list() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn binary_roundtrip() {
        let g = rmat(RmatConfig::graph500(8, 4, 1));
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_empty() {
        let g = graph_from_edges(0, &[]);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap().num_nodes(), 0);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&graph_from_edges(2, &[(0, 1)]), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&graph_from_edges(3, &[(0, 1), (1, 2)]), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_target() {
        let mut buf = Vec::new();
        write_binary(&graph_from_edges(2, &[(0, 1)]), &mut buf).unwrap();
        // Corrupt the final target to a huge id.
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Corrupt(_))));
    }

    #[test]
    fn path_dispatch_roundtrip() {
        let dir = std::env::temp_dir().join("kadabra_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        for name in ["g.txt", "g.bin"] {
            let p = dir.join(name);
            write_path(&g, &p).unwrap();
            assert_eq!(read_path(&p).unwrap(), g);
            std::fs::remove_file(&p).unwrap();
        }
    }
}

/// Parses a *weighted* edge list: `u v w` per line (SNAP/DIMACS style),
/// `#`/`%` comments. Weights must be positive integers.
pub fn read_weighted_edge_list<R: Read>(reader: R) -> Result<crate::weighted::WeightedGraph> {
    let mut edges: Vec<(u64, u64, u32)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line_no = 0usize;
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    loop {
        buf.clear();
        line_no += 1;
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = |name: &str| -> Result<u64> {
            it.next()
                .ok_or_else(|| GraphError::Parse { line: line_no, msg: format!("missing {name}") })?
                .parse::<u64>()
                .map_err(|e| GraphError::Parse { line: line_no, msg: e.to_string() })
        };
        let u = field("source")?;
        let v = field("target")?;
        let w = field("weight")?;
        if w == 0 || w > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: line_no,
                msg: format!("weight {w} out of range 1..=u32::MAX"),
            });
        }
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w as u32));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    if n > NodeId::MAX as u64 + 1 {
        return Err(GraphError::TooManyVertices(n));
    }
    let triples: Vec<(NodeId, NodeId, u32)> =
        edges.into_iter().map(|(u, v, w)| (u as NodeId, v as NodeId, w)).collect();
    Ok(crate::weighted::WeightedGraph::from_edges(n as usize, &triples))
}

/// Parses a *directed* arc list: `u v` per line interpreted as the arc
/// `u -> v` (no symmetrization), `#`/`%` comments.
pub fn read_arc_list<R: Read>(reader: R) -> Result<crate::digraph::DiGraph> {
    let mut arcs: Vec<(u64, u64)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut line_no = 0usize;
    let mut buf = String::new();
    let mut r = BufReader::new(reader);
    loop {
        buf.clear();
        line_no += 1;
        if r.read_line(&mut buf)? == 0 {
            break;
        }
        let line = buf.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = |name: &str| -> Result<u64> {
            it.next()
                .ok_or_else(|| GraphError::Parse { line: line_no, msg: format!("missing {name}") })?
                .parse::<u64>()
                .map_err(|e| GraphError::Parse { line: line_no, msg: e.to_string() })
        };
        let u = field("source")?;
        let v = field("target")?;
        max_id = max_id.max(u).max(v);
        arcs.push((u, v));
    }
    let n = if arcs.is_empty() { 0 } else { max_id + 1 };
    if n > NodeId::MAX as u64 + 1 {
        return Err(GraphError::TooManyVertices(n));
    }
    let pairs: Vec<(NodeId, NodeId)> =
        arcs.into_iter().map(|(u, v)| (u as NodeId, v as NodeId)).collect();
    Ok(crate::digraph::DiGraph::from_arcs(n as usize, &pairs))
}

#[cfg(test)]
mod variant_io_tests {
    use super::*;

    #[test]
    fn weighted_edge_list_parses() {
        let text = "# weighted\n0 1 5\n1 2 3\n";
        let g = read_weighted_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![(0, 5), (2, 3)]);
    }

    #[test]
    fn weighted_rejects_zero_weight() {
        assert!(matches!(
            read_weighted_edge_list("0 1 0\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn weighted_rejects_missing_weight() {
        assert!(matches!(
            read_weighted_edge_list("0 1\n".as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn arc_list_preserves_orientation() {
        let text = "0 1\n1 2\n";
        let g = read_arc_list(text.as_bytes()).unwrap();
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    fn empty_variant_inputs() {
        assert_eq!(read_weighted_edge_list("".as_bytes()).unwrap().num_nodes(), 0);
        assert_eq!(read_arc_list("# none\n".as_bytes()).unwrap().num_nodes(), 0);
    }
}
