//! Bitset lane matrices for the multi-source batched traversal kernel.
//!
//! The batched bidirectional BFS ([`crate::bibfs_batch`]) runs up to 64
//! independent (s, t) searches — *lanes* — through one CSR scan. Per-vertex
//! membership sets (seen / frontier / next-level) are packed one bit per lane
//! into `u64` words, so testing "which of the B in-flight searches have
//! settled vertex v" is a single word load, and meet detection between the
//! forward and backward searches is a word-at-a-time intersection.
//!
//! [`LaneMatrix`] is the general primitive: `n` rows (one per vertex), each
//! `lanes` bits wide, stored as `ceil(lanes/64)` words per row. The kernel
//! instantiates the one-word fast path (`lanes ≤ 64`, [`LaneMatrix::word`] /
//! [`LaneMatrix::word_mut`]); the multi-word row accessors exist so the
//! primitive — and its property tests against a naive `Vec<bool>` model —
//! cover lane counts that straddle word boundaries.

use crate::csr::NodeId;
use crate::prefetch::prefetch_read;

/// Bits per storage word.
pub const LANE_WORD_BITS: usize = 64;

/// An `n × lanes` bit matrix: row `v` holds one membership bit per lane.
#[derive(Debug, Clone)]
pub struct LaneMatrix {
    /// Words per row: `ceil(lanes / 64)`.
    wpr: usize,
    /// Number of lanes (columns).
    lanes: usize,
    /// Row-major packed bits; row `v` occupies `words[v*wpr .. (v+1)*wpr]`.
    words: Vec<u64>,
}

impl LaneMatrix {
    /// Creates an all-zero matrix for `n` vertices and `lanes` lanes.
    ///
    /// `lanes` must be positive; `n` rows of `ceil(lanes/64)` words are
    /// allocated eagerly so the hot path never grows the backing store.
    pub fn new(n: usize, lanes: usize) -> Self {
        assert!(lanes > 0, "a lane matrix needs at least one lane");
        let wpr = lanes.div_ceil(LANE_WORD_BITS);
        LaneMatrix { wpr, lanes, words: vec![0u64; n * wpr] }
    }

    /// Number of lanes (columns).
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn rows(&self) -> usize {
        self.words.len().checked_div(self.wpr).unwrap_or(0)
    }

    /// Words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.wpr
    }

    #[inline]
    fn base(&self, v: NodeId) -> usize {
        v as usize * self.wpr
    }

    /// Sets lane `lane` of row `v`.
    #[inline]
    pub fn set(&mut self, v: NodeId, lane: usize) {
        debug_assert!(lane < self.lanes);
        let b = self.base(v);
        self.words[b + lane / LANE_WORD_BITS] |= 1u64 << (lane % LANE_WORD_BITS);
    }

    /// Clears lane `lane` of row `v`.
    #[inline]
    pub fn unset(&mut self, v: NodeId, lane: usize) {
        debug_assert!(lane < self.lanes);
        let b = self.base(v);
        self.words[b + lane / LANE_WORD_BITS] &= !(1u64 << (lane % LANE_WORD_BITS));
    }

    /// Whether lane `lane` of row `v` is set.
    #[inline]
    pub fn test(&self, v: NodeId, lane: usize) -> bool {
        debug_assert!(lane < self.lanes);
        let b = self.base(v);
        self.words[b + lane / LANE_WORD_BITS] & (1u64 << (lane % LANE_WORD_BITS)) != 0
    }

    /// Row `v` as packed words (low lane = bit 0 of word 0).
    #[inline]
    pub fn row(&self, v: NodeId) -> &[u64] {
        let b = self.base(v);
        &self.words[b..b + self.wpr]
    }

    /// Zeroes row `v`.
    #[inline]
    pub fn clear_row(&mut self, v: NodeId) {
        let b = self.base(v);
        self.words[b..b + self.wpr].fill(0);
    }

    /// ORs `other`'s row `v` into this matrix's row `v` (word-at-a-time).
    #[inline]
    pub fn or_row(&mut self, v: NodeId, other: &LaneMatrix) {
        debug_assert_eq!(self.wpr, other.wpr);
        let b = self.base(v);
        let ob = other.base(v);
        for i in 0..self.wpr {
            self.words[b + i] |= other.words[ob + i];
        }
    }

    /// AND-NOTs `mask_row` out of row `v`: `row &= !mask` per word.
    #[inline]
    pub fn andnot_row(&mut self, v: NodeId, mask_row: &[u64]) {
        debug_assert_eq!(mask_row.len(), self.wpr);
        let b = self.base(v);
        for (i, &m) in mask_row.iter().enumerate() {
            self.words[b + i] &= !m;
        }
    }

    /// Word-at-a-time intersection of this matrix's row `v` with `other`'s:
    /// the lanes set in both (the batched kernel's meet-detection test).
    /// Returns `true` iff any lane intersects; set lanes are streamed to
    /// `on_lane` in ascending lane order.
    #[inline]
    pub fn intersect_row<F: FnMut(usize)>(
        &self,
        v: NodeId,
        other: &LaneMatrix,
        mut on_lane: F,
    ) -> bool {
        debug_assert_eq!(self.wpr, other.wpr);
        let b = self.base(v);
        let ob = other.base(v);
        let mut any = false;
        for i in 0..self.wpr {
            let mut w = self.words[b + i] & other.words[ob + i];
            any |= w != 0;
            while w != 0 {
                on_lane(i * LANE_WORD_BITS + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        any
    }

    /// Whether row `v` has any set lane.
    #[inline]
    pub fn any(&self, v: NodeId) -> bool {
        self.row(v).iter().any(|&w| w != 0)
    }

    /// Number of set lanes in row `v`.
    #[inline]
    pub fn count(&self, v: NodeId) -> u32 {
        self.row(v).iter().map(|w| w.count_ones()).sum()
    }

    /// Hints the CPU to pull row `v`'s first word into cache ahead of a
    /// probe (the adjacency targets are data-dependent, so the hardware
    /// prefetcher cannot help).
    #[inline]
    pub fn prefetch_row(&self, v: NodeId) {
        prefetch_read(&self.words, self.base(v));
    }

    /// Single-word row load — the `lanes ≤ 64` kernel fast path. Panics in
    /// debug builds when the matrix has multi-word rows.
    #[inline]
    pub fn word(&self, v: NodeId) -> u64 {
        debug_assert_eq!(self.wpr, 1, "word() requires lanes <= 64");
        self.words[v as usize]
    }

    /// Single-word row store (see [`LaneMatrix::word`]).
    #[inline]
    pub fn word_mut(&mut self, v: NodeId) -> &mut u64 {
        debug_assert_eq!(self.wpr, 1, "word_mut() requires lanes <= 64");
        &mut self.words[v as usize]
    }
}

/// Calls `f(lane)` for every set bit of `mask`, in ascending lane order.
/// The batched kernel's per-word lane walk (bit-scan + clear-lowest).
#[inline]
pub fn for_each_lane<F: FnMut(usize)>(mut mask: u64, mut f: F) {
    while mask != 0 {
        f(mask.trailing_zeros() as usize);
        mask &= mask - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_unset_roundtrip() {
        let mut m = LaneMatrix::new(4, 70); // straddles a word boundary
        assert_eq!(m.words_per_row(), 2);
        for lane in [0, 1, 63, 64, 69] {
            assert!(!m.test(2, lane));
            m.set(2, lane);
            assert!(m.test(2, lane));
            assert!(!m.test(1, lane), "row isolation");
        }
        m.unset(2, 63);
        assert!(!m.test(2, 63));
        assert!(m.test(2, 64));
        assert_eq!(m.count(2), 4);
    }

    #[test]
    fn intersect_row_streams_common_lanes() {
        let mut a = LaneMatrix::new(2, 130);
        let mut b = LaneMatrix::new(2, 130);
        for lane in [0, 5, 64, 127, 129] {
            a.set(1, lane);
        }
        for lane in [5, 64, 128, 129] {
            b.set(1, lane);
        }
        let mut got = Vec::new();
        assert!(a.intersect_row(1, &b, |l| got.push(l)));
        assert_eq!(got, vec![5, 64, 129]);
        let mut none = Vec::new();
        assert!(!a.intersect_row(0, &b, |l| none.push(l)));
        assert!(none.is_empty());
    }

    #[test]
    fn word_fast_path_matches_bits() {
        let mut m = LaneMatrix::new(3, 64);
        m.set(1, 0);
        m.set(1, 63);
        assert_eq!(m.word(1), (1u64 << 63) | 1);
        *m.word_mut(1) |= 1 << 7;
        assert!(m.test(1, 7));
        m.clear_row(1);
        assert_eq!(m.word(1), 0);
        assert!(!m.any(1));
    }

    #[test]
    fn for_each_lane_ascending() {
        let mut got = Vec::new();
        for_each_lane((1 << 3) | (1 << 17) | (1 << 63), |l| got.push(l));
        assert_eq!(got, vec![3, 17, 63]);
        for_each_lane(0, |_| panic!("no lanes in an empty mask"));
    }

    #[test]
    fn or_and_andnot_rows() {
        let mut a = LaneMatrix::new(2, 96);
        let mut b = LaneMatrix::new(2, 96);
        a.set(0, 3);
        b.set(0, 70);
        b.set(0, 3);
        a.or_row(0, &b);
        assert!(a.test(0, 70) && a.test(0, 3));
        let mask = b.row(0).to_vec();
        a.andnot_row(0, &mask);
        assert!(!a.test(0, 3) && !a.test(0, 70));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = LaneMatrix::new(4, 0);
    }
}
