//! Descriptive graph statistics.
//!
//! The experiment harness characterizes instances the way the paper's
//! Section V-A does (size, diameter, density class); this module adds the
//! degree-distribution view used to check that the synthetic proxies really
//! have the structure they are standing in for (power-law hubs for the
//! social/hyperlink proxies, near-constant degrees for the road proxies).

use crate::csr::{Graph, NodeId};

/// Summary of a degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (2|E|/|V|).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 99th-percentile degree.
    pub p99: usize,
    /// Gini coefficient of the degree distribution in [0, 1]: 0 = perfectly
    /// regular, → 1 = extremely hub-dominated. A robust scalar for "is this
    /// power-law-ish" without fitting exponents.
    pub gini: f64,
}

/// Computes degree statistics; `None` for the empty graph.
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let mut degrees: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let total: usize = degrees.iter().sum();
    let mean = total as f64 / n as f64;
    // Gini via the sorted-sum formula: G = (2·Σ i·d_i)/(n·Σ d_i) − (n+1)/n.
    let gini = if total == 0 {
        0.0
    } else {
        let weighted: f64 =
            degrees.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64).clamp(0.0, 1.0)
    };
    Some(DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean,
        median: degrees[n / 2],
        p99: degrees[((n - 1) as f64 * 0.99) as usize],
        gini,
    })
}

/// Degree histogram as `(degree, count)` pairs, ascending, skipping zeros.
pub fn degree_histogram(g: &Graph) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for v in 0..g.num_nodes() as NodeId {
        *counts.entry(g.degree(v)).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;
    use crate::generators::{grid, rmat, GridConfig, RmatConfig};

    #[test]
    fn regular_graph_stats() {
        // 6-cycle: every degree is 2.
        let edges: Vec<_> = (0..6u32).map(|v| (v, (v + 1) % 6)).collect();
        let g = graph_from_edges(6, &edges);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.median, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.gini < 1e-12, "regular graph must have zero Gini");
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        let edges: Vec<_> = (1..50u32).map(|v| (0, v)).collect();
        let g = graph_from_edges(50, &edges);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.max, 49);
        assert_eq!(s.median, 1);
        assert!(s.gini > 0.4, "star Gini {} too small", s.gini);
    }

    #[test]
    fn proxy_classes_are_separable_by_gini() {
        let road = grid(GridConfig { rows: 30, cols: 30, diagonal_prob: 0.05, seed: 1 });
        let social = rmat(RmatConfig::graph500(10, 8, 1));
        let g_road = degree_stats(&road).unwrap().gini;
        let g_social = degree_stats(&social).unwrap().gini;
        assert!(g_social > 2.0 * g_road, "social Gini {g_social} must dwarf road Gini {g_road}");
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = rmat(RmatConfig::graph500(8, 4, 2));
        let hist = degree_histogram(&g);
        let total: usize = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_nodes());
        // Ascending degrees.
        for w in hist.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_graph() {
        assert!(degree_stats(&graph_from_edges(0, &[])).is_none());
        assert!(degree_histogram(&graph_from_edges(0, &[])).is_empty());
    }
}
