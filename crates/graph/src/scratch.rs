//! Reusable per-thread traversal buffers.
//!
//! Every KADABRA sample performs a (bidirectional) BFS. Allocating
//! `O(|V|)` arrays per sample would dominate the per-sample cost the paper
//! reports (<10 ms per sample even on billion-edge graphs), so each sampling
//! thread owns one [`TraversalScratch`] and reuses it for every sample.
//!
//! Instead of clearing the distance arrays between samples (an `O(|V|)`
//! memset), the scratch uses the classic *timestamp* trick: a vertex's entry
//! is valid only if its stamp equals the current round number. Resetting is
//! then `O(1)` (bump the round), with a full clear only on the rare round
//! counter wrap — without that clear, a stamp written billions of rounds ago
//! would alias the recycled round number and resurrect stale state.
//!
//! The per-vertex state is stored as an array of structs ([`Slot`]): one
//! sample touches a sparse, essentially random subset of vertices, so keeping
//! a vertex's stamp, distance and σ in a single 16-byte record turns three
//! potential cache misses per probe into one.

use crate::csr::NodeId;
use crate::prefetch::prefetch_read;

/// Sentinel distance meaning "not reached in the current round".
pub const UNREACHED: u32 = u32::MAX;

/// Round-stamp integer for [`StampedState`].
///
/// The default is `u32`; tests instantiate `u8` to exercise the wrap path
/// cheaply (a `u32` stamp wraps only once per ~4 billion samples).
pub trait Stamp: Copy + Eq + std::fmt::Debug {
    /// Inactive stamp value; `reset` never yields a round equal to it, so a
    /// cleared slot can never read as visited.
    const CLEAR: Self;
    /// Largest round value; the reset after it performs the full-clear wrap.
    const LAST: Self;
    /// Successor of a non-[`Self::LAST`] value.
    fn next(self) -> Self;
}

impl Stamp for u32 {
    const CLEAR: Self = 0;
    const LAST: Self = u32::MAX;
    #[inline]
    fn next(self) -> Self {
        self + 1
    }
}

impl Stamp for u8 {
    const CLEAR: Self = 0;
    const LAST: Self = u8::MAX;
    #[inline]
    fn next(self) -> Self {
        self + 1
    }
}

/// Per-vertex BFS record: validity stamp, distance from the round's source,
/// and shortest-path count σ, packed together for single-miss probes.
#[derive(Clone, Copy)]
struct Slot<S> {
    /// Entry is valid iff `stamp == round` of the owning state.
    stamp: S,
    /// Distance from the round's source.
    dist: u32,
    /// Number of shortest paths from the source.
    sigma: u64,
}

/// One direction's worth of BFS state with O(1) reset, generic over the
/// stamp width (see [`Stamp`]).
pub struct StampedState<S: Stamp> {
    /// Per-vertex records; `slots[v]` is valid iff `slots[v].stamp == round`.
    slots: Vec<Slot<S>>,
    /// Current round.
    round: S,
    /// FIFO queue for the BFS frontier.
    pub queue: Vec<NodeId>,
}

/// The production stamp width: wraps once per ~4 billion samples.
pub type StampedBfsState = StampedState<u32>;

impl<S: Stamp> StampedState<S> {
    /// Creates state sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        StampedState {
            slots: vec![Slot { stamp: S::CLEAR, dist: UNREACHED, sigma: 0 }; n],
            round: S::CLEAR,
            queue: Vec::new(),
        }
    }

    /// Starts a fresh traversal round; O(1) except on round-counter wrap,
    /// where every stamp is cleared so recycled round numbers cannot alias
    /// stamps written before the wrap.
    pub fn reset(&mut self) {
        self.queue.clear();
        if self.round == S::LAST {
            for slot in &mut self.slots {
                slot.stamp = S::CLEAR;
            }
            self.round = S::CLEAR;
        }
        self.round = self.round.next();
    }

    /// Distance of `v` in the current round, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        self.dist_at(v as usize)
    }

    /// σ(v): number of shortest source→v paths found this round (0 if unreached).
    #[inline]
    pub fn sigma(&self, v: NodeId) -> u64 {
        self.sigma_at(v as usize)
    }

    /// Marks `v` visited at `dist` with initial path count `sigma`.
    #[inline]
    pub fn visit(&mut self, v: NodeId, dist: u32, sigma: u64) {
        self.visit_at(v as usize, dist, sigma);
    }

    /// Adds `extra` shortest paths to `v`'s count. `v` must be visited.
    #[inline]
    pub fn add_sigma(&mut self, v: NodeId, extra: u64) {
        self.add_sigma_at(v as usize, extra);
    }

    /// Whether `v` was reached this round.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.reached_at(v as usize)
    }

    /// [`StampedState::dist`] on a raw slot index. The batched kernel stores
    /// a lane-strided arena (slot `v·W + lane`) in one state, so the arena
    /// accessors take a `usize` computed by the caller instead of a `NodeId`.
    #[inline]
    pub fn dist_at(&self, idx: usize) -> u32 {
        let slot = &self.slots[idx];
        if slot.stamp == self.round {
            slot.dist
        } else {
            UNREACHED
        }
    }

    /// [`StampedState::sigma`] on a raw slot index.
    #[inline]
    pub fn sigma_at(&self, idx: usize) -> u64 {
        let slot = &self.slots[idx];
        if slot.stamp == self.round {
            slot.sigma
        } else {
            0
        }
    }

    /// [`StampedState::visit`] on a raw slot index.
    #[inline]
    pub fn visit_at(&mut self, idx: usize, dist: u32, sigma: u64) {
        self.slots[idx] = Slot { stamp: self.round, dist, sigma };
    }

    /// [`StampedState::add_sigma`] on a raw slot index.
    #[inline]
    pub fn add_sigma_at(&mut self, idx: usize, extra: u64) {
        let slot = &mut self.slots[idx];
        debug_assert!(slot.stamp == self.round);
        slot.sigma = slot.sigma.saturating_add(extra);
    }

    /// [`StampedState::reached`] on a raw slot index.
    #[inline]
    pub fn reached_at(&self, idx: usize) -> bool {
        self.slots[idx].stamp == self.round
    }

    /// Single-probe record read: `Some((dist, σ))` if `v` was reached this
    /// round, else `None`. One slot load where separate
    /// `reached`/`dist`/`sigma` calls would touch the slot three times — the
    /// backtrack walk's predecessor scan is built on this.
    #[inline]
    pub fn record(&self, v: NodeId) -> Option<(u32, u64)> {
        self.record_at(v as usize)
    }

    /// [`StampedState::record`] on a raw slot index.
    #[inline]
    pub fn record_at(&self, idx: usize) -> Option<(u32, u64)> {
        let slot = &self.slots[idx];
        if slot.stamp == self.round {
            Some((slot.dist, slot.sigma))
        } else {
            None
        }
    }

    /// Single-probe BFS relaxation for the hot sampling loop: if `v` is
    /// unvisited this round, settles it at `dist` with count `sigma` and
    /// returns `true`; if `v` is already settled *at the same distance*,
    /// accumulates `sigma` and returns `false`; otherwise returns `false`
    /// without touching the record.
    #[inline]
    pub fn settle_or_merge(&mut self, v: NodeId, dist: u32, sigma: u64) -> bool {
        let slot = &mut self.slots[v as usize];
        if slot.stamp == self.round {
            if slot.dist == dist {
                slot.sigma = slot.sigma.saturating_add(sigma);
            }
            false
        } else {
            *slot = Slot { stamp: self.round, dist, sigma };
            true
        }
    }

    /// Hints the CPU to pull `v`'s record into cache ahead of a probe.
    #[inline]
    pub fn prefetch(&self, v: NodeId) {
        prefetch_read(&self.slots, v as usize);
    }

    /// [`StampedState::prefetch`] on a raw slot index.
    #[inline]
    pub fn prefetch_at(&self, idx: usize) {
        prefetch_read(&self.slots, idx);
    }

    /// Number of vertices this state was sized for.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if sized for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Scratch space for one sampling thread: two stamped BFS states (forward
/// from `s`, backward from `t`), frontier buffers, and result buffers for the
/// sampled shortest path. All buffers are reused across samples, so at steady
/// state a sample performs no heap allocation.
pub struct TraversalScratch {
    /// Forward BFS state (from the sample's source `s`).
    pub fwd: StampedBfsState,
    /// Backward BFS state (from the sample's target `t`).
    pub bwd: StampedBfsState,
    /// The most recently sampled path, as interior vertices only.
    pub path: Vec<NodeId>,
    /// Bridge-edge buffer reused by the bidirectional sampler.
    pub bridges: Vec<(NodeId, NodeId, u64)>,
    /// Forward frontier (most recently completed level around `s`).
    pub frontier_fwd: Vec<NodeId>,
    /// Backward frontier (most recently completed level around `t`).
    pub frontier_bwd: Vec<NodeId>,
    /// The level currently being built; swapped into a frontier when done.
    pub next_frontier: Vec<NodeId>,
    /// Meeting vertices of the final level: (vertex, settled other-side dist).
    pub meets: Vec<(NodeId, u32)>,
    /// Meeting-cut vertices with their path-count weights σ_near·σ_far.
    pub cut: Vec<(NodeId, u128)>,
}

impl TraversalScratch {
    /// Allocates scratch for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        TraversalScratch {
            fwd: StampedBfsState::new(n),
            bwd: StampedBfsState::new(n),
            path: Vec::new(),
            bridges: Vec::new(),
            frontier_fwd: Vec::new(),
            frontier_bwd: Vec::new(),
            next_frontier: Vec::new(),
            meets: Vec::new(),
            cut: Vec::new(),
        }
    }

    /// Resets both directions and all buffers for a new sample.
    pub fn reset(&mut self) {
        self.fwd.reset();
        self.bwd.reset();
        self.path.clear();
        self.bridges.clear();
        self.frontier_fwd.clear();
        self.frontier_bwd.clear();
        self.next_frontier.clear();
        self.meets.clear();
        self.cut.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_reports_unreached() {
        let mut st = StampedBfsState::new(4);
        st.reset();
        for v in 0..4 {
            assert_eq!(st.dist(v), UNREACHED);
            assert_eq!(st.sigma(v), 0);
            assert!(!st.reached(v));
        }
    }

    #[test]
    fn visit_and_reset_invalidate() {
        let mut st = StampedBfsState::new(4);
        st.reset();
        st.visit(2, 5, 7);
        assert_eq!(st.dist(2), 5);
        assert_eq!(st.sigma(2), 7);
        assert!(st.reached(2));
        st.reset();
        assert_eq!(st.dist(2), UNREACHED);
        assert_eq!(st.sigma(2), 0);
        assert!(!st.reached(2));
    }

    #[test]
    fn add_sigma_accumulates() {
        let mut st = StampedBfsState::new(2);
        st.reset();
        st.visit(0, 0, 1);
        st.add_sigma(0, 3);
        assert_eq!(st.sigma(0), 4);
    }

    #[test]
    fn settle_or_merge_matches_visit_semantics() {
        let mut st = StampedBfsState::new(3);
        st.reset();
        assert!(st.settle_or_merge(1, 2, 5));
        // Same distance: merge.
        assert!(!st.settle_or_merge(1, 2, 3));
        assert_eq!(st.sigma(1), 8);
        // Larger distance: ignored.
        assert!(!st.settle_or_merge(1, 3, 100));
        assert_eq!(st.sigma(1), 8);
        assert_eq!(st.dist(1), 2);
    }

    #[test]
    fn round_wrap_clears_stamps() {
        let mut st = StampedBfsState::new(2);
        st.reset();
        st.visit(0, 1, 1);
        st.round = u32::MAX; // force the wrap path
        st.reset();
        assert!(!st.reached(0));
        st.visit(1, 2, 2);
        assert_eq!(st.dist(1), 2);
    }

    /// Force a *natural* stamp wrap with a `u8` stamp: without the full clear
    /// on wrap, the stamp written in round `r` would alias round `r` of the
    /// next stamp cycle and resurrect stale distances.
    #[test]
    fn u8_stamp_survives_natural_wraparound() {
        let mut st: StampedState<u8> = StampedState::new(4);
        // Visit vertex 3 during round 7 of the first stamp cycle.
        for _ in 0..7 {
            st.reset();
        }
        st.visit(3, 42, 9);
        assert_eq!(st.dist(3), 42);
        // Run resets through the u8 wrap and back around to round 7 of the
        // second cycle: 255 rounds per cycle, so 255 more resets land the
        // round counter exactly where vertex 3's stale stamp sits.
        for _ in 0..255 {
            st.reset();
            assert!(!st.reached(3), "stale stamp resurrected after wrap");
        }
        // A second full cycle for good measure.
        for _ in 0..255 {
            st.reset();
            assert!(!st.reached(3));
            assert_eq!(st.dist(3), UNREACHED);
            assert_eq!(st.sigma(3), 0);
        }
        // The state still works normally after two wraps.
        st.visit(3, 1, 2);
        assert_eq!(st.dist(3), 1);
        assert_eq!(st.sigma(3), 2);
    }

    #[test]
    fn scratch_reset_clears_everything() {
        let mut sc = TraversalScratch::new(3);
        sc.reset();
        sc.fwd.visit(0, 0, 1);
        sc.bwd.visit(2, 0, 1);
        sc.path.push(1);
        sc.bridges.push((0, 2, 1));
        sc.frontier_fwd.push(0);
        sc.frontier_bwd.push(2);
        sc.next_frontier.push(1);
        sc.meets.push((1, 1));
        sc.cut.push((1, 1));
        sc.reset();
        assert!(!sc.fwd.reached(0));
        assert!(!sc.bwd.reached(2));
        assert!(sc.path.is_empty());
        assert!(sc.bridges.is_empty());
        assert!(sc.frontier_fwd.is_empty());
        assert!(sc.frontier_bwd.is_empty());
        assert!(sc.next_frontier.is_empty());
        assert!(sc.meets.is_empty());
        assert!(sc.cut.is_empty());
    }

    #[test]
    fn many_rounds_stay_consistent() {
        let mut st = StampedBfsState::new(8);
        for r in 0..1000u32 {
            st.reset();
            let v = (r % 8) as NodeId;
            st.visit(v, r, 1);
            assert_eq!(st.dist(v), r);
            // All other vertices must read unreached.
            for u in 0..8 {
                if u != v {
                    assert!(!st.reached(u));
                }
            }
        }
    }
}
