//! Reusable per-thread traversal buffers.
//!
//! Every KADABRA sample performs a (bidirectional) BFS. Allocating
//! `O(|V|)` arrays per sample would dominate the per-sample cost the paper
//! reports (<10 ms per sample even on billion-edge graphs), so each sampling
//! thread owns one [`TraversalScratch`] and reuses it for every sample.
//!
//! Instead of clearing the distance arrays between samples (an `O(|V|)`
//! memset), the scratch uses the classic *timestamp* trick: a vertex's entry
//! is valid only if its stamp equals the current round number. Resetting is
//! then `O(1)` (bump the round), with a full clear only on the rare round
//! counter wrap.

use crate::csr::NodeId;

/// Sentinel distance meaning "not reached in the current round".
pub const UNREACHED: u32 = u32::MAX;

/// One direction's worth of BFS state with O(1) reset.
pub struct StampedBfsState {
    /// Distance from the round's source; valid iff `stamp[v] == round`.
    dist: Vec<u32>,
    /// Number of shortest paths from the source (σ); valid under the same stamp.
    sigma: Vec<u64>,
    /// Round stamp per vertex.
    stamp: Vec<u32>,
    /// Current round.
    round: u32,
    /// FIFO queue for the BFS frontier.
    pub queue: Vec<NodeId>,
}

impl StampedBfsState {
    /// Creates state sized for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        StampedBfsState {
            dist: vec![UNREACHED; n],
            sigma: vec![0; n],
            stamp: vec![0; n],
            round: 0,
            queue: Vec::new(),
        }
    }

    /// Starts a fresh traversal round; O(1) except on round-counter wrap.
    pub fn reset(&mut self) {
        self.queue.clear();
        if self.round == u32::MAX {
            self.stamp.fill(0);
            self.round = 0;
        }
        self.round += 1;
    }

    /// Distance of `v` in the current round, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        if self.stamp[v as usize] == self.round {
            self.dist[v as usize]
        } else {
            UNREACHED
        }
    }

    /// σ(v): number of shortest source→v paths found this round (0 if unreached).
    #[inline]
    pub fn sigma(&self, v: NodeId) -> u64 {
        if self.stamp[v as usize] == self.round {
            self.sigma[v as usize]
        } else {
            0
        }
    }

    /// Marks `v` visited at `dist` with initial path count `sigma`.
    #[inline]
    pub fn visit(&mut self, v: NodeId, dist: u32, sigma: u64) {
        self.stamp[v as usize] = self.round;
        self.dist[v as usize] = dist;
        self.sigma[v as usize] = sigma;
    }

    /// Adds `extra` shortest paths to `v`'s count. `v` must be visited.
    #[inline]
    pub fn add_sigma(&mut self, v: NodeId, extra: u64) {
        debug_assert_eq!(self.stamp[v as usize], self.round);
        self.sigma[v as usize] = self.sigma[v as usize].saturating_add(extra);
    }

    /// Whether `v` was reached this round.
    #[inline]
    pub fn reached(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.round
    }

    /// Number of vertices this state was sized for.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// True if sized for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }
}

/// Scratch space for one sampling thread: two stamped BFS states (forward
/// from `s`, backward from `t`) plus a path buffer for the sampled shortest
/// path.
pub struct TraversalScratch {
    /// Forward BFS state (from the sample's source `s`).
    pub fwd: StampedBfsState,
    /// Backward BFS state (from the sample's target `t`).
    pub bwd: StampedBfsState,
    /// The most recently sampled path, as interior vertices only.
    pub path: Vec<NodeId>,
    /// Bridge-edge buffer reused by the bidirectional sampler.
    pub bridges: Vec<(NodeId, NodeId, u64)>,
}

impl TraversalScratch {
    /// Allocates scratch for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        TraversalScratch {
            fwd: StampedBfsState::new(n),
            bwd: StampedBfsState::new(n),
            path: Vec::new(),
            bridges: Vec::new(),
        }
    }

    /// Resets both directions for a new sample.
    pub fn reset(&mut self) {
        self.fwd.reset();
        self.bwd.reset();
        self.path.clear();
        self.bridges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_reports_unreached() {
        let mut st = StampedBfsState::new(4);
        st.reset();
        for v in 0..4 {
            assert_eq!(st.dist(v), UNREACHED);
            assert_eq!(st.sigma(v), 0);
            assert!(!st.reached(v));
        }
    }

    #[test]
    fn visit_and_reset_invalidate() {
        let mut st = StampedBfsState::new(4);
        st.reset();
        st.visit(2, 5, 7);
        assert_eq!(st.dist(2), 5);
        assert_eq!(st.sigma(2), 7);
        assert!(st.reached(2));
        st.reset();
        assert_eq!(st.dist(2), UNREACHED);
        assert_eq!(st.sigma(2), 0);
        assert!(!st.reached(2));
    }

    #[test]
    fn add_sigma_accumulates() {
        let mut st = StampedBfsState::new(2);
        st.reset();
        st.visit(0, 0, 1);
        st.add_sigma(0, 3);
        assert_eq!(st.sigma(0), 4);
    }

    #[test]
    fn round_wrap_clears_stamps() {
        let mut st = StampedBfsState::new(2);
        st.reset();
        st.visit(0, 1, 1);
        st.round = u32::MAX; // force the wrap path
        st.reset();
        assert!(!st.reached(0));
        st.visit(1, 2, 2);
        assert_eq!(st.dist(1), 2);
    }

    #[test]
    fn scratch_reset_clears_everything() {
        let mut sc = TraversalScratch::new(3);
        sc.reset();
        sc.fwd.visit(0, 0, 1);
        sc.bwd.visit(2, 0, 1);
        sc.path.push(1);
        sc.bridges.push((0, 2, 1));
        sc.reset();
        assert!(!sc.fwd.reached(0));
        assert!(!sc.bwd.reached(2));
        assert!(sc.path.is_empty());
        assert!(sc.bridges.is_empty());
    }

    #[test]
    fn many_rounds_stay_consistent() {
        let mut st = StampedBfsState::new(8);
        for r in 0..1000u32 {
            st.reset();
            let v = (r % 8) as NodeId;
            st.visit(v, r, 1);
            assert_eq!(st.dist(v), r);
            // All other vertices must read unreached.
            for u in 0..8 {
                if u != v {
                    assert!(!st.reached(u));
                }
            }
        }
    }
}
