//! Directed graphs.
//!
//! Footnote 1 of the paper: "The parallelization techniques considered in
//! this paper also apply to directed and/or weighted graphs if the required
//! modifications to the underlying sampling algorithm are done." This module
//! provides those modifications' substrate for the *directed* case: a CSR
//! digraph storing both the out-adjacency and the in-adjacency ("NetworKit
//! stores both the graph and its reverse/transpose to be able to efficiently
//! compute a bidirectional BFS", Section IV-F), directed BFS, and the
//! directed bidirectional uniform shortest-path sampler.

use crate::csr::NodeId;
use crate::scratch::{StampedBfsState, TraversalScratch, UNREACHED};
use rand::Rng;

/// A static directed graph: out-edges in CSR form plus the transpose.
#[derive(Clone, PartialEq, Eq)]
pub struct DiGraph {
    out_offsets: Vec<u64>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<u64>,
    in_targets: Vec<NodeId>,
}

impl DiGraph {
    /// Builds a digraph from an arc list over `n` vertices. Self-loops are
    /// dropped and duplicate arcs merged; `(u, v)` and `(v, u)` are distinct.
    pub fn from_arcs(n: usize, arcs: &[(NodeId, NodeId)]) -> DiGraph {
        assert!(n <= NodeId::MAX as usize, "too many vertices for u32 ids");
        let mut cleaned: Vec<(NodeId, NodeId)> = arcs
            .iter()
            .copied()
            .inspect(|&(u, v)| {
                assert!((u as usize) < n && (v as usize) < n, "arc endpoint out of range");
            })
            .filter(|&(u, v)| u != v)
            .collect();
        cleaned.sort_unstable();
        cleaned.dedup();
        let build = |n: usize, pairs: &[(NodeId, NodeId)]| -> (Vec<u64>, Vec<NodeId>) {
            let mut offsets = vec![0u64; n + 1];
            for &(u, _) in pairs {
                offsets[u as usize + 1] += 1;
            }
            for i in 0..n {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets[..n].to_vec();
            let mut targets = vec![0 as NodeId; pairs.len()];
            for &(u, v) in pairs {
                targets[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
            }
            (offsets, targets)
        };
        let (out_offsets, out_targets) = build(n, &cleaned);
        let mut reversed: Vec<(NodeId, NodeId)> = cleaned.iter().map(|&(u, v)| (v, u)).collect();
        reversed.sort_unstable();
        let (in_offsets, in_targets) = build(n, &reversed);
        DiGraph { out_offsets, out_targets, in_offsets, in_targets }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbours of `v` (sorted).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v` (sorted) — the transpose adjacency.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.in_offsets[v as usize] as usize;
        let hi = self.in_offsets[v as usize + 1] as usize;
        &self.in_targets[lo..hi]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_neighbors(v).len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Whether the arc `u -> v` exists.
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }
}

impl std::fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiGraph")
            .field("nodes", &self.num_nodes())
            .field("arcs", &self.num_arcs())
            .finish()
    }
}

/// Directed BFS distances from `source` along out-edges.
pub fn directed_bfs(g: &DiGraph, source: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHED; n];
    let mut queue = vec![source];
    dist[source as usize] = 0;
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        for &v in g.out_neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Result of a directed path sample (same semantics as the undirected
/// [`crate::bibfs::PathSample`]).
pub type DirectedPathSample = crate::bibfs::PathSample;

/// Samples a uniformly random shortest directed `s -> t` path with a
/// balanced bidirectional BFS: the forward search follows out-edges, the
/// backward search follows in-edges (this is where the stored transpose
/// pays off). Correctness argument identical to the undirected sampler
/// (see [`crate::bibfs`]); the cut/σ algebra is direction-agnostic.
pub fn sample_directed_shortest_path<R: Rng + ?Sized>(
    g: &DiGraph,
    s: NodeId,
    t: NodeId,
    scratch: &mut TraversalScratch,
    rng: &mut R,
) -> Option<DirectedPathSample> {
    assert!(s != t, "sampling requires distinct endpoints");
    assert!((s as usize) < g.num_nodes() && (t as usize) < g.num_nodes());
    scratch.reset();

    let mut frontier_s = vec![s];
    let mut frontier_t = vec![t];
    scratch.fwd.visit(s, 0, 1);
    scratch.bwd.visit(t, 0, 1);
    let mut ds = 0u32;
    let mut dt = 0u32;
    let mut deg_s = g.out_degree(s) as u64;
    let mut deg_t = g.in_degree(t) as u64;
    let mut meets: Vec<(NodeId, u32)> = Vec::new();

    loop {
        if frontier_s.is_empty() || frontier_t.is_empty() {
            return None;
        }
        let expand_fwd = deg_s <= deg_t;
        let new_depth;
        {
            let (state, other, frontier, depth): (
                &mut StampedBfsState,
                &mut StampedBfsState,
                &mut Vec<NodeId>,
                &mut u32,
            ) = if expand_fwd {
                (&mut scratch.fwd, &mut scratch.bwd, &mut frontier_s, &mut ds)
            } else {
                (&mut scratch.bwd, &mut scratch.fwd, &mut frontier_t, &mut dt)
            };
            new_depth = *depth + 1;
            let mut next = Vec::new();
            let mut next_deg = 0u64;
            for &u in frontier.iter() {
                let su = state.sigma(u);
                let neigh = if expand_fwd { g.out_neighbors(u) } else { g.in_neighbors(u) };
                for &v in neigh {
                    if state.reached(v) {
                        if state.dist(v) == new_depth {
                            state.add_sigma(v, su);
                        }
                    } else {
                        state.visit(v, new_depth, su);
                        next.push(v);
                        next_deg +=
                            if expand_fwd { g.out_degree(v) as u64 } else { g.in_degree(v) as u64 };
                        if other.reached(v) {
                            meets.push((v, other.dist(v)));
                        }
                    }
                }
            }
            *depth = new_depth;
            *frontier = next;
            if expand_fwd {
                deg_s = next_deg;
            } else {
                deg_t = next_deg;
            }
        }
        if meets.is_empty() {
            continue;
        }
        // xtask: allow(unwrap) — meets checked non-empty above.
        let k0 = meets.iter().map(|&(_, k)| k).min().unwrap();
        let distance = new_depth + k0;
        let (near, far) =
            if expand_fwd { (&scratch.fwd, &scratch.bwd) } else { (&scratch.bwd, &scratch.fwd) };
        let cut: Vec<(NodeId, u128)> = meets
            .iter()
            .filter(|&&(_, k)| k == k0)
            .map(|&(v, _)| ((near.sigma(v) as u128).saturating_mul(far.sigma(v) as u128), v))
            .map(|(w, v)| (v, w))
            .collect();
        let num_paths: u128 = cut.iter().fold(0u128, |a, &(_, w)| a.saturating_add(w));
        let mut pick = rng.gen_range(0..num_paths);
        let mut chosen = cut[0].0;
        for &(v, w) in &cut {
            if pick < w {
                chosen = v;
                break;
            }
            pick -= w;
        }
        scratch.path.clear();
        // Walk towards s along in-edges of the forward tree, towards t along
        // out-edges of the backward tree.
        backtrack_directed(g, &scratch.fwd, chosen, true, &mut scratch.path, rng);
        if chosen != s && chosen != t {
            scratch.path.push(chosen);
        }
        backtrack_directed(g, &scratch.bwd, chosen, false, &mut scratch.path, rng);
        // xtask: allow(determinism) — a shortest path visits each vertex at
        // most once, so its length fits the CSR-guaranteed u32.
        debug_assert_eq!(scratch.path.len() as u32 + 1, distance);
        return Some(DirectedPathSample { distance, interior: scratch.path.clone(), num_paths });
    }
}

/// σ-proportional backtracking. For the forward tree predecessors of `v` are
/// its in-neighbours at distance `d(v) − 1`; for the backward tree they are
/// out-neighbours.
fn backtrack_directed<R: Rng + ?Sized>(
    g: &DiGraph,
    state: &StampedBfsState,
    from: NodeId,
    forward_tree: bool,
    out: &mut Vec<NodeId>,
    rng: &mut R,
) {
    let mut cur = from;
    let mut d = state.dist(cur);
    while d > 1 {
        let preds = if forward_tree { g.in_neighbors(cur) } else { g.out_neighbors(cur) };
        let mut total = 0u64;
        for &u in preds {
            if state.reached(u) && state.dist(u) == d - 1 {
                total += state.sigma(u);
            }
        }
        debug_assert!(total > 0);
        let mut pick = rng.gen_range(0..total);
        let mut nxt = cur;
        for &u in preds {
            if state.reached(u) && state.dist(u) == d - 1 {
                let su = state.sigma(u);
                if pick < su {
                    nxt = u;
                    break;
                }
                pick -= su;
            }
        }
        debug_assert_ne!(nxt, cur);
        out.push(nxt);
        cur = nxt;
        d -= 1;
    }
}

/// Exhaustive enumeration of all shortest directed `s -> t` paths (test
/// oracle; exponential). Returns interior vertex lists.
pub fn enumerate_directed_shortest_paths(g: &DiGraph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert!(s != t);
    let dist = directed_bfs(g, s);
    if dist[t as usize] == UNREACHED {
        return Vec::new();
    }
    let mut paths = Vec::new();
    let mut stack = vec![t];
    fn rec(
        g: &DiGraph,
        dist: &[u32],
        s: NodeId,
        cur: NodeId,
        stack: &mut Vec<NodeId>,
        paths: &mut Vec<Vec<NodeId>>,
    ) {
        if cur == s {
            let mut interior: Vec<NodeId> = stack[1..stack.len() - 1].to_vec();
            interior.reverse();
            paths.push(interior);
            return;
        }
        let d = dist[cur as usize];
        for &u in g.in_neighbors(cur) {
            if dist[u as usize] != UNREACHED && dist[u as usize] + 1 == d {
                stack.push(u);
                rec(g, dist, s, u, stack, paths);
                stack.pop();
            }
        }
    }
    rec(g, &dist, s, t, &mut stack, &mut paths);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: u32) -> DiGraph {
        let arcs: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        DiGraph::from_arcs(n as usize, &arcs)
    }

    #[test]
    fn construction_and_transpose() {
        let g = DiGraph::from_arcs(4, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
        assert_eq!(g.in_degree(0), 1);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = DiGraph::from_arcs(3, &[(0, 0), (0, 1), (0, 1), (1, 2)]);
        assert_eq!(g.num_arcs(), 2);
    }

    #[test]
    fn directed_bfs_respects_orientation() {
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        assert_eq!(directed_bfs(&g, 0), vec![0, 1, 2]);
        assert_eq!(directed_bfs(&g, 2), vec![UNREACHED, UNREACHED, 0]);
    }

    #[test]
    fn cycle_distances_are_asymmetric() {
        let g = cycle(6);
        let d = directed_bfs(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[5], 5); // must go all the way around
    }

    #[test]
    fn sampler_distance_matches_bfs() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(1);
        for trial in 0..30 {
            let n = 15usize;
            let mut arcs = Vec::new();
            for u in 0..n as NodeId {
                for v in 0..n as NodeId {
                    if u != v && rng.gen_bool(0.15) {
                        arcs.push((u, v));
                    }
                }
            }
            let g = DiGraph::from_arcs(n, &arcs);
            let mut sc = TraversalScratch::new(n);
            for _ in 0..15 {
                let s = rng.gen_range(0..n as NodeId);
                let t = rng.gen_range(0..n as NodeId);
                if s == t {
                    continue;
                }
                let d = directed_bfs(&g, s)[t as usize];
                match sample_directed_shortest_path(&g, s, t, &mut sc, &mut rng) {
                    None => assert_eq!(d, UNREACHED, "trial {trial}: s={s} t={t}"),
                    Some(p) => assert_eq!(p.distance, d, "trial {trial}: s={s} t={t}"),
                }
            }
        }
    }

    #[test]
    fn sampler_counts_match_enumeration() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let n = 10usize;
            let mut arcs = Vec::new();
            for u in 0..n as NodeId {
                for v in 0..n as NodeId {
                    if u != v && rng.gen_bool(0.2) {
                        arcs.push((u, v));
                    }
                }
            }
            let g = DiGraph::from_arcs(n, &arcs);
            let mut sc = TraversalScratch::new(n);
            for (s, t) in [(0, 9), (3, 7), (8, 1)] {
                let all = enumerate_directed_shortest_paths(&g, s, t);
                match sample_directed_shortest_path(&g, s, t, &mut sc, &mut rng) {
                    None => assert!(all.is_empty()),
                    Some(p) => {
                        assert_eq!(p.num_paths as usize, all.len());
                        let mut key = p.interior.clone();
                        key.sort_unstable();
                        assert!(all.iter().any(|cand| {
                            let mut c = cand.clone();
                            c.sort_unstable();
                            c == key
                        }));
                    }
                }
            }
        }
    }

    #[test]
    fn sampler_uniformity_on_directed_diamond() {
        // 0 -> {1,2} -> 3: two shortest paths. Back-arcs 3 -> 0 present to
        // make it strongly connected (and to check they don't interfere).
        let g = DiGraph::from_arcs(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)]);
        let mut sc = TraversalScratch::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u64; 2];
        let trials = 20_000;
        for _ in 0..trials {
            let p = sample_directed_shortest_path(&g, 0, 3, &mut sc, &mut rng).unwrap();
            assert_eq!(p.num_paths, 2);
            hits[(p.interior[0] == 2) as usize] += 1;
        }
        let frac = hits[0] as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.02, "biased: {hits:?}");
    }

    #[test]
    fn one_way_reachability() {
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let mut sc = TraversalScratch::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(sample_directed_shortest_path(&g, 0, 2, &mut sc, &mut rng).is_some());
        assert!(sample_directed_shortest_path(&g, 2, 0, &mut sc, &mut rng).is_none());
    }

    #[test]
    fn enumerate_on_directed_cycle() {
        let g = cycle(5);
        let paths = enumerate_directed_shortest_paths(&g, 0, 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_rejected() {
        DiGraph::from_arcs(2, &[(0, 5)]);
    }
}
