//! Best-effort software prefetch hints.
//!
//! The sampling kernel's probes into the stamped BFS state and into adjacency
//! rows are data-dependent random accesses — exactly the pattern hardware
//! prefetchers cannot predict. Issuing an explicit prefetch a few iterations
//! ahead overlaps the memory latency with useful work. On architectures
//! without a prefetch intrinsic the hint compiles to nothing; correctness
//! never depends on it.

/// Hints the CPU to pull `data[index]` into L1. Out-of-range indices are
/// silently ignored; the hint has no architectural effect either way.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], index: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if index < data.len() {
            // SAFETY: `_mm_prefetch` is a pure cache hint with no
            // architectural side effects and cannot fault; the pointer is
            // in-bounds by the check above.
            #[allow(unsafe_code)]
            unsafe {
                use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(index).cast::<i8>());
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        let data = vec![1u64, 2, 3];
        prefetch_read(&data, 0);
        prefetch_read(&data, 2);
        prefetch_read(&data, 1_000_000); // out of range: ignored
        let empty: Vec<u32> = Vec::new();
        prefetch_read(&empty, 0);
        assert_eq!(data, vec![1, 2, 3]);
    }
}
