//! Barabási–Albert preferential-attachment generator.
//!
//! A third power-law model besides R-MAT and the hyperbolic graphs: each new
//! vertex attaches `m` edges to existing vertices with probability
//! proportional to their current degree (implemented with the standard
//! repeated-endpoint trick: sampling a uniform position in the running edge
//! list *is* degree-proportional sampling). Degree exponent γ ≈ 3, matching
//! the paper's synthetic setting; unlike R-MAT the graph is connected by
//! construction, which makes it convenient for tests that need a connected
//! power-law instance without an LCC pass.

use crate::csr::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Barabási–Albert parameters.
#[derive(Debug, Clone, Copy)]
pub struct BaConfig {
    /// Total number of vertices (must exceed `m`).
    pub n: usize,
    /// Edges attached per arriving vertex.
    pub m: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a Barabási–Albert graph. The first `m + 1` vertices form a
/// clique seed; every later vertex attaches `m` degree-proportional edges
/// (duplicate targets are resampled, so each arrival contributes exactly
/// `m` distinct edges).
pub fn barabasi_albert(cfg: BaConfig) -> Graph {
    assert!(cfg.m >= 1, "m must be at least 1");
    assert!(cfg.n > cfg.m, "n must exceed m");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(cfg.n, cfg.n * cfg.m);
    // Flattened endpoint list: picking a uniform element samples a vertex
    // with probability proportional to its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * cfg.n * cfg.m);

    // Clique seed over m + 1 vertices.
    let seed_n = cfg.m + 1;
    for u in 0..seed_n as NodeId {
        for v in (u + 1)..seed_n as NodeId {
            // xtask: allow(unwrap) — seed ids < seed_n <= n by construction.
            builder.add_edge(u, v).expect("seed ids in range");
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut targets: Vec<NodeId> = Vec::with_capacity(cfg.m);
    for v in seed_n..cfg.n {
        targets.clear();
        while targets.len() < cfg.m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            // xtask: allow(unwrap) — targets drawn from prior endpoints < v.
            builder.add_edge(v as NodeId, t).expect("ids in range");
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::stats::degree_stats;

    #[test]
    fn edge_count_is_exact() {
        let cfg = BaConfig { n: 500, m: 3, seed: 1 };
        let g = barabasi_albert(cfg);
        let seed_edges = 4 * 3 / 2;
        assert_eq!(g.num_edges(), seed_edges + (500 - 4) * 3);
    }

    #[test]
    fn connected_by_construction() {
        let g = barabasi_albert(BaConfig { n: 300, m: 2, seed: 2 });
        assert_eq!(connected_components(&g).count(), 1);
    }

    #[test]
    fn minimum_degree_is_m() {
        let g = barabasi_albert(BaConfig { n: 400, m: 4, seed: 3 });
        let s = degree_stats(&g).unwrap();
        assert!(s.min >= 4);
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(BaConfig { n: 2000, m: 3, seed: 4 });
        let s = degree_stats(&g).unwrap();
        assert!(
            s.max as f64 > 6.0 * s.mean,
            "no preferential-attachment hubs: max {} mean {}",
            s.max,
            s.mean
        );
        assert!(s.gini > 0.2, "degree Gini {} too regular", s.gini);
    }

    #[test]
    fn deterministic() {
        let cfg = BaConfig { n: 200, m: 2, seed: 5 };
        assert_eq!(barabasi_albert(cfg), barabasi_albert(cfg));
    }

    #[test]
    fn canonical_output() {
        let g = barabasi_albert(BaConfig { n: 150, m: 3, seed: 6 });
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    #[should_panic(expected = "n must exceed m")]
    fn rejects_tiny_n() {
        barabasi_albert(BaConfig { n: 3, m: 3, seed: 0 });
    }
}
