//! Synthetic graph generators.
//!
//! These stand in for the paper's evaluation inputs (DESIGN.md §3):
//!
//! * [`rmat`] — R-MAT with the Graph500 parameters `(a,b,c,d) =
//!   (0.57, 0.19, 0.19, 0.05)` used in Section V-C; proxies for the social
//!   and hyperlink networks of Table I.
//! * [`hyperbolic`] — random hyperbolic graphs with power-law exponent 3,
//!   exactly the second synthetic model of Section V-C.
//! * [`grid`] — road-network-like grids with high diameter, proxying
//!   `roadNet-PA`/`roadNet-CA`/`dimacs9-NE`, the paper's "challenging"
//!   high-diameter inputs.
//! * [`gnm`] — Erdős–Rényi G(n, m), useful as an unstructured control and in
//!   randomized tests.
//! * [`barabasi_albert`] — preferential attachment; a connected power-law
//!   model convenient for tests.
//!
//! All generators are deterministic functions of their seed.

mod ba_gen;
mod gnm_gen;
mod grid_gen;
mod hyperbolic_gen;
mod rmat_gen;

pub use ba_gen::{barabasi_albert, BaConfig};
pub use gnm_gen::{gnm, GnmConfig};
pub use grid_gen::{grid, GridConfig};
pub use hyperbolic_gen::{hyperbolic, HyperbolicConfig};
pub use rmat_gen::{rmat, RmatConfig};
