//! Road-network-like grid generator.
//!
//! The paper's hardest shared-memory instances are road networks
//! (`roadNet-PA`, `roadNet-CA`, `dimacs9-NE`): sparse, near-planar, with
//! diameters in the hundreds to thousands (Table I). A rectangular grid with
//! a sprinkle of diagonal shortcuts reproduces all of those properties:
//! average degree ≈ 2–4, diameter ≈ rows + cols, and an enormous number of
//! tied shortest paths — which is exactly what makes road networks require
//! so many samples in Table II.

use crate::csr::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Grid parameters.
#[derive(Debug, Clone, Copy)]
pub struct GridConfig {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Probability of adding the "\" diagonal in each unit cell (road-like
    /// shortcut density; 0 gives a pure grid).
    pub diagonal_prob: f64,
    /// RNG seed (only used when `diagonal_prob > 0`).
    pub seed: u64,
}

/// Generates the grid graph; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(cfg: GridConfig) -> Graph {
    assert!((0.0..=1.0).contains(&cfg.diagonal_prob), "diagonal_prob must be a probability");
    let n = cfg.rows * cfg.cols;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let id = |r: usize, c: usize| (r * cfg.cols + c) as NodeId;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            // xtask: allow(unwrap) — all three below: id(r, c) < rows·cols
            // whenever r < rows and c < cols, which the bounds checks ensure.
            if c + 1 < cfg.cols {
                // xtask: allow(unwrap) — see above.
                b.add_edge(id(r, c), id(r, c + 1)).unwrap();
            }
            if r + 1 < cfg.rows {
                // xtask: allow(unwrap) — see above.
                b.add_edge(id(r, c), id(r + 1, c)).unwrap();
            }
            if r + 1 < cfg.rows && c + 1 < cfg.cols && rng.gen_bool(cfg.diagonal_prob) {
                // xtask: allow(unwrap) — see above.
                b.add_edge(id(r, c), id(r + 1, c + 1)).unwrap();
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameter_brute_force;

    #[test]
    fn pure_grid_edge_count() {
        let g = grid(GridConfig { rows: 4, cols: 5, diagonal_prob: 0.0, seed: 0 });
        assert_eq!(g.num_nodes(), 20);
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
    }

    #[test]
    fn grid_diameter_is_manhattan() {
        let g = grid(GridConfig { rows: 6, cols: 9, diagonal_prob: 0.0, seed: 0 });
        assert_eq!(diameter_brute_force(&g), 5 + 8);
    }

    #[test]
    fn diagonals_shorten_diagonal_routes() {
        // The "\" diagonals halve the (0,0) -> (9,9) distance but leave the
        // anti-diagonal corners (and hence the diameter) untouched.
        let plain = grid(GridConfig { rows: 10, cols: 10, diagonal_prob: 0.0, seed: 1 });
        let diag = grid(GridConfig { rows: 10, cols: 10, diagonal_prob: 1.0, seed: 1 });
        let corner = (10 * 10 - 1) as crate::csr::NodeId;
        assert_eq!(crate::bfs::hop_distance(&plain, 0, corner), Some(18));
        assert_eq!(crate::bfs::hop_distance(&diag, 0, corner), Some(9));
        assert_eq!(diameter_brute_force(&diag), 18);
    }

    #[test]
    fn single_row_is_a_path() {
        let g = grid(GridConfig { rows: 1, cols: 7, diagonal_prob: 0.0, seed: 0 });
        assert_eq!(g.num_edges(), 6);
        assert_eq!(diameter_brute_force(&g), 6);
    }

    #[test]
    fn single_cell() {
        let g = grid(GridConfig { rows: 1, cols: 1, diagonal_prob: 0.0, seed: 0 });
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_with_diagonals() {
        let a = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.3, seed: 5 });
        let b = grid(GridConfig { rows: 8, cols: 8, diagonal_prob: 0.3, seed: 5 });
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_output() {
        let g = grid(GridConfig { rows: 12, cols: 3, diagonal_prob: 0.5, seed: 2 });
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    fn average_degree_is_road_like() {
        let g = grid(GridConfig { rows: 50, cols: 50, diagonal_prob: 0.1, seed: 3 });
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg > 2.0 && avg < 5.0, "avg degree {avg} not road-like");
    }
}
