//! Erdős–Rényi G(n, m) generator: `m` distinct undirected edges drawn
//! uniformly among all vertex pairs. Used as an unstructured control model
//! and heavily in randomized tests.

use crate::csr::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// G(n, m) parameters.
#[derive(Debug, Clone, Copy)]
pub struct GnmConfig {
    /// Number of vertices.
    pub n: usize,
    /// Number of distinct undirected edges; capped at `n*(n-1)/2`.
    pub m: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a uniform G(n, m) graph by rejection sampling (fine for the
/// sparse regime every experiment here uses; for dense graphs it degrades
/// gracefully because `m` is capped at the maximum possible).
pub fn gnm(cfg: GnmConfig) -> Graph {
    let max_m = cfg.n.saturating_mul(cfg.n.saturating_sub(1)) / 2;
    let m = cfg.m.min(max_m);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut chosen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(cfg.n, m);
    if cfg.n >= 2 {
        // Dense fallback: if m is more than half of all pairs, enumerate and
        // shuffle instead of rejection sampling.
        if m * 2 > max_m {
            let mut all: Vec<(NodeId, NodeId)> = Vec::with_capacity(max_m);
            for u in 0..cfg.n as NodeId {
                for v in (u + 1)..cfg.n as NodeId {
                    all.push((u, v));
                }
            }
            // Partial Fisher-Yates for the first m elements.
            for i in 0..m {
                let j = rng.gen_range(i..all.len());
                all.swap(i, j);
                let (u, v) = all[i];
                // xtask: allow(unwrap) — pairs enumerated from 0..n.
                builder.add_edge(u, v).unwrap();
            }
        } else {
            while chosen.len() < m {
                let u = rng.gen_range(0..cfg.n as NodeId);
                let v = rng.gen_range(0..cfg.n as NodeId);
                if u == v {
                    continue;
                }
                let (lo, hi) = if u < v { (u, v) } else { (v, u) };
                let key = (lo as u64) << 32 | hi as u64;
                if chosen.insert(key) {
                    // xtask: allow(unwrap) — endpoints sampled from 0..n.
                    builder.add_edge(lo, hi).unwrap();
                }
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = gnm(GnmConfig { n: 100, m: 250, seed: 1 });
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn dense_request_is_capped() {
        let g = gnm(GnmConfig { n: 5, m: 1000, seed: 2 });
        assert_eq!(g.num_edges(), 10); // C(5,2)
    }

    #[test]
    fn deterministic() {
        let a = gnm(GnmConfig { n: 50, m: 80, seed: 3 });
        let b = gnm(GnmConfig { n: 50, m: 80, seed: 3 });
        assert_eq!(a, b);
    }

    #[test]
    fn zero_edges() {
        let g = gnm(GnmConfig { n: 10, m: 0, seed: 4 });
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnm(GnmConfig { n: 0, m: 5, seed: 5 }).num_nodes(), 0);
        assert_eq!(gnm(GnmConfig { n: 1, m: 5, seed: 5 }).num_edges(), 0);
        assert_eq!(gnm(GnmConfig { n: 2, m: 5, seed: 5 }).num_edges(), 1);
    }

    #[test]
    fn dense_path_produces_distinct_edges() {
        // Exercise the shuffle path: m > max/2.
        let g = gnm(GnmConfig { n: 10, m: 30, seed: 6 });
        assert_eq!(g.num_edges(), 30);
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    fn canonical_output() {
        let g = gnm(GnmConfig { n: 64, m: 200, seed: 7 });
        assert!(g.check_canonical().is_ok());
    }
}
