//! Recursive-MATrix (R-MAT) generator.
//!
//! Section V-C of the paper: "we consider R-MAT graphs with (a, b, c, d)
//! chosen as (0.57, 0.19, 0.19, 0.05) (i.e., matching the Graph500
//! benchmarks)" with density `|E| = 30 |V|`. Each edge is placed by
//! recursively descending into one of the four quadrants of the adjacency
//! matrix with probabilities `(a, b, c, d)`, with the customary ±10% noise
//! per level to avoid degenerate self-similarity.

use crate::csr::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT parameters.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Undirected edges to draw per vertex (`|E| = edge_factor * |V|` before
    /// dedup/self-loop removal).
    pub edge_factor: u32,
    /// Top-left quadrant probability; `a + b + c + d` must be 1, all positive.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Whether to jitter the quadrant probabilities per recursion level
    /// (Graph500-style noise). Disable for exactly reproducible degree
    /// structure in tests.
    pub noise: bool,
    /// RNG seed.
    pub seed: u64,
}

impl RmatConfig {
    /// Graph500 parameters at the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        RmatConfig { scale, edge_factor, a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: true, seed }
    }

    /// The paper's Fig. 4a setting: Graph500 quadrants, `|E| = 30 |V|`.
    pub fn paper(scale: u32, seed: u64) -> Self {
        Self::graph500(scale, 30, seed)
    }
}

/// Generates an undirected R-MAT graph (self-loops dropped, duplicate edges
/// merged, so the final edge count is slightly below `edge_factor << scale`).
pub fn rmat(cfg: RmatConfig) -> Graph {
    assert!(cfg.scale <= 31, "scale {} exceeds u32 vertex ids", cfg.scale);
    let total = cfg.a + cfg.b + cfg.c + cfg.d;
    assert!(
        (total - 1.0).abs() < 1e-9 && cfg.a > 0.0 && cfg.b > 0.0 && cfg.c > 0.0 && cfg.d > 0.0,
        "quadrant probabilities must be positive and sum to 1"
    );
    let n = 1usize << cfg.scale;
    let m = n * cfg.edge_factor as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (u, v) = rmat_edge(&mut rng, &cfg);
        // xtask: allow(unwrap) — rmat_edge yields ids < 2^scale = n.
        builder.add_edge(u, v).expect("generated ids are in range");
    }
    builder.build()
}

/// Draws one directed cell of the adjacency matrix.
fn rmat_edge(rng: &mut StdRng, cfg: &RmatConfig) -> (NodeId, NodeId) {
    let mut u: u64 = 0;
    let mut v: u64 = 0;
    for _ in 0..cfg.scale {
        // Optional multiplicative noise, renormalized (Graph500 reference).
        let (mut a, mut b, mut c, mut d) = (cfg.a, cfg.b, cfg.c, cfg.d);
        if cfg.noise {
            let jitter = |rng: &mut StdRng, p: f64| p * (0.9 + 0.2 * rng.gen::<f64>());
            a = jitter(rng, a);
            b = jitter(rng, b);
            c = jitter(rng, c);
            d = jitter(rng, d);
            let s = a + b + c + d;
            a /= s;
            b /= s;
            c /= s;
            // d is the remaining probability mass; only a, b, c gate branches.
        }
        let x = rng.gen::<f64>();
        u <<= 1;
        v <<= 1;
        if x < a {
            // top-left
        } else if x < a + b {
            v |= 1;
        } else if x < a + b + c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as NodeId, v as NodeId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(RmatConfig::graph500(6, 8, 1));
        assert_eq!(g.num_nodes(), 64);
    }

    #[test]
    fn edge_count_close_to_requested() {
        let g = rmat(RmatConfig::graph500(10, 8, 2));
        let requested = 1024 * 8;
        // Dedup and self-loop removal lose some edges, but most survive.
        assert!(g.num_edges() > requested / 2, "too few edges: {}", g.num_edges());
        assert!(g.num_edges() <= requested);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(RmatConfig::graph500(8, 4, 7));
        let b = rmat(RmatConfig::graph500(8, 4, 7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(RmatConfig::graph500(8, 4, 7));
        let b = rmat(RmatConfig::graph500(8, 4, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn skewed_degree_distribution() {
        // With Graph500 quadrants, the max degree dwarfs the average — the
        // signature of the power-law-like degree skew the paper relies on.
        let g = rmat(RmatConfig::graph500(11, 8, 3));
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            g.max_degree() as f64 > 5.0 * avg,
            "max degree {} not skewed vs avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn canonical_output() {
        let g = rmat(RmatConfig::graph500(7, 6, 9));
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_probabilities_rejected() {
        rmat(RmatConfig { a: 0.5, b: 0.5, c: 0.5, d: 0.5, ..RmatConfig::graph500(4, 2, 0) });
    }

    #[test]
    fn noise_free_mode_is_supported() {
        let mut cfg = RmatConfig::graph500(8, 4, 11);
        cfg.noise = false;
        let g = rmat(cfg);
        assert!(g.num_edges() > 0);
        assert!(g.check_canonical().is_ok());
    }
}
