//! Random hyperbolic graph (RHG) generator.
//!
//! Section V-C of the paper: "random hyperbolic graphs with power law
//! exponent 3", density chosen so that `|E| = 30 |V|`. In the standard model
//! (Krioukov et al.) `n` points are placed in a hyperbolic disk of radius
//! `R`; the radial coordinate has density `α sinh(αr) / (cosh(αR) − 1)` and
//! the angle is uniform. Two points are adjacent iff their hyperbolic
//! distance is at most `R`. The power-law exponent is `γ = 2α + 1`, so the
//! paper's `γ = 3` corresponds to `α = 1`.
//!
//! A naive generator checks all `n²` pairs. We use the classic *band*
//! optimization: points are bucketed into radial bands, each band is sorted
//! by angle, and for a query point only the angular window that can possibly
//! satisfy the distance threshold is scanned (the window follows from
//! `cosh d = cosh r₁ cosh r₂ − sinh r₁ sinh r₂ cos Δθ ≤ cosh R`). With
//! `γ = 3` most points sit near the rim where the windows are tiny, giving
//! near-linear behaviour in practice.

use crate::csr::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RHG parameters.
#[derive(Debug, Clone, Copy)]
pub struct HyperbolicConfig {
    /// Number of vertices.
    pub n: usize,
    /// Target average degree (`|E| ≈ n * avg_deg / 2`).
    pub avg_deg: f64,
    /// Radial dispersion; the degree power-law exponent is `2α + 1`.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl HyperbolicConfig {
    /// The paper's setting: power-law exponent 3 (α = 1) and `|E| = 30 |V|`
    /// (average degree 60).
    pub fn paper(n: usize, seed: u64) -> Self {
        HyperbolicConfig { n, avg_deg: 60.0, alpha: 1.0, seed }
    }
}

/// Generates a random hyperbolic graph.
pub fn hyperbolic(cfg: HyperbolicConfig) -> Graph {
    assert!(cfg.alpha > 0.5, "alpha must exceed 1/2 for a finite-degree RHG");
    assert!(cfg.avg_deg > 0.0);
    let n = cfg.n;
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    // Expected average degree ~ (2/π) ξ² n e^{-R/2} with ξ = α/(α − 1/2)
    // (Krioukov et al. 2010, Eq. 22), hence:
    let xi = cfg.alpha / (cfg.alpha - 0.5);
    let r_disk =
        2.0 * ((2.0 / std::f64::consts::PI) * xi * xi * n as f64 / cfg.avg_deg).max(1.0).ln();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Sample polar coordinates; radial CDF inversion.
    let cosh_ar_minus1 = ((cfg.alpha * r_disk).cosh() - 1.0).max(f64::MIN_POSITIVE);
    let mut radius: Vec<f64> = Vec::with_capacity(n);
    let mut angle: Vec<f64> = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.gen();
        let r = ((1.0 + u * cosh_ar_minus1).acosh()) / cfg.alpha;
        radius.push(r.min(r_disk));
        angle.push(rng.gen::<f64>() * std::f64::consts::TAU);
    }

    // Radial bands of equal width; each band sorted by angle.
    let num_bands = ((n as f64).ln().ceil() as usize).max(1);
    let band_width = r_disk / num_bands as f64;
    let band_of = |r: f64| ((r / band_width) as usize).min(num_bands - 1);
    let mut bands: Vec<Vec<u32>> = vec![Vec::new(); num_bands];
    for (i, &r) in radius.iter().enumerate() {
        bands[band_of(r)].push(i as u32);
    }
    for band in &mut bands {
        band.sort_by(|&a, &b| {
            angle[a as usize]
                .partial_cmp(&angle[b as usize])
                // xtask: allow(unwrap) — angles are finite draws from [0, 2π).
                .expect("angles are finite")
        });
    }

    let cosh_r: Vec<f64> = radius.iter().map(|r| r.cosh()).collect();
    let sinh_r: Vec<f64> = radius.iter().map(|r| r.sinh()).collect();
    let cosh_disk = r_disk.cosh();

    // Exact adjacency test.
    let connected = |i: usize, j: usize| -> bool {
        let mut dt = (angle[i] - angle[j]).abs();
        if dt > std::f64::consts::PI {
            dt = std::f64::consts::TAU - dt;
        }
        let cosh_d = cosh_r[i] * cosh_r[j] - sinh_r[i] * sinh_r[j] * dt.cos();
        cosh_d <= cosh_disk
    };

    // Max Δθ that can connect a point at radius r1 to any point at radius
    // ≥ band_min. cos Δθ ≥ (cosh r1 cosh r2 − cosh R)/(sinh r1 sinh r2) is
    // loosest at the band's inner radius.
    let max_dtheta = |r1: f64, band_min: f64| -> f64 {
        let r2 = band_min;
        let s = r1.sinh() * r2.sinh();
        if s <= 0.0 {
            return std::f64::consts::PI; // a point at the origin reaches everyone
        }
        let c = (r1.cosh() * r2.cosh() - cosh_disk) / s;
        if c <= -1.0 {
            std::f64::consts::PI
        } else if c >= 1.0 {
            0.0
        } else {
            c.acos()
        }
    };

    let mut builder = GraphBuilder::with_capacity(n, (n as f64 * cfg.avg_deg / 2.0) as usize);
    // For each point, scan candidate windows in every band at or outside its
    // own (pairs are visited once: inner-vs-outer by band order, and within a
    // band by index order).
    for i in 0..n {
        let bi = band_of(radius[i]);
        for (b, band) in bands.iter().enumerate().skip(bi) {
            if band.is_empty() {
                continue;
            }
            let band_min = b as f64 * band_width;
            let window = max_dtheta(radius[i], band_min);
            let lo_angle = angle[i] - window;
            let hi_angle = angle[i] + window;
            // The band is sorted by angle in [0, 2π); the window may wrap.
            // Dedup rule: same-band pairs are emitted by the lower index
            // only; cross-band pairs by the inner-band point only.
            scan_window(band, &angle, lo_angle, hi_angle, |j| {
                let j = j as usize;
                if (b > bi || j > i) && connected(i, j) {
                    // xtask: allow(unwrap) — band indices enumerate 0..n.
                    builder.add_edge(i as NodeId, j as NodeId).expect("ids in range");
                }
            });
        }
    }
    builder.build()
}

/// Calls `f` for every band member whose angle lies in `[lo, hi]`
/// (wrapping around 2π as needed).
fn scan_window<F: FnMut(u32)>(band: &[u32], angle: &[f64], lo: f64, hi: f64, mut f: F) {
    if hi - lo >= std::f64::consts::TAU {
        for &j in band {
            f(j);
        }
        return;
    }
    let tau = std::f64::consts::TAU;
    let wrap = |x: f64| ((x % tau) + tau) % tau;
    let (lo_w, hi_w) = (wrap(lo), wrap(hi));
    let start = band.partition_point(|&j| angle[j as usize] < lo_w);
    if lo_w <= hi_w {
        for &j in &band[start..] {
            if angle[j as usize] > hi_w {
                break;
            }
            f(j);
        }
    } else {
        // Wrapped window: [lo_w, 2π) ∪ [0, hi_w].
        for &j in &band[start..] {
            f(j);
        }
        for &j in band {
            if angle[j as usize] > hi_w {
                break;
            }
            f(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::largest_component;

    #[test]
    fn average_degree_near_target() {
        let g = hyperbolic(HyperbolicConfig { n: 4000, avg_deg: 12.0, alpha: 1.0, seed: 1 });
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        // The closed-form calibration is asymptotic; allow a wide band.
        assert!(avg > 4.0 && avg < 36.0, "average degree {avg} far from target 12");
    }

    #[test]
    fn deterministic() {
        let cfg = HyperbolicConfig { n: 500, avg_deg: 8.0, alpha: 1.0, seed: 2 };
        assert_eq!(hyperbolic(cfg), hyperbolic(cfg));
    }

    #[test]
    fn band_generation_matches_naive_pair_check() {
        // Regenerate coordinates with the same RNG stream and compare the
        // band-based edge set against the O(n²) oracle.
        let cfg = HyperbolicConfig { n: 300, avg_deg: 10.0, alpha: 1.0, seed: 3 };
        let g = hyperbolic(cfg);

        let xi = cfg.alpha / (cfg.alpha - 0.5);
        let r_disk =
            2.0 * ((2.0 / std::f64::consts::PI) * xi * xi * cfg.n as f64 / cfg.avg_deg).ln();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let cosh_ar_minus1 = (cfg.alpha * r_disk).cosh() - 1.0;
        let mut pts = Vec::new();
        for _ in 0..cfg.n {
            let u: f64 = rng.gen();
            let r = ((1.0 + u * cosh_ar_minus1).acosh()) / cfg.alpha;
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            pts.push((r.min(r_disk), theta));
        }
        let cosh_disk = r_disk.cosh();
        let mut expected = 0usize;
        for i in 0..cfg.n {
            for j in (i + 1)..cfg.n {
                let mut dt = (pts[i].1 - pts[j].1).abs();
                if dt > std::f64::consts::PI {
                    dt = std::f64::consts::TAU - dt;
                }
                let d = pts[i].0.cosh() * pts[j].0.cosh()
                    - pts[i].0.sinh() * pts[j].0.sinh() * dt.cos();
                if d <= cosh_disk {
                    expected += 1;
                    assert!(g.has_edge(i as NodeId, j as NodeId), "missing edge {i}-{j}");
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn power_law_tail_has_hubs() {
        let g = hyperbolic(HyperbolicConfig { n: 3000, avg_deg: 10.0, alpha: 1.0, seed: 4 });
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            g.max_degree() as f64 > 4.0 * avg,
            "no hub vertices: max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn giant_component_exists() {
        let g = hyperbolic(HyperbolicConfig { n: 2000, avg_deg: 12.0, alpha: 1.0, seed: 5 });
        let (lcc, _) = largest_component(&g);
        assert!(
            lcc.num_nodes() * 2 > g.num_nodes(),
            "giant component too small: {}",
            lcc.num_nodes()
        );
    }

    #[test]
    fn empty_graph() {
        let g = hyperbolic(HyperbolicConfig { n: 0, avg_deg: 10.0, alpha: 1.0, seed: 6 });
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1/2")]
    fn alpha_validation() {
        hyperbolic(HyperbolicConfig { n: 10, avg_deg: 5.0, alpha: 0.4, seed: 0 });
    }

    #[test]
    fn canonical_output() {
        let g = hyperbolic(HyperbolicConfig { n: 800, avg_deg: 6.0, alpha: 1.0, seed: 7 });
        assert!(g.check_canonical().is_ok());
    }
}
