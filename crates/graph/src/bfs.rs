//! Breadth-first search kernels.
//!
//! These are the unidirectional building blocks: full-distance BFS (used by
//! the diameter algorithms and by tests as a reference for the bidirectional
//! sampler), eccentricity computation, and σ-augmented BFS (shortest-path
//! counting, the forward pass of Brandes' algorithm).

use crate::csr::{Graph, NodeId};
use crate::scratch::UNREACHED;

/// Result of a full single-source BFS.
pub struct BfsResult {
    /// `dist[v]` = hop distance from the source, or [`UNREACHED`].
    pub dist: Vec<u32>,
    /// Vertices in visitation (non-decreasing distance) order.
    pub order: Vec<NodeId>,
    /// Eccentricity of the source within its component (max finite distance).
    pub ecc: u32,
}

/// Runs a plain BFS from `source`, returning distances, visitation order and
/// the source's eccentricity.
pub fn bfs(g: &Graph, source: NodeId) -> BfsResult {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![UNREACHED; n];
    let mut order = Vec::new();
    dist[source as usize] = 0;
    order.push(source);
    let mut head = 0;
    let mut ecc = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        if let Some(&w) = order.get(head) {
            g.prefetch_neighbors(w);
        }
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                ecc = du + 1;
                order.push(v);
            }
        }
    }
    BfsResult { dist, order, ecc }
}

/// σ-augmented BFS from `source`: distances plus the number of shortest
/// source→v paths for every v (the forward pass of Brandes' algorithm).
pub struct SigmaBfsResult {
    /// Hop distances (or [`UNREACHED`]).
    pub dist: Vec<u32>,
    /// σ(v): number of distinct shortest source→v paths (0 if unreached;
    /// σ(source) = 1).
    pub sigma: Vec<u64>,
    /// Visitation order (needed for the reverse accumulation of Brandes).
    pub order: Vec<NodeId>,
}

/// Runs the σ-augmented BFS.
pub fn sigma_bfs(g: &Graph, source: NodeId) -> SigmaBfsResult {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut dist = vec![UNREACHED; n];
    let mut sigma = vec![0u64; n];
    let mut order = Vec::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1;
    order.push(source);
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        if let Some(&w) = order.get(head) {
            g.prefetch_neighbors(w);
        }
        let du = dist[u as usize];
        let su = sigma[u as usize];
        for &v in g.neighbors(u) {
            let dv = dist[v as usize];
            if dv == UNREACHED {
                dist[v as usize] = du + 1;
                sigma[v as usize] = su;
                order.push(v);
            } else if dv == du + 1 {
                sigma[v as usize] = sigma[v as usize].saturating_add(su);
            }
        }
    }
    SigmaBfsResult { dist, sigma, order }
}

/// Returns the vertex with maximum distance from `source` (ties broken by
/// smallest id) together with that distance; `(source, 0)` for an isolated
/// source. This is the primitive behind the two-sweep diameter bound.
pub fn farthest_vertex(g: &Graph, source: NodeId) -> (NodeId, u32) {
    let res = bfs(g, source);
    let mut best = (source, 0u32);
    for v in res.order {
        let d = res.dist[v as usize];
        if d != UNREACHED && d > best.1 {
            best = (v, d);
        }
    }
    best
}

/// Eccentricity of `source` within its connected component.
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    bfs(g, source).ecc
}

/// Hop distance between `s` and `t` (or `None` if disconnected). Convenience
/// wrapper used by tests to validate the bidirectional sampler.
pub fn hop_distance(g: &Graph, s: NodeId, t: NodeId) -> Option<u32> {
    let d = bfs(g, s).dist[t as usize];
    (d != UNREACHED).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as NodeId - 1).map(|v| (v, v + 1)).collect();
        graph_from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_path_graph() {
        let g = path_graph(5);
        let r = bfs(&g, 0);
        assert_eq!(r.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.ecc, 4);
        assert_eq!(r.order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_from_middle() {
        let g = path_graph(5);
        let r = bfs(&g, 2);
        assert_eq!(r.dist, vec![2, 1, 0, 1, 2]);
        assert_eq!(r.ecc, 2);
    }

    #[test]
    fn bfs_disconnected() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let r = bfs(&g, 0);
        assert_eq!(r.dist[0], 0);
        assert_eq!(r.dist[1], 1);
        assert_eq!(r.dist[2], UNREACHED);
        assert_eq!(r.dist[3], UNREACHED);
        assert_eq!(r.ecc, 1);
    }

    #[test]
    fn sigma_counts_on_cycle() {
        // 4-cycle: two shortest paths between opposite corners.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = sigma_bfs(&g, 0);
        assert_eq!(r.sigma[0], 1);
        assert_eq!(r.sigma[1], 1);
        assert_eq!(r.sigma[3], 1);
        assert_eq!(r.sigma[2], 2);
        assert_eq!(r.dist[2], 2);
    }

    #[test]
    fn sigma_counts_on_complete_bipartite_k23() {
        // Left = {0,1}, Right = {2,3,4}; between the two left vertices there
        // are 3 shortest paths (one through each right vertex).
        let g = graph_from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]);
        let r = sigma_bfs(&g, 0);
        assert_eq!(r.dist[1], 2);
        assert_eq!(r.sigma[1], 3);
        for right in 2..5 {
            assert_eq!(r.sigma[right], 1);
        }
    }

    #[test]
    fn sigma_on_grid_matches_binomials() {
        // 3x3 grid; number of monotone lattice paths corner-to-corner is
        // C(4,2) = 6.
        let id = |r: u32, c: u32| (r * 3 + c) as NodeId;
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < 3 {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        let g = graph_from_edges(9, &edges);
        let r = sigma_bfs(&g, id(0, 0));
        assert_eq!(r.dist[id(2, 2) as usize], 4);
        assert_eq!(r.sigma[id(2, 2) as usize], 6);
    }

    #[test]
    fn farthest_vertex_on_path() {
        let g = path_graph(7);
        assert_eq!(farthest_vertex(&g, 0), (6, 6));
        assert_eq!(farthest_vertex(&g, 3), (0, 3));
    }

    #[test]
    fn farthest_vertex_isolated() {
        let g = graph_from_edges(3, &[(1, 2)]);
        assert_eq!(farthest_vertex(&g, 0), (0, 0));
    }

    #[test]
    fn hop_distance_matches_bfs() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 4)]);
        assert_eq!(hop_distance(&g, 0, 4), Some(2));
        assert_eq!(hop_distance(&g, 1, 4), Some(3));
    }

    #[test]
    fn hop_distance_disconnected_is_none() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(hop_distance(&g, 0, 3), None);
    }

    #[test]
    fn order_is_nondecreasing_in_distance() {
        let g = graph_from_edges(
            8,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7)],
        );
        let r = bfs(&g, 0);
        for w in r.order.windows(2) {
            assert!(r.dist[w[0] as usize] <= r.dist[w[1] as usize]);
        }
    }
}
