//! Diameter computation.
//!
//! Phase 1 of KADABRA (Section III-A of the paper) computes the graph
//! diameter — the main ingredient of the static sample bound ω. The paper
//! uses the sequential BFS-based method of Borassi et al. [6]; we implement
//! its two core techniques for undirected graphs:
//!
//! * the **two-sweep** heuristic, which gives a lower bound that is exact on
//!   many real-world graphs, and
//! * **iFUB** (iterative Fringe Upper Bound), which turns the lower bound
//!   into a certified exact diameter, usually after inspecting only a few
//!   BFS trees.
//!
//! Both are deliberately sequential: in the paper this phase is the Amdahl
//! term that limits overall speedup at high node counts (Fig. 2b), and our
//! reproduction keeps that characteristic.

use crate::bfs::{bfs, farthest_vertex};
use crate::csr::{Graph, NodeId};
use crate::scratch::UNREACHED;

/// How a diameter value was certified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiameterKind {
    /// iFUB terminated: the value is the exact diameter.
    Exact,
    /// The BFS budget ran out: the value is only a lower bound; callers that
    /// need an upper bound should use [`DiameterResult::upper`].
    BoundsOnly,
}

/// Result of a diameter computation.
#[derive(Debug, Clone, Copy)]
pub struct DiameterResult {
    /// Best known lower bound (the exact diameter when `kind == Exact`).
    pub lower: u32,
    /// Matching upper bound (equals `lower` when exact).
    pub upper: u32,
    /// Whether the value is certified exact.
    pub kind: DiameterKind,
    /// Number of BFS runs spent.
    pub bfs_count: u32,
}

impl DiameterResult {
    /// The certified diameter; panics when only bounds are known.
    pub fn exact(&self) -> u32 {
        assert_eq!(self.kind, DiameterKind::Exact, "diameter not certified exact");
        self.lower
    }

    /// Vertex diameter (number of vertices on a longest shortest path) upper
    /// bound, the quantity KADABRA's ω needs.
    pub fn vertex_diameter_upper(&self) -> u32 {
        self.upper.saturating_add(1)
    }
}

/// Two-sweep heuristic: BFS from `start` to find the farthest vertex `a`,
/// then BFS from `a`; the eccentricity of `a` lower-bounds the diameter.
/// Returns `(lower_bound, a, b)` where `b` realizes the bound.
pub fn two_sweep(g: &Graph, start: NodeId) -> (u32, NodeId, NodeId) {
    let (a, _) = farthest_vertex(g, start);
    let (b, d) = farthest_vertex(g, a);
    (d, a, b)
}

/// Exact diameter of the connected component containing `start`, via
/// two-sweep + iFUB with an optional BFS budget.
///
/// iFUB: root a BFS at a "central" vertex `r` (the midpoint of the two-sweep
/// path). Process vertices by decreasing BFS level `l`; the eccentricity of
/// any vertex at level `l` is at most `2l`, so once the current lower bound
/// reaches `2l` the search can stop with a certified exact answer.
///
/// `max_bfs = 0` means unlimited. When the budget is exhausted the result
/// carries `BoundsOnly` with `upper = 2 * ecc(r)`.
pub fn diameter(g: &Graph, start: NodeId, max_bfs: u32) -> DiameterResult {
    let n = g.num_nodes();
    assert!((start as usize) < n);
    if g.degree(start) == 0 {
        return DiameterResult { lower: 0, upper: 0, kind: DiameterKind::Exact, bfs_count: 0 };
    }

    let mut bfs_count = 0u32;
    let budget = |used: &mut u32| -> bool {
        *used += 1;
        max_bfs == 0 || *used <= max_bfs
    };

    // Two-sweep lower bound.
    if !budget(&mut bfs_count) {
        return DiameterResult {
            lower: 0,
            upper: u32::MAX,
            kind: DiameterKind::BoundsOnly,
            bfs_count,
        };
    }
    let (a, _) = farthest_vertex(g, start);
    if !budget(&mut bfs_count) {
        return DiameterResult {
            lower: 0,
            upper: u32::MAX,
            kind: DiameterKind::BoundsOnly,
            bfs_count,
        };
    }
    let res_a = bfs(g, a);
    let mut lower = res_a.ecc;
    // Midpoint of the a->b path: a vertex at distance ecc/2 from a on the
    // path towards b. We approximate by walking back from b.
    let b = *res_a
        .order
        .iter()
        .max_by_key(|&&v| res_a.dist[v as usize])
        // xtask: allow(unwrap) — BFS order always contains the source.
        .unwrap();
    let mid;
    {
        let target = res_a.ecc / 2;
        // Walk from b towards a until the distance from a equals target.
        let mut cur = b;
        while res_a.dist[cur as usize] > target {
            let d = res_a.dist[cur as usize];
            let mut stepped = false;
            for &u in g.neighbors(cur) {
                if res_a.dist[u as usize] + 1 == d {
                    cur = u;
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                break;
            }
        }
        mid = cur;
    }

    // BFS from the midpoint; levels drive iFUB.
    if !budget(&mut bfs_count) {
        return DiameterResult {
            lower,
            upper: u32::MAX,
            kind: DiameterKind::BoundsOnly,
            bfs_count,
        };
    }
    let res_mid = bfs(g, mid);
    lower = lower.max(res_mid.ecc);
    let mut upper = 2 * res_mid.ecc;
    if lower == upper {
        return DiameterResult { lower, upper, kind: DiameterKind::Exact, bfs_count };
    }

    // Vertices by decreasing level.
    let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); res_mid.ecc as usize + 1];
    for v in 0..n as NodeId {
        let d = res_mid.dist[v as usize];
        if d != UNREACHED {
            by_level[d as usize].push(v);
        }
    }
    for level in (1..=res_mid.ecc).rev() {
        if lower >= 2 * level {
            // Certified: every unprocessed vertex has eccentricity ≤ 2*level ≤ lower.
            return DiameterResult { lower, upper: lower, kind: DiameterKind::Exact, bfs_count };
        }
        for &v in &by_level[level as usize] {
            if !budget(&mut bfs_count) {
                let kind =
                    if lower == upper { DiameterKind::Exact } else { DiameterKind::BoundsOnly };
                return DiameterResult { lower, upper, kind, bfs_count };
            }
            let e = bfs(g, v).ecc;
            lower = lower.max(e);
            upper = upper.min(lower.max(2 * (level.saturating_sub(1))));
            if lower >= 2 * level {
                break;
            }
        }
    }
    DiameterResult { lower, upper: lower, kind: DiameterKind::Exact, bfs_count }
}

/// Exact diameter by all-pairs BFS; O(n·m), test oracle for small graphs.
pub fn diameter_brute_force(g: &Graph) -> u32 {
    (0..g.num_nodes() as NodeId).map(|v| bfs(g, v).ecc).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::largest_component;
    use crate::csr::graph_from_edges;
    use crate::generators::{gnm, grid, rmat, GnmConfig, GridConfig, RmatConfig};

    #[test]
    fn path_graph_diameter() {
        let edges: Vec<_> = (0..9).map(|v| (v, v + 1)).collect();
        let g = graph_from_edges(10, &edges);
        let d = diameter(&g, 4, 0);
        assert_eq!(d.exact(), 9);
        assert_eq!(d.vertex_diameter_upper(), 10);
    }

    #[test]
    fn cycle_diameter() {
        let n = 12u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = graph_from_edges(n as usize, &edges);
        assert_eq!(diameter(&g, 0, 0).exact(), 6);
    }

    #[test]
    fn star_diameter() {
        let edges: Vec<_> = (1..20).map(|v| (0, v)).collect();
        let g = graph_from_edges(20, &edges);
        assert_eq!(diameter(&g, 5, 0).exact(), 2);
    }

    #[test]
    fn complete_graph_diameter() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(6, &edges);
        assert_eq!(diameter(&g, 0, 0).exact(), 1);
    }

    #[test]
    fn isolated_start() {
        let g = graph_from_edges(3, &[(1, 2)]);
        let d = diameter(&g, 0, 0);
        assert_eq!(d.exact(), 0);
    }

    #[test]
    fn two_sweep_lower_bounds_brute_force() {
        let g = grid(GridConfig { rows: 9, cols: 7, diagonal_prob: 0.0, seed: 1 });
        let (lb, _, _) = two_sweep(&g, 0);
        assert!(lb <= diameter_brute_force(&g));
        // On grids two-sweep is exact.
        assert_eq!(lb, 9 - 1 + 7 - 1);
    }

    #[test]
    fn ifub_matches_brute_force_on_random_graphs() {
        for seed in 0..8 {
            let g = gnm(GnmConfig { n: 60, m: 120, seed });
            let (lcc, _) = largest_component(&g);
            if lcc.num_nodes() < 2 {
                continue;
            }
            let exact = diameter_brute_force(&lcc);
            let d = diameter(&lcc, 0, 0);
            assert_eq!(d.exact(), exact, "seed {seed}");
        }
    }

    #[test]
    fn ifub_matches_brute_force_on_rmat() {
        let g = rmat(RmatConfig::graph500(8, 4, 42));
        let (lcc, _) = largest_component(&g);
        let exact = diameter_brute_force(&lcc);
        assert_eq!(diameter(&lcc, 0, 0).exact(), exact);
    }

    #[test]
    fn budget_exhaustion_reports_bounds() {
        let g = grid(GridConfig { rows: 20, cols: 20, diagonal_prob: 0.0, seed: 1 });
        let d = diameter(&g, 0, 3);
        // With only 3 BFS runs iFUB cannot certify a 20x20 grid...
        if d.kind == DiameterKind::BoundsOnly {
            assert!(d.lower <= 38);
            assert!(d.upper >= 38);
        } else {
            // ...unless the two-sweep bound happens to certify; then it must
            // be the true diameter.
            assert_eq!(d.exact(), 38);
        }
    }

    #[test]
    fn bfs_count_is_reported() {
        let edges: Vec<_> = (0..9).map(|v| (v, v + 1)).collect();
        let g = graph_from_edges(10, &edges);
        let d = diameter(&g, 0, 0);
        assert!(d.bfs_count >= 3);
    }

    #[test]
    fn diameter_of_two_triangles_bridged() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(diameter(&g, 0, 0).exact(), 3);
    }
}
