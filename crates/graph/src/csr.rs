//! Compressed sparse row (CSR) graph storage.
//!
//! The paper stores graphs in NetworKit's static structure with 32-bit vertex
//! ids; we do the same. Graphs are undirected and unweighted (Section III of
//! the paper): every undirected edge `{u, v}` is stored twice, once in each
//! adjacency list. Adjacency lists are sorted, which makes neighbourhood
//! queries cache-friendly and lets tests assert canonical form.

use crate::{GraphError, Result};

/// Vertex identifier. 32 bits suffice for every graph in SNAP/KONECT and keep
/// the CSR (and the per-thread sampling state of KADABRA) compact.
pub type NodeId = u32;

/// A static, undirected, unweighted graph in CSR form.
///
/// Construction goes through [`GraphBuilder`] (for arbitrary edge lists) or
/// [`Graph::from_sorted_csr`] (for generators that already produce canonical
/// data). After construction the graph is immutable, which is exactly the
/// property the paper exploits to share one copy among all sampling threads
/// of a process.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`'s neighbours.
    offsets: Vec<u64>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph directly from canonical CSR arrays.
    ///
    /// Requirements (checked): `offsets` has length `n + 1`, starts at 0, is
    /// non-decreasing, ends at `targets.len()`; every target is `< n`; each
    /// adjacency list is sorted and free of duplicates and self-loops; the
    /// adjacency relation is symmetric.
    ///
    /// # Panics
    /// Panics if any invariant is violated; generators are expected to produce
    /// canonical data, so a violation is a programming error.
    pub fn from_sorted_csr(offsets: Vec<u64>, targets: Vec<NodeId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            // xtask: allow(unwrap) — non-empty asserted two lines up.
            *offsets.last().unwrap(),
            targets.len() as u64,
            "offsets must end at targets.len()"
        );
        let n = offsets.len() - 1;
        assert!(n <= NodeId::MAX as usize, "too many vertices for u32 ids");
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be non-decreasing");
        }
        let g = Graph { offsets, targets };
        debug_assert!(g.check_canonical().is_ok(), "non-canonical CSR input");
        g
    }

    /// Verifies full canonical form; used by `debug_assert` and tests.
    pub fn check_canonical(&self) -> std::result::Result<(), String> {
        let n = self.num_nodes();
        for v in 0..n {
            let adj = self.neighbors(v as NodeId);
            for (i, &t) in adj.iter().enumerate() {
                if t as usize >= n {
                    return Err(format!("target {t} of vertex {v} out of range"));
                }
                if t == v as NodeId {
                    return Err(format!("self-loop at vertex {v}"));
                }
                if i > 0 && adj[i - 1] >= t {
                    return Err(format!("adjacency of vertex {v} not strictly sorted"));
                }
                if self.neighbors(t).binary_search(&(v as NodeId)).is_err() {
                    return Err(format!("edge {v}->{t} has no reverse edge"));
                }
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Best-effort first-touch page sweep: reads one element per 4 KiB page
    /// of the CSR arrays from the **calling** thread, so a pinned sampling
    /// worker pulls the graph's page table entries (and, under a first-touch
    /// NUMA policy, any not-yet-faulted pages) onto its own node before the
    /// hot loop starts (DESIGN.md §16). Returns a checksum of the touched
    /// elements so the sweep cannot be optimized away; the value itself is
    /// meaningless.
    pub fn touch_pages(&self) -> u64 {
        const PAGE: usize = 4096;
        let mut acc = 0u64;
        let off_stride = (PAGE / std::mem::size_of::<u64>()).max(1);
        for i in (0..self.offsets.len()).step_by(off_stride) {
            acc = acc.wrapping_add(self.offsets[i]);
        }
        let tgt_stride = (PAGE / std::mem::size_of::<NodeId>()).max(1);
        for i in (0..self.targets.len()).step_by(tgt_stride) {
            acc = acc.wrapping_add(u64::from(self.targets[i]));
        }
        acc
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted slice of `v`'s neighbours.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Whether the undirected edge `{u, v}` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Iterator over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes() as NodeId
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Bytes of heap memory held by the CSR arrays. The paper's Section I
    /// argues current compute nodes fit all interesting graphs in memory;
    /// the experiment harness reports this figure per instance.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// Raw CSR views, used by the binary IO codec.
    pub(crate) fn raw_parts(&self) -> (&[u64], &[NodeId]) {
        (&self.offsets, &self.targets)
    }

    /// Hints the CPU to pull the start of `v`'s adjacency row into cache.
    /// Used by the sampling hot path one frontier vertex ahead of the scan.
    #[inline]
    pub fn prefetch_neighbors(&self, v: NodeId) {
        let lo = self.offsets[v as usize] as usize;
        crate::prefetch::prefetch_read(&self.targets, lo);
    }

    /// Relabels vertices in descending degree order (ties broken by original
    /// id), returning the relabeled graph and the [`Permutation`] that maps
    /// between labelings.
    ///
    /// High-degree vertices are the ones a BFS touches most often; packing
    /// them into the low end of the id space concentrates the hot rows of the
    /// per-vertex state and the offset array into a few cache/TLB pages
    /// (DESIGN.md §11). Driver outputs must be mapped back with
    /// [`Permutation::unrelabel`] so callers always see original ids.
    pub fn relabel_by_degree(&self) -> (Graph, Permutation) {
        self.relabel_by_degree_in(&mut CsrArena::new())
    }

    /// Like [`Graph::relabel_by_degree`], recycling an arena's buffers for
    /// the relabeled CSR arrays.
    pub fn relabel_by_degree_in(&self, arena: &mut CsrArena) -> (Graph, Permutation) {
        let n = self.num_nodes();
        let mut to_old: Vec<NodeId> = (0..n as NodeId).collect();
        // Highest degree first; the original id tiebreak makes the
        // permutation deterministic for any input graph.
        to_old.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        let mut to_new = vec![0 as NodeId; n];
        for (new, &old) in to_old.iter().enumerate() {
            to_new[old as usize] = new as NodeId;
        }

        let mut offsets = arena.take_offsets();
        offsets.resize(n + 1, 0);
        for new in 0..n {
            offsets[new + 1] = offsets[new] + self.degree(to_old[new]) as u64;
        }
        let mut targets = arena.take_targets();
        targets.resize(self.targets.len(), 0);
        for new in 0..n {
            let lo = offsets[new] as usize;
            let hi = offsets[new + 1] as usize;
            let row = &mut targets[lo..hi];
            for (slot, &w) in row.iter_mut().zip(self.neighbors(to_old[new])) {
                *slot = to_new[w as usize];
            }
            row.sort_unstable();
        }
        let g = Graph { offsets, targets };
        debug_assert!(g.check_canonical().is_ok());
        (g, Permutation { to_new, to_old })
    }
}

/// A bijection between *original* and *relabeled* vertex ids, produced by
/// [`Graph::relabel_by_degree`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Permutation {
    /// `to_new[old]` = relabeled id of original vertex `old`.
    to_new: Vec<NodeId>,
    /// `to_old[new]` = original id of relabeled vertex `new`.
    to_old: Vec<NodeId>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<NodeId> = (0..n as NodeId).collect();
        Permutation { to_new: ids.clone(), to_old: ids }
    }

    /// Number of vertices the permutation acts on.
    pub fn len(&self) -> usize {
        self.to_new.len()
    }

    /// True for the permutation on the empty vertex set.
    pub fn is_empty(&self) -> bool {
        self.to_new.is_empty()
    }

    /// Relabeled id of original vertex `old`.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        self.to_new[old as usize]
    }

    /// Original id of relabeled vertex `new`.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.to_old[new as usize]
    }

    /// Whether this permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.to_new.iter().enumerate().all(|(i, &v)| i as NodeId == v)
    }

    /// Maps a per-vertex array indexed by *relabeled* ids back to *original*
    /// indexing: `result[old] = values[to_new[old]]`. This is how driver
    /// outputs (betweenness scores) computed on a relabeled graph are
    /// reported in the caller's original ids.
    pub fn unrelabel<T: Copy>(&self, values: &[T]) -> Vec<T> {
        let mut out = Vec::new();
        self.unrelabel_into(values, &mut out);
        out
    }

    /// Allocation-reusing variant of [`Permutation::unrelabel`].
    pub fn unrelabel_into<T: Copy>(&self, values: &[T], out: &mut Vec<T>) {
        assert_eq!(values.len(), self.len(), "value array must cover every vertex");
        out.clear();
        out.extend(self.to_new.iter().map(|&new| values[new as usize]));
    }

    /// Inverse of [`Permutation::unrelabel`]: maps a per-vertex array indexed
    /// by *original* ids to *relabeled* indexing (`result[new] =
    /// values[to_old[new]]`), so `relabel ∘ unrelabel` is the identity.
    pub fn relabel<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value array must cover every vertex");
        self.to_old.iter().map(|&old| values[old as usize]).collect()
    }
}

/// Recyclable CSR construction buffers.
///
/// Repeated graph builds through the same arena reuse the previous build's
/// `offsets`/`targets` capacity: at steady state, [`GraphBuilder::build_in`]
/// and [`Graph::relabel_by_degree_in`] perform **no** heap allocation for the
/// CSR arrays (the builder's caller-owned edge list is the only buffer left).
/// Hand a finished graph's storage back with [`CsrArena::recycle`].
#[derive(Default)]
pub struct CsrArena {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
}

impl CsrArena {
    /// An empty arena; its first build populates the buffers.
    pub fn new() -> Self {
        CsrArena::default()
    }

    /// Returns a graph's CSR storage to the arena for the next build.
    pub fn recycle(&mut self, g: Graph) {
        self.offsets = g.offsets;
        self.targets = g.targets;
    }

    /// Capacity currently held, in bytes (for tests and diagnostics).
    pub fn capacity_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u64>()
            + self.targets.capacity() * std::mem::size_of::<NodeId>()
    }

    fn take_offsets(&mut self) -> Vec<u64> {
        let mut v = std::mem::take(&mut self.offsets);
        v.clear();
        v
    }

    fn take_targets(&mut self) -> Vec<NodeId> {
        let mut v = std::mem::take(&mut self.targets);
        v.clear();
        v
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Accumulates an arbitrary (possibly messy) undirected edge list and
/// produces a canonical [`Graph`].
///
/// The builder tolerates duplicate edges, both orientations of the same edge,
/// and self-loops; all are normalized away, matching how the paper reads the
/// KONECT instances ("all graphs were read as undirected and unweighted").
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m) }
    }

    /// Number of vertices this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently dropped;
    /// duplicates are removed at build time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u as usize >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u as u64, n: self.n as u64 });
        }
        if v as usize >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v as u64, n: self.n as u64 });
        }
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
        Ok(())
    }

    /// Adds every edge from an iterator. Stops at the first invalid edge.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, it: I) -> Result<()> {
        for (u, v) in it {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// Finalizes the canonical CSR graph.
    pub fn build(self) -> Graph {
        self.build_in(&mut CsrArena::new())
    }

    /// Finalizes the canonical CSR graph into `arena`-recycled buffers.
    ///
    /// The counting sort runs in place — the offset array doubles as the
    /// scatter cursor and is repaired afterwards — so with a warm arena the
    /// whole build allocates nothing beyond the edge list the builder
    /// already holds.
    pub fn build_in(mut self, arena: &mut CsrArena) -> Graph {
        if self.n > NodeId::MAX as usize {
            // `new` takes usize so this is reachable only on 64-bit hosts with
            // absurd n; keep it a panic rather than plumbing Result through
            // every generator.
            panic!("too many vertices for u32 ids: {}", self.n);
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        // Counting sort into CSR; every undirected edge contributes two arcs.
        let n = self.n;
        let mut offsets = arena.take_offsets();
        offsets.resize(n + 1, 0);
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut targets = arena.take_targets();
        targets.resize(offsets[n] as usize, 0);
        // Scatter, using offsets[u] as row u's write cursor; each write
        // advances the cursor, so afterwards offsets[u] holds row u's end
        // (= row u+1's start).
        for &(u, v) in &self.edges {
            targets[offsets[u as usize] as usize] = v;
            offsets[u as usize] += 1;
            targets[offsets[v as usize] as usize] = u;
            offsets[v as usize] += 1;
        }
        // Repair: shift the advanced cursors one slot right so offsets[v] is
        // row v's start again (offsets[n] already holds the total).
        for v in (1..=n).rev() {
            offsets[v] = offsets[v - 1];
        }
        if n > 0 {
            offsets[0] = 0;
        }
        // Edges were processed in lexicographic order of (min, max); the
        // resulting per-vertex lists are not necessarily sorted (a vertex's
        // arcs come from both orientations), so sort each list.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
        }
        Graph { offsets, targets }
    }
}

/// Builds a graph from an explicit edge list over `n` vertices, normalizing
/// duplicates, orientations and self-loops. Convenience for tests and small
/// examples.
pub fn graph_from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    b.extend_edges(edges.iter().copied())
        // xtask: allow(unwrap) — documented contract of this convenience
        // helper; panicking on bad endpoints is the advertised behavior.
        .expect("edge endpoints must be < n");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        for v in 0..5 {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn triangle() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    fn duplicates_and_self_loops_are_normalized() {
        let g = graph_from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 2), (2, 3)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        assert!(!g.has_edge(2, 2));
        assert!(g.check_canonical().is_ok());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = graph_from_edges(6, &[(3, 5), (3, 1), (3, 4), (3, 0), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn out_of_range_edge_is_rejected() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(b.add_edge(0, 3), Err(GraphError::VertexOutOfRange { vertex: 3, n: 3 })));
        assert!(matches!(b.add_edge(7, 0), Err(GraphError::VertexOutOfRange { vertex: 7, n: 3 })));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_sum_is_twice_edge_count() {
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        assert_eq!(sum, 2 * g.num_edges());
    }

    #[test]
    fn memory_bytes_counts_both_arrays() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(g.memory_bytes(), 4 * 8 + 4 * 4);
    }

    #[test]
    fn from_sorted_csr_roundtrip() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (off, tgt) = g.raw_parts();
        let g2 = Graph::from_sorted_csr(off.to_vec(), tgt.to_vec());
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn from_sorted_csr_rejects_bad_offsets() {
        Graph::from_sorted_csr(vec![1, 2], vec![0, 0]);
    }

    #[test]
    fn relabel_by_degree_orders_vertices_by_degree() {
        // Degrees: 0→1, 1→3, 2→2, 3→2 ⇒ new order 1, 2, 3, 0 (ties by id).
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 3)]);
        let (rg, perm) = g.relabel_by_degree();
        assert!(rg.check_canonical().is_ok());
        assert_eq!(rg.num_nodes(), g.num_nodes());
        assert_eq!(rg.num_edges(), g.num_edges());
        assert_eq!(perm.to_old(0), 1);
        assert_eq!(perm.to_old(1), 2);
        assert_eq!(perm.to_old(2), 3);
        assert_eq!(perm.to_old(3), 0);
        // Degrees are non-increasing in the new labeling.
        for v in 1..rg.num_nodes() as NodeId {
            assert!(rg.degree(v - 1) >= rg.degree(v));
        }
        // The relabeled graph is isomorphic via the permutation.
        for (u, v) in g.edges() {
            assert!(rg.has_edge(perm.to_new(u), perm.to_new(v)));
        }
    }

    #[test]
    fn permutation_roundtrips() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3), (1, 4)]);
        let (_, perm) = g.relabel_by_degree();
        // relabel ∘ unrelabel = id and unrelabel ∘ relabel = id.
        let vals: Vec<u32> = vec![10, 20, 30, 40, 50];
        assert_eq!(perm.relabel(&perm.unrelabel(&vals)), vals);
        assert_eq!(perm.unrelabel(&perm.relabel(&vals)), vals);
        for v in 0..5 {
            assert_eq!(perm.to_new(perm.to_old(v)), v);
            assert_eq!(perm.to_old(perm.to_new(v)), v);
        }
        assert!(Permutation::identity(5).is_identity());
    }

    #[test]
    fn arena_reuses_buffers_across_builds() {
        let edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let mut arena = CsrArena::new();
        let mut b = GraphBuilder::with_capacity(4, edges.len());
        b.extend_edges(edges.iter().copied()).expect("in range");
        let g1 = b.build_in(&mut arena);
        let baseline = graph_from_edges(4, &edges);
        assert_eq!(g1, baseline);
        // Recycle and rebuild: the arena now has capacity, and the result is
        // identical.
        arena.recycle(g1);
        assert!(arena.capacity_bytes() > 0);
        let mut b = GraphBuilder::with_capacity(4, edges.len());
        b.extend_edges(edges.iter().copied()).expect("in range");
        let g2 = b.build_in(&mut arena);
        assert_eq!(g2, baseline);
    }

    #[test]
    fn arena_relabel_matches_plain_relabel() {
        let edges = [(0, 3), (3, 2), (2, 1), (1, 0), (0, 2), (4, 0)];
        let g = graph_from_edges(5, &edges);
        let (r1, p1) = g.relabel_by_degree();
        let mut arena = CsrArena::new();
        let (r2, p2) = g.relabel_by_degree_in(&mut arena);
        assert_eq!(r1, r2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn relabel_empty_graph() {
        let g = GraphBuilder::new(0).build();
        let (rg, perm) = g.relabel_by_degree();
        assert_eq!(rg.num_nodes(), 0);
        assert!(perm.is_empty());
        assert!(perm.is_identity());
    }

    #[test]
    fn star_graph_max_degree() {
        let edges: Vec<(NodeId, NodeId)> = (1..100).map(|v| (0, v)).collect();
        let g = graph_from_edges(100, &edges);
        assert_eq!(g.max_degree(), 99);
        assert_eq!(g.degree(0), 99);
        assert_eq!(g.degree(1), 1);
    }
}
