//! Multi-source batched bidirectional BFS: up to 64 interleaved (s, t)
//! searches — *lanes* — advanced through shared CSR row scans.
//!
//! The scalar kernel ([`crate::bibfs`]) re-reads adjacency rows that
//! concurrent samples would share: KADABRA draws thousands of independent
//! pairs per ε-round. [`BatchedBiBfs`] amortizes the row decode by packing
//! per-lane membership into `u64` bitset words ([`crate::lanes::LaneMatrix`]):
//! one row scan propagates every in-flight lane whose frontier contains the
//! row's vertex, and meet detection between the forward and backward
//! searches is a word-at-a-time intersection. The achieved decode
//! amortization is observable, not assumed: [`BatchedBiBfs::physical_edges`]
//! counts each row read once, so `edges_scanned / physical_edges` is the
//! measured row-share factor (`bench_kernel` reports it per row; on the
//! cache-resident gate instance it is ≈ 1, and the batched kernel pays for
//! its wider state — see DESIGN.md §16 for the regime analysis).
//!
//! ## Packed single-word fast path (width ≤ 8)
//!
//! For batches of at most [`PACKED_MAX_LANES`] lanes the kernel switches to
//! a denser representation: one `u64` per vertex holds all six lane-bytes —
//! forward seen/frontier/next at bit offsets 0/8/16 and backward at
//! 24/32/40 — so a propagation probe is a **single load** that also answers
//! the meet test (the other direction's seen byte travels in the same
//! word). The wider [`LaneMatrix`] representation covers widths 9..=64.
//! Both paths keep identical scan order, arena updates, meet recording and
//! stats accounting, so which representation ran is unobservable in the
//! sampling transcript.
//!
//! ## Lane layout and semantics
//!
//! Each lane runs exactly the scalar kernel's search schedule: per round an
//! alive lane expands the side whose completed frontier has the smaller
//! total degree (ties → forward), advancing that side by one full level.
//! Per direction the kernel keeps
//!
//! * `seen` — lanes that settled `v` in any *completed* level (including the
//!   current frontier),
//! * `frontier` — lanes whose most recently completed level contains `v`,
//! * `next` — lanes that settled `v` in the level being built this round,
//! * a lane-strided [`StampedState`] arena: slot `v·W + lane` holds the
//!   lane's distance/σ record for `v` (lanes of a vertex are contiguous, so
//!   one settle touches one cache line for W ≤ 4 and sequential lines after),
//! * sparse `active` / `next_active` vertex lists (the invariant is
//!   `active = {v : frontier-word(v) ≠ 0}` with no duplicates), so per-round
//!   work — and the end-of-batch clear, via `touched` — is proportional to
//!   the vertices actually visited, never `O(|V|)`.
//!
//! A propagation step for row vertex `u` computes `prop = fm & !seen(v)`
//! (lanes newly reaching `v`), splits it into `fresh = prop & !next(v)`
//! (first settle this level → visit + meet check) and `merge = prop & next(v)`
//! (σ accumulation for a same-level re-reach), and checks
//! `fresh & other.seen(v)` for meets. `next` is merged into `seen`/`frontier`
//! only at round end, which preserves the scalar kernel's level-synchronous
//! σ merges.
//!
//! ## Bit-identical path selection
//!
//! BFS consumes no randomness — only path *selection* does. Both kernels
//! canonicalize the meeting cut by vertex id and then run the **same**
//! selection/backtrack code ([`crate::bibfs::select_and_backtrack`]), and σ,
//! path counts and per-lane degree sums are order-independent saturating
//! sums, so for an identical RNG stream the batched kernel selects exactly
//! the paths the scalar kernel would — the property
//! `tests/kernel_equivalence.rs` pins for B ∈ {1, 4, 8, 64}.

use crate::bibfs::{select_and_backtrack, SampleInfo, SearchStats, SigmaDistView};
use crate::csr::NodeId;
use crate::lanes::{for_each_lane, LaneMatrix};
use crate::prefetch::prefetch_read;
use crate::scratch::StampedState;
use crate::view::GraphView;
use rand::Rng;

/// Maximum lanes per batch: one bit per lane in a `u64` word.
pub const MAX_LANES: usize = 64;

/// How many adjacency entries ahead the scan prefetches the bitset rows and
/// arena slots (mirrors the scalar kernel's `STATE_PREFETCH_DIST`).
const STATE_PREFETCH_DIST: usize = 4;

/// Widest batch the single-word packed representation covers: six lane-bytes
/// (seen/frontier/next × both directions) must fit one `u64`.
pub const PACKED_MAX_LANES: usize = 8;

/// Packed-word field offsets: direction base + field offset gives the shift
/// of an 8-bit lane field. Bits 48..64 are unused.
const PACKED_FWD: u32 = 0;
const PACKED_BWD: u32 = 24;
const PACKED_FRONT: u32 = 8;
const PACKED_NEXT: u32 = 16;
const LANE_BYTE: u64 = 0xff;

/// One direction's batched search state (forward from the `s` endpoints or
/// backward from the `t` endpoints).
struct DirState {
    /// Lanes that settled `v` in a completed level.
    seen: LaneMatrix,
    /// Lanes whose current completed frontier contains `v`.
    frontier: LaneMatrix,
    /// Lanes that settled `v` in the level under construction.
    next: LaneMatrix,
    /// Lane-strided distance/σ arena: slot `v·W + lane`.
    arena: StampedState<u32>,
    /// Vertices with a non-zero `frontier` word (no duplicates).
    active: Vec<NodeId>,
    /// Vertices that gained their first `next` bit this round.
    next_active: Vec<NodeId>,
    /// Vertices whose `seen` word became non-zero this batch (end-of-batch
    /// clear list: reset cost is O(vertices visited), not O(|V|)).
    touched: Vec<NodeId>,
}

impl DirState {
    /// `bitsets = false` is the packed-word representation (width ≤ 8): the
    /// per-vertex membership bytes live in [`BatchedBiBfs::packed`] instead,
    /// so the matrices are allocated empty and never touched.
    fn new(n: usize, width: usize, bitsets: bool) -> Self {
        let rows = if bitsets { n } else { 0 };
        DirState {
            seen: LaneMatrix::new(rows, width),
            frontier: LaneMatrix::new(rows, width),
            next: LaneMatrix::new(rows, width),
            arena: StampedState::new(n * width),
            active: Vec::new(),
            next_active: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Prepares for a new batch: bumps the arena round and zeroes every
    /// bitset row touched by the previous batch.
    fn begin(&mut self) {
        self.arena.reset();
        for i in 0..self.touched.len() {
            let v = self.touched[i];
            *self.seen.word_mut(v) = 0;
            *self.frontier.word_mut(v) = 0;
            *self.next.word_mut(v) = 0;
        }
        self.touched.clear();
        self.active.clear();
        self.next_active.clear();
    }

    /// Settles `root` at distance 0 with σ = 1 for `lane`.
    fn seed(&mut self, root: NodeId, lane: usize, width: usize) {
        self.arena.visit_at(root as usize * width + lane, 0, 1);
        let bit = 1u64 << lane;
        let sb = self.seen.word(root);
        if sb == 0 {
            self.touched.push(root);
        }
        *self.seen.word_mut(root) = sb | bit;
        let fb = self.frontier.word(root);
        if fb == 0 {
            self.active.push(root);
        }
        *self.frontier.word_mut(root) = fb | bit;
    }
}

/// Per-lane search control state.
#[derive(Clone, Copy)]
struct LaneCtl {
    s: NodeId,
    t: NodeId,
    /// Completed radius around `s` / `t`.
    ds: u32,
    dt: u32,
    /// Total degree of the completed forward / backward frontier.
    deg_s: u64,
    deg_t: u64,
    status: LaneStatus,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum LaneStatus {
    /// Still expanding.
    Running,
    /// Met: final expansion was at depth `depth` on the forward (`fwd`) or
    /// backward side.
    Met { depth: u32, fwd: bool },
    /// A frontier emptied without meeting — the endpoints are disconnected.
    Unreachable,
}

/// σ/distance view of one lane of a direction's arena, so the shared
/// selection/backtrack code reads batched state exactly as it reads scalar
/// state.
struct LaneView<'a> {
    arena: &'a StampedState<u32>,
    width: usize,
    lane: usize,
}

impl SigmaDistView for LaneView<'_> {
    #[inline]
    fn view_dist(&self, v: NodeId) -> u32 {
        self.arena.dist_at(v as usize * self.width + self.lane)
    }
    #[inline]
    fn view_sigma(&self, v: NodeId) -> u64 {
        self.arena.sigma_at(v as usize * self.width + self.lane)
    }
    #[inline]
    fn view_reached(&self, v: NodeId) -> bool {
        self.arena.reached_at(v as usize * self.width + self.lane)
    }
    #[inline]
    fn view_record(&self, v: NodeId) -> Option<(u32, u64)> {
        self.arena.record_at(v as usize * self.width + self.lane)
    }
    #[inline]
    fn view_prefetch(&self, v: NodeId) {
        self.arena.prefetch_at(v as usize * self.width + self.lane);
    }
}

/// The batched kernel object: scratch for up to `width ≤ 64` concurrent
/// lanes on an `n`-vertex graph, reused across batches so a steady-state
/// batch performs no heap allocation (the same contract as
/// [`crate::bibfs::sample_shortest_path_into`]).
pub struct BatchedBiBfs {
    n: usize,
    width: usize,
    fwd: DirState,
    bwd: DirState,
    /// Single-word per-vertex state for the width ≤ 8 fast path: six
    /// lane-bytes (fwd seen/frontier/next at bits 0/8/16, bwd at 24/32/40),
    /// so one load answers every question an edge probe asks — including the
    /// other direction's `seen` byte for meet detection. Empty for wider
    /// batches, which use the [`LaneMatrix`] representation instead.
    packed: Vec<u64>,
    lanes: Vec<LaneCtl>,
    /// Meets recorded this batch: (lane, vertex, settled other-side dist).
    meets: Vec<(u32, NodeId, u32)>,
    /// Per-lane meeting cut reused by the selection phase.
    cut: Vec<(NodeId, u128)>,
    /// Interior of the most recently selected path.
    path: Vec<NodeId>,
    /// Cumulative kernel rounds (each advances ≥ 1 lane by one level).
    pub rounds: u64,
    /// Cumulative Σ over rounds of alive lanes — `lane_rounds / rounds` is
    /// the mean batch occupancy the telemetry counters expose.
    pub lane_rounds: u64,
    /// Physical adjacency entries decoded (each row read counted once no
    /// matter how many lanes share it); `stats.edges_scanned /
    /// physical_edges` is the row-share factor batching achieves.
    pub physical_edges: u64,
}

impl BatchedBiBfs {
    /// Allocates batch scratch for an `n`-vertex graph and `width` lanes.
    pub fn new(n: usize, width: usize) -> Self {
        assert!((1..=MAX_LANES).contains(&width), "batch width must lie in 1..=64, got {width}");
        let bitsets = width > PACKED_MAX_LANES;
        BatchedBiBfs {
            n,
            width,
            fwd: DirState::new(n, width, bitsets),
            bwd: DirState::new(n, width, bitsets),
            packed: if bitsets { Vec::new() } else { vec![0u64; n] },
            lanes: vec![
                LaneCtl {
                    s: 0,
                    t: 0,
                    ds: 0,
                    dt: 0,
                    deg_s: 0,
                    deg_t: 0,
                    status: LaneStatus::Unreachable,
                };
                width
            ],
            meets: Vec::new(),
            cut: Vec::new(),
            path: Vec::new(),
            rounds: 0,
            lane_rounds: 0,
            physical_edges: 0,
        }
    }

    /// Number of vertices this scratch was sized for.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Lane capacity.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Runs one batch: every `pairs[lane] = (s, t)` is one lane. After all
    /// lanes finish, `each(lane, info, interior)` is invoked once per lane
    /// **in lane order** — `None` info (and an empty interior) for a
    /// disconnected pair, mirroring the scalar kernel. RNG is consumed only
    /// by the selection phase, in lane order, so a batch consumes the stream
    /// exactly as the equivalent sequence of scalar calls would.
    pub fn sample_batch_into<G, R, F>(
        &mut self,
        g: &G,
        pairs: &[(NodeId, NodeId)],
        rng: &mut R,
        stats: &mut SearchStats,
        mut each: F,
    ) where
        G: GraphView,
        R: Rng + ?Sized,
        F: FnMut(usize, Option<SampleInfo>, &[NodeId]),
    {
        let width = self.width;
        let nlanes = pairs.len();
        assert!(nlanes <= width, "batch of {nlanes} pairs exceeds width {width}");
        assert_eq!(
            g.num_nodes(),
            self.n,
            "batch scratch sized for {} vertices, graph has {}",
            self.n,
            g.num_nodes()
        );
        if nlanes == 0 {
            return;
        }
        let use_packed = width <= PACKED_MAX_LANES;
        if use_packed {
            self.fwd.arena.reset();
            self.bwd.arena.reset();
            for i in 0..self.fwd.touched.len() {
                self.packed[self.fwd.touched[i] as usize] = 0;
            }
            for i in 0..self.bwd.touched.len() {
                self.packed[self.bwd.touched[i] as usize] = 0;
            }
            self.fwd.touched.clear();
            self.fwd.active.clear();
            self.fwd.next_active.clear();
            self.bwd.touched.clear();
            self.bwd.active.clear();
            self.bwd.next_active.clear();
        } else {
            self.fwd.begin();
            self.bwd.begin();
        }
        self.meets.clear();

        for (lane, &(s, t)) in pairs.iter().enumerate() {
            assert!(s != t, "sampling requires distinct endpoints");
            assert!((s as usize) < self.n && (t as usize) < self.n);
            self.lanes[lane] = LaneCtl {
                s,
                t,
                ds: 0,
                dt: 0,
                deg_s: g.degree(s) as u64,
                deg_t: g.degree(t) as u64,
                status: LaneStatus::Running,
            };
            if use_packed {
                seed_packed(&mut self.packed, PACKED_FWD, &mut self.fwd, s, lane, width);
                seed_packed(&mut self.packed, PACKED_BWD, &mut self.bwd, t, lane, width);
            } else {
                self.fwd.seed(s, lane, width);
                self.bwd.seed(t, lane, width);
            }
            stats.vertices_settled += 2;
        }

        let mut alive: u64 = if nlanes == MAX_LANES { u64::MAX } else { (1u64 << nlanes) - 1 };
        let mut dead: u64 = 0;
        let mut nd = [0u32; MAX_LANES];
        let mut sig_u = [0u64; MAX_LANES];

        while alive != 0 {
            self.rounds += 1;
            self.lane_rounds += u64::from(alive.count_ones());

            // Balanced expansion, per lane: grow the cheaper side.
            let mut mf = 0u64;
            let mut mw = 0u64;
            for_each_lane(alive, |lane| {
                let c = &self.lanes[lane];
                if c.deg_s <= c.deg_t {
                    mf |= 1u64 << lane;
                    nd[lane] = c.ds + 1;
                } else {
                    mw |= 1u64 << lane;
                    nd[lane] = c.dt + 1;
                }
            });

            let meets_start = self.meets.len();
            let mut fresh_cnt = [0u64; MAX_LANES];
            let mut fresh_deg = [0u64; MAX_LANES];
            if use_packed {
                expand_direction_packed(
                    g,
                    &mut self.packed,
                    PACKED_FWD,
                    &mut self.fwd,
                    &self.bwd,
                    mf,
                    &nd,
                    &mut sig_u,
                    &mut fresh_cnt,
                    &mut fresh_deg,
                    &mut self.meets,
                    width,
                    stats,
                    &mut self.physical_edges,
                );
                expand_direction_packed(
                    g,
                    &mut self.packed,
                    PACKED_BWD,
                    &mut self.bwd,
                    &self.fwd,
                    mw,
                    &nd,
                    &mut sig_u,
                    &mut fresh_cnt,
                    &mut fresh_deg,
                    &mut self.meets,
                    width,
                    stats,
                    &mut self.physical_edges,
                );
            } else {
                expand_direction(
                    g,
                    &mut self.fwd,
                    &self.bwd,
                    mf,
                    &nd,
                    &mut sig_u,
                    &mut fresh_cnt,
                    &mut fresh_deg,
                    &mut self.meets,
                    width,
                    stats,
                    &mut self.physical_edges,
                );
                expand_direction(
                    g,
                    &mut self.bwd,
                    &self.fwd,
                    mw,
                    &nd,
                    &mut sig_u,
                    &mut fresh_cnt,
                    &mut fresh_deg,
                    &mut self.meets,
                    width,
                    stats,
                    &mut self.physical_edges,
                );
            }

            let mut met = 0u64;
            for &(lane, _, _) in &self.meets[meets_start..] {
                met |= 1u64 << lane;
            }
            let mut newly_dead = met;
            for_each_lane(alive, |lane| {
                let bit = 1u64 << lane;
                let c = &mut self.lanes[lane];
                if met & bit != 0 {
                    c.status = LaneStatus::Met { depth: nd[lane], fwd: mf & bit != 0 };
                } else if fresh_cnt[lane] == 0 {
                    // The expanded frontier emptied without meeting: the
                    // component is exhausted, the pair is disconnected.
                    c.status = LaneStatus::Unreachable;
                    newly_dead |= bit;
                } else if mf & bit != 0 {
                    c.ds = nd[lane];
                    c.deg_s = fresh_deg[lane];
                } else {
                    c.dt = nd[lane];
                    c.deg_t = fresh_deg[lane];
                }
            });
            alive &= !newly_dead;
            dead |= newly_dead;

            if use_packed {
                compact_direction_packed(&mut self.packed, PACKED_FWD, &mut self.fwd, mf, dead);
                compact_direction_packed(&mut self.packed, PACKED_BWD, &mut self.bwd, mw, dead);
            } else {
                compact_direction(&mut self.fwd, mf, dead);
                compact_direction(&mut self.bwd, mw, dead);
            }
        }

        // Selection phase, in lane order: the RNG stream sees pair
        // pre-draws (done by the caller) followed by per-sample selection
        // draws in sample order — exactly the scalar sequence.
        for lane in 0..nlanes {
            let c = self.lanes[lane];
            match c.status {
                LaneStatus::Running => unreachable!("the round loop exits only when no lane runs"),
                LaneStatus::Unreachable => {
                    self.path.clear();
                    each(lane, None, &self.path);
                }
                LaneStatus::Met { depth, fwd } => {
                    let mut k0 = u32::MAX;
                    for &(l, _, k) in self.meets.iter() {
                        if l as usize == lane && k < k0 {
                            k0 = k;
                        }
                    }
                    let (near_arena, far_arena) = if fwd {
                        (&self.fwd.arena, &self.bwd.arena)
                    } else {
                        (&self.bwd.arena, &self.fwd.arena)
                    };
                    self.cut.clear();
                    let mut num_paths: u128 = 0;
                    for &(l, v, k) in self.meets.iter() {
                        if l as usize == lane && k == k0 {
                            let idx = v as usize * width + lane;
                            let w = (near_arena.sigma_at(idx) as u128)
                                .saturating_mul(far_arena.sigma_at(idx) as u128);
                            num_paths = num_paths.saturating_add(w);
                            self.cut.push((v, w));
                        }
                    }
                    debug_assert!(num_paths > 0);
                    let (near_root, far_root) = if fwd { (c.s, c.t) } else { (c.t, c.s) };
                    let near = LaneView { arena: near_arena, width, lane };
                    let far = LaneView { arena: far_arena, width, lane };
                    select_and_backtrack(
                        g,
                        &mut self.cut,
                        num_paths,
                        &near,
                        near_root,
                        &far,
                        far_root,
                        &mut self.path,
                        rng,
                    );
                    let distance = depth + k0;
                    debug_assert_eq!(
                        // xtask: allow(determinism) — a shortest path visits
                        // each vertex at most once, so its length fits u32.
                        self.path.len() as u32 + 1,
                        distance,
                        "interior vertex count must be distance - 1"
                    );
                    each(lane, Some(SampleInfo { distance, num_paths }), &self.path);
                }
            }
        }
    }
}

/// Advances every lane in `mask` by one level of `this` direction: one
/// shared scan over `this.active`, propagating all masked lanes per CSR row
/// visit. `other` is the opposite direction — read-only here (meet tests
/// against its `seen` set and settled distances); the lanes it is
/// concurrently expanding are bitwise disjoint from `mask`.
#[allow(clippy::too_many_arguments)]
fn expand_direction<G: GraphView>(
    g: &G,
    this: &mut DirState,
    other: &DirState,
    mask: u64,
    nd: &[u32; MAX_LANES],
    sig_u: &mut [u64; MAX_LANES],
    fresh_cnt: &mut [u64; MAX_LANES],
    fresh_deg: &mut [u64; MAX_LANES],
    meets: &mut Vec<(u32, NodeId, u32)>,
    width: usize,
    stats: &mut SearchStats,
    physical: &mut u64,
) {
    if mask == 0 {
        return;
    }
    for i in 0..this.active.len() {
        let u = this.active[i];
        // Pull the next active vertex's adjacency row and frontier word
        // while scanning this one's.
        if let Some(&nu) = this.active.get(i + 1) {
            g.prefetch_neighbors(nu);
            this.frontier.prefetch_row(nu);
        }
        let fm = this.frontier.word(u) & mask;
        if fm == 0 {
            continue;
        }
        // Hoist σ(u) per lane: u sits in a completed level, so no write this
        // round can touch its records.
        let ub = u as usize * width;
        for_each_lane(fm, |lane| sig_u[lane] = this.arena.sigma_at(ub + lane));
        let adj = g.neighbors(u);
        // Every masked lane whose frontier holds u scans this row — the
        // shared decode the batching amortizes.
        stats.edges_scanned += u64::from(fm.count_ones()) * adj.len() as u64;
        *physical += adj.len() as u64;
        for (j, &v) in adj.iter().enumerate() {
            // The v's are data-dependent: pull the bitset row and the arena
            // slots a few probes ahead.
            if let Some(&nv) = adj.get(j + STATE_PREFETCH_DIST) {
                this.seen.prefetch_row(nv);
                this.arena.prefetch_at(nv as usize * width);
            }
            let prop = fm & !this.seen.word(v);
            if prop == 0 {
                continue;
            }
            let vb = v as usize * width;
            let nw = this.next.word(v);
            let merge = prop & nw;
            let fresh = prop & !nw;
            // Same-level re-reach: accumulate σ (level-synchronous merge).
            for_each_lane(merge, |lane| this.arena.add_sigma_at(vb + lane, sig_u[lane]));
            if fresh != 0 {
                if nw == 0 {
                    this.next_active.push(v);
                }
                *this.next.word_mut(v) = nw | fresh;
                stats.vertices_settled += u64::from(fresh.count_ones());
                let dv = g.degree(v) as u64;
                for_each_lane(fresh, |lane| {
                    this.arena.visit_at(vb + lane, nd[lane], sig_u[lane]);
                    fresh_cnt[lane] += 1;
                    fresh_deg[lane] += dv;
                });
                // Word-at-a-time meet detection: lanes that just settled v
                // and had already settled it from the other side.
                let met = fresh & other.seen.word(v);
                for_each_lane(met, |lane| {
                    meets.push((lane as u32, v, other.arena.dist_at(vb + lane)));
                });
            }
        }
    }
}

/// End-of-round bookkeeping for one direction: retires the completed level
/// of every lane in `expanded` (and every bit of `dead` lanes), promotes the
/// freshly built level into `frontier`/`seen`, and keeps the active list
/// exactly `{v : frontier-word(v) ≠ 0}` without duplicates.
fn compact_direction(this: &mut DirState, expanded: u64, dead: u64) {
    let keep = !(expanded | dead);
    let mut w_idx = 0;
    for i in 0..this.active.len() {
        let v = this.active[i];
        let fw = this.frontier.word(v) & keep;
        *this.frontier.word_mut(v) = fw;
        if fw != 0 {
            this.active[w_idx] = v;
            w_idx += 1;
        }
    }
    this.active.truncate(w_idx);
    for i in 0..this.next_active.len() {
        let v = this.next_active[i];
        let nw = this.next.word(v);
        *this.next.word_mut(v) = 0;
        let sb = this.seen.word(v);
        if sb == 0 {
            this.touched.push(v);
        }
        // Settled state of met lanes stays in `seen`/arena for selection;
        // only still-running lanes carry the level forward as a frontier.
        *this.seen.word_mut(v) = sb | nw;
        let live = nw & !dead;
        if live != 0 {
            let fb = this.frontier.word(v);
            if fb == 0 {
                this.active.push(v);
            }
            *this.frontier.word_mut(v) = fb | live;
        }
    }
    this.next_active.clear();
}

/// Packed-word seed: [`DirState::seed`] against the single-word per-vertex
/// representation. `shift` selects the direction's byte group; list pushes
/// key off the same byte transitions as the bitset path, so the active /
/// touched orders — and hence the transcript — are identical.
fn seed_packed(
    packed: &mut [u64],
    shift: u32,
    dir: &mut DirState,
    root: NodeId,
    lane: usize,
    width: usize,
) {
    dir.arena.visit_at(root as usize * width + lane, 0, 1);
    let w = packed[root as usize];
    if (w >> shift) & LANE_BYTE == 0 {
        dir.touched.push(root);
    }
    if (w >> (shift + PACKED_FRONT)) & LANE_BYTE == 0 {
        dir.active.push(root);
    }
    packed[root as usize] =
        w | (1u64 << (shift + lane as u32)) | (1u64 << (shift + PACKED_FRONT + lane as u32));
}

/// [`expand_direction`] specialized to the packed-word representation
/// (width ≤ 8): one `packed[v]` load yields this direction's seen /
/// frontier / next bytes **and** the other direction's seen byte, so the
/// per-edge probe touches a single 8-byte slot instead of three scattered
/// bitset rows plus a meet lookup. Scan order, arena updates, meet
/// recording and stats accounting mirror the bitset path exactly.
#[allow(clippy::too_many_arguments)]
fn expand_direction_packed<G: GraphView>(
    g: &G,
    packed: &mut [u64],
    shift: u32,
    this: &mut DirState,
    other: &DirState,
    mask: u64,
    nd: &[u32; MAX_LANES],
    sig_u: &mut [u64; MAX_LANES],
    fresh_cnt: &mut [u64; MAX_LANES],
    fresh_deg: &mut [u64; MAX_LANES],
    meets: &mut Vec<(u32, NodeId, u32)>,
    width: usize,
    stats: &mut SearchStats,
    physical: &mut u64,
) {
    if mask == 0 {
        return;
    }
    let other_shift = PACKED_BWD - shift;
    let fshift = shift + PACKED_FRONT;
    let nshift = shift + PACKED_NEXT;
    for i in 0..this.active.len() {
        let u = this.active[i];
        if let Some(&nu) = this.active.get(i + 1) {
            g.prefetch_neighbors(nu);
            prefetch_read(packed, nu as usize);
        }
        let fm = (packed[u as usize] >> fshift) & mask;
        if fm == 0 {
            continue;
        }
        let ub = u as usize * width;
        for_each_lane(fm, |lane| sig_u[lane] = this.arena.sigma_at(ub + lane));
        let adj = g.neighbors(u);
        stats.edges_scanned += u64::from(fm.count_ones()) * adj.len() as u64;
        *physical += adj.len() as u64;
        for (j, &v) in adj.iter().enumerate() {
            if let Some(&nv) = adj.get(j + STATE_PREFETCH_DIST) {
                prefetch_read(packed, nv as usize);
            }
            let pv = packed[v as usize];
            // `fm` has bits only in 0..8, so it masks the shifted garbage.
            let prop = fm & !(pv >> shift);
            if prop == 0 {
                continue;
            }
            let nw = (pv >> nshift) & LANE_BYTE;
            let merge = prop & nw;
            let fresh = prop & !nw;
            let vb = v as usize * width;
            for_each_lane(merge, |lane| this.arena.add_sigma_at(vb + lane, sig_u[lane]));
            if fresh != 0 {
                if nw == 0 {
                    this.next_active.push(v);
                }
                packed[v as usize] = pv | (fresh << nshift);
                stats.vertices_settled += u64::from(fresh.count_ones());
                let dv = g.degree(v) as u64;
                for_each_lane(fresh, |lane| {
                    this.arena.visit_at(vb + lane, nd[lane], sig_u[lane]);
                    fresh_cnt[lane] += 1;
                    fresh_deg[lane] += dv;
                });
                // The other direction's seen byte came along in `pv`.
                let met = fresh & (pv >> other_shift);
                for_each_lane(met, |lane| {
                    meets.push((lane as u32, v, other.arena.dist_at(vb + lane)));
                });
            }
        }
    }
}

/// [`compact_direction`] for the packed-word representation: retires the
/// expanded/dead frontier bytes, promotes `next` into `seen`/`frontier`,
/// and keeps `active` exactly the non-zero-frontier set without duplicates.
fn compact_direction_packed(
    packed: &mut [u64],
    shift: u32,
    this: &mut DirState,
    expanded: u64,
    dead: u64,
) {
    let fshift = shift + PACKED_FRONT;
    let nshift = shift + PACKED_NEXT;
    let keep = !(expanded | dead);
    let mut w_idx = 0;
    for i in 0..this.active.len() {
        let v = this.active[i];
        let pv = packed[v as usize];
        let fw = (pv >> fshift) & LANE_BYTE & keep;
        packed[v as usize] = (pv & !(LANE_BYTE << fshift)) | (fw << fshift);
        if fw != 0 {
            this.active[w_idx] = v;
            w_idx += 1;
        }
    }
    this.active.truncate(w_idx);
    for i in 0..this.next_active.len() {
        let v = this.next_active[i];
        let pv = packed[v as usize];
        let nw = (pv >> nshift) & LANE_BYTE;
        if (pv >> shift) & LANE_BYTE == 0 {
            this.touched.push(v);
        }
        // Settled state of met lanes stays in `seen`/arena for selection;
        // only still-running lanes carry the level forward as a frontier.
        let mut new = (pv & !(LANE_BYTE << nshift)) | (nw << shift);
        let live = nw & !dead;
        if live != 0 {
            if (pv >> fshift) & LANE_BYTE == 0 {
                this.active.push(v);
            }
            new |= live << fshift;
        }
        packed[v as usize] = new;
    }
    this.next_active.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bibfs::sample_shortest_path_into;
    use crate::csr::{graph_from_edges, Graph};
    use crate::scratch::TraversalScratch;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type SampledPaths = Vec<(Option<SampleInfo>, Vec<NodeId>)>;

    fn run_batch(g: &Graph, pairs: &[(NodeId, NodeId)], width: usize, seed: u64) -> SampledPaths {
        let mut kernel = BatchedBiBfs::new(g.num_nodes(), width);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        for chunk in pairs.chunks(width) {
            kernel.sample_batch_into(g, chunk, &mut rng, &mut stats, |_, info, path| {
                out.push((info, path.to_vec()));
            });
        }
        out
    }

    fn run_scalar(g: &Graph, pairs: &[(NodeId, NodeId)], seed: u64) -> (SampledPaths, SearchStats) {
        let mut sc = TraversalScratch::new(g.num_nodes());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        for &(s, t) in pairs {
            let info = sample_shortest_path_into(g, s, t, &mut sc, &mut rng, &mut stats);
            out.push((info, sc.path.clone()));
        }
        (out, stats)
    }

    #[test]
    fn adjacent_pair_single_lane() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let out = run_batch(&g, &[(0, 1)], 1, 1);
        assert_eq!(out.len(), 1);
        let (info, path) = &out[0];
        let info = info.expect("connected");
        assert_eq!(info.distance, 1);
        assert_eq!(info.num_paths, 1);
        assert!(path.is_empty());
    }

    #[test]
    fn disconnected_lane_reports_none() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let out = run_batch(&g, &[(0, 3), (0, 1), (2, 0)], 4, 2);
        assert!(out[0].0.is_none() && out[0].1.is_empty());
        assert_eq!(out[1].0.expect("adjacent").distance, 1);
        assert!(out[2].0.is_none());
    }

    #[test]
    fn four_cycle_counts_two_paths_at_all_widths() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for width in [1, 2, 8, 64] {
            let out = run_batch(&g, &[(0, 2), (1, 3)], width, 3);
            for (info, path) in &out {
                let info = info.expect("connected");
                assert_eq!(info.distance, 2);
                assert_eq!(info.num_paths, 2);
                assert_eq!(path.len(), 1);
            }
        }
    }

    #[test]
    fn duplicate_pairs_share_lanes_independently() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let out = run_batch(&g, &[(0, 4); 8], 8, 4);
        for (info, path) in &out {
            assert_eq!(info.expect("connected").distance, 4);
            let mut interior = path.clone();
            interior.sort_unstable();
            assert_eq!(interior, vec![1, 2, 3]);
        }
    }

    #[test]
    fn matches_scalar_on_random_graphs() {
        use rand::Rng as _;
        let mut gen = StdRng::seed_from_u64(5);
        for trial in 0..20 {
            let n = 24 + trial % 8;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if gen.gen_bool(0.12) {
                        edges.push((u, v));
                    }
                }
            }
            let g = graph_from_edges(n, &edges);
            let mut pairs = Vec::new();
            for _ in 0..32 {
                let s = gen.gen_range(0..n as NodeId);
                let mut t = gen.gen_range(0..n as NodeId - 1);
                if t >= s {
                    t += 1;
                }
                pairs.push((s, t));
            }
            let (scalar, _) = run_scalar(&g, &pairs, 100 + trial as u64);
            for width in [1usize, 4, 8] {
                let batched = run_batch(&g, &pairs, width, 100 + trial as u64);
                assert_eq!(scalar, batched, "width {width} diverged on trial {trial}");
            }
        }
    }

    #[test]
    fn stats_match_scalar_totals() {
        use rand::Rng as _;
        let mut gen = StdRng::seed_from_u64(6);
        let n = 40;
        let mut edges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if gen.gen_bool(0.1) {
                    edges.push((u, v));
                }
            }
        }
        let g = graph_from_edges(n, &edges);
        let pairs: Vec<_> = (0..16)
            .map(|i| ((i % n as NodeId), ((i + 7) % n as NodeId)))
            .filter(|&(s, t)| s != t)
            .collect();
        let (_, scalar_stats) = run_scalar(&g, &pairs, 9);
        let mut kernel = BatchedBiBfs::new(g.num_nodes(), 8);
        let mut rng = StdRng::seed_from_u64(9);
        let mut stats = SearchStats::default();
        for chunk in pairs.chunks(8) {
            kernel.sample_batch_into(&g, chunk, &mut rng, &mut stats, |_, _, _| {});
        }
        assert_eq!(stats.edges_scanned, scalar_stats.edges_scanned);
        assert_eq!(stats.vertices_settled, scalar_stats.vertices_settled);
        assert!(kernel.rounds > 0);
        assert!(kernel.lane_rounds >= kernel.rounds);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut kernel = BatchedBiBfs::new(2, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        kernel.sample_batch_into(&g, &[], &mut rng, &mut stats, |_, _, _| {
            panic!("no lanes, no callbacks")
        });
        assert_eq!(stats.vertices_settled, 0);
    }

    #[test]
    #[should_panic(expected = "sized for")]
    fn wrong_graph_size_panics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut kernel = BatchedBiBfs::new(8, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        kernel.sample_batch_into(&g, &[(0, 1)], &mut rng, &mut stats, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn equal_endpoints_panic() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut kernel = BatchedBiBfs::new(2, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        kernel.sample_batch_into(&g, &[(1, 1)], &mut rng, &mut stats, |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn oversized_batch_panics() {
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let mut kernel = BatchedBiBfs::new(3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SearchStats::default();
        kernel.sample_batch_into(&g, &[(0, 1), (1, 2), (0, 2)], &mut rng, &mut stats, |_, _, _| {});
    }
}
