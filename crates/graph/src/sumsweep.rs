//! SumSweep diameter bounds.
//!
//! Ref. [6] of the paper (Borassi et al., TCS 2015) computes diameters of
//! real-world graphs in a handful of BFS runs by *sweeping*: repeatedly
//! running BFS from carefully chosen roots and maintaining lower/upper
//! eccentricity bounds. This module implements the undirected SumSweep
//! heuristic: roots alternate between (a) the vertex with the largest
//! distance-sum (a good "peripheral" candidate) and (b) the vertex with the
//! largest eccentricity lower bound not yet confirmed.
//!
//! It complements [`crate::diameter`] (two-sweep + iFUB): SumSweep gives
//! tight bounds in strictly `k` BFS runs, making it the better choice for
//! the diameter *phase* of KADABRA on low-diameter complex networks where
//! iFUB's certification can degenerate; the iFUB module remains the
//! certified-exact option.

use crate::bfs::bfs;
use crate::csr::{Graph, NodeId};
use crate::scratch::UNREACHED;

/// Lower/upper diameter bounds plus per-sweep history.
#[derive(Debug, Clone)]
pub struct SumSweepResult {
    /// Best lower bound (eccentricity actually observed).
    pub lower: u32,
    /// Matching upper bound (`2·min ecc(root)` over the sweeps).
    pub upper: u32,
    /// Roots used, in order.
    pub roots: Vec<NodeId>,
    /// Eccentricity of each root.
    pub eccentricities: Vec<u32>,
}

impl SumSweepResult {
    /// Whether the bounds meet (the diameter is certified).
    pub fn is_exact(&self) -> bool {
        self.lower == self.upper
    }

    /// Vertex-diameter upper bound for KADABRA's ω.
    pub fn vertex_diameter_upper(&self) -> u32 {
        self.upper.saturating_add(1)
    }
}

/// Runs `sweeps` BFS sweeps (≥ 1) starting from `start`, over the connected
/// component of `start`.
pub fn sum_sweep(g: &Graph, start: NodeId, sweeps: usize) -> SumSweepResult {
    let n = g.num_nodes();
    assert!((start as usize) < n, "start out of range");
    let sweeps = sweeps.max(1);
    let mut lower = 0u32;
    let mut upper = u32::MAX;
    let mut roots = Vec::with_capacity(sweeps);
    let mut eccs = Vec::with_capacity(sweeps);
    // Sum of observed distances per vertex; the next "peripheral" root is
    // the unused vertex maximizing this sum.
    let mut dist_sum = vec![0u64; n];
    // Max observed distance per vertex; its minimizer is the center guess.
    let mut dist_max = vec![0u32; n];
    // Per-vertex eccentricity upper bound via the triangle inequality
    // ecc(v) <= d(v, r) + ecc(r); the diameter is at most its maximum.
    let mut ecc_ub = vec![u32::MAX; n];
    let mut used = vec![false; n];
    let mut reachable: Option<Vec<NodeId>> = None;

    let mut root = start;
    for sweep in 0..sweeps {
        roots.push(root);
        used[root as usize] = true;
        let res = bfs(g, root);
        eccs.push(res.ecc);
        lower = lower.max(res.ecc);
        upper = upper.min(2 * res.ecc);
        if reachable.is_none() {
            reachable = Some(res.order.clone());
        }
        for &v in res.order.iter() {
            let d = res.dist[v as usize];
            dist_sum[v as usize] += d as u64;
            dist_max[v as usize] = dist_max[v as usize].max(d);
            ecc_ub[v as usize] = ecc_ub[v as usize].min(d + res.ecc);
        }
        let triangle_ub = reachable
            .as_ref()
            // xtask: allow(unwrap) — populated on the first sweep above.
            .unwrap()
            .iter()
            .map(|&v| ecc_ub[v as usize])
            .max()
            .unwrap_or(0);
        upper = upper.min(triangle_ub);
        if lower >= upper {
            upper = lower;
            break;
        }
        // Next root: alternate between the farthest vertex of this sweep
        // (classic double-sweep) and the max distance-sum vertex (SumSweep) —
        // both peripheral candidates that push the *lower* bound. The final
        // sweep instead targets a *central* vertex (minimum distance sum),
        // whose eccentricity powers the `2·ecc` upper bound (a 4-sweep-style
        // refinement of Ref. [6]).
        // xtask: allow(unwrap) — populated on the first sweep above.
        let candidates = reachable.as_ref().unwrap();
        let next = if sweep + 2 == sweeps {
            candidates
                .iter()
                .copied()
                .filter(|&v| !used[v as usize])
                .min_by_key(|&v| dist_max[v as usize])
        } else if sweep % 2 == 0 {
            candidates
                .iter()
                .copied()
                .filter(|&v| !used[v as usize] && res.dist[v as usize] != UNREACHED)
                .max_by_key(|&v| res.dist[v as usize])
        } else {
            candidates
                .iter()
                .copied()
                .filter(|&v| !used[v as usize])
                .max_by_key(|&v| dist_sum[v as usize])
        };
        match next {
            Some(v) => root = v,
            None => break, // component exhausted
        }
    }
    SumSweepResult { lower, upper: upper.max(lower), roots, eccentricities: eccs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::largest_component;
    use crate::csr::graph_from_edges;
    use crate::diameter::diameter_brute_force;
    use crate::generators::{gnm, grid, rmat, GnmConfig, GridConfig, RmatConfig};

    #[test]
    fn path_graph_exact_in_two_sweeps() {
        let edges: Vec<_> = (0..19).map(|v| (v, v + 1)).collect();
        let g = graph_from_edges(20, &edges);
        let r = sum_sweep(&g, 7, 4);
        assert_eq!(r.lower, 19);
        assert!(r.roots.len() <= 4);
    }

    #[test]
    fn bounds_bracket_the_truth_on_random_graphs() {
        for seed in 0..10 {
            let g = gnm(GnmConfig { n: 80, m: 160, seed });
            let (lcc, _) = largest_component(&g);
            if lcc.num_nodes() < 2 {
                continue;
            }
            let exact = diameter_brute_force(&lcc);
            let r = sum_sweep(&lcc, 0, 6);
            assert!(r.lower <= exact, "seed {seed}: lower {} > exact {exact}", r.lower);
            assert!(r.upper >= exact, "seed {seed}: upper {} < exact {exact}", r.upper);
        }
    }

    #[test]
    fn lower_bound_is_often_exact_on_complex_networks() {
        let g = rmat(RmatConfig::graph500(9, 6, 3));
        let (lcc, _) = largest_component(&g);
        let exact = diameter_brute_force(&lcc);
        let r = sum_sweep(&lcc, 0, 8);
        // SumSweep's selling point: the lower bound hits the diameter.
        assert_eq!(r.lower, exact);
    }

    #[test]
    fn grid_bounds_tighten_well() {
        let g = grid(GridConfig { rows: 15, cols: 15, diagonal_prob: 0.0, seed: 0 });
        let r = sum_sweep(&g, 0, 6);
        assert_eq!(r.lower, 28, "corner sweeps find the true diameter");
        // The triangle bound beats the naive 2*ecc = 56 substantially even
        // though peripheral roots cannot certify a grid (iFUB can).
        assert!(r.upper <= 44, "upper {} too loose", r.upper);
    }

    #[test]
    fn path_graph_certifies() {
        let edges: Vec<_> = (0..19).map(|v| (v, v + 1)).collect();
        let g = graph_from_edges(20, &edges);
        let r = sum_sweep(&g, 3, 4);
        assert_eq!(r.lower, 19);
        assert!(r.is_exact(), "triangle bound certifies a path: {r:?}");
    }

    #[test]
    fn more_sweeps_never_loosen_bounds() {
        let g = gnm(GnmConfig { n: 60, m: 140, seed: 4 });
        let (lcc, _) = largest_component(&g);
        let mut prev_gap = u32::MAX;
        for sweeps in [1, 2, 4, 8] {
            let r = sum_sweep(&lcc, 0, sweeps);
            let gap = r.upper - r.lower;
            assert!(gap <= prev_gap, "gap widened at {sweeps} sweeps");
            prev_gap = gap;
        }
    }

    #[test]
    fn isolated_start() {
        let g = graph_from_edges(3, &[(1, 2)]);
        let r = sum_sweep(&g, 0, 3);
        assert_eq!(r.lower, 0);
        assert_eq!(r.upper, 0);
        assert!(r.is_exact());
    }

    #[test]
    fn vertex_diameter_upper_off_by_one() {
        let edges: Vec<_> = (0..9).map(|v| (v, v + 1)).collect();
        let g = graph_from_edges(10, &edges);
        let r = sum_sweep(&g, 0, 4);
        assert_eq!(r.vertex_diameter_upper(), r.upper + 1);
    }
}
