//! Weighted undirected graphs.
//!
//! The second half of the paper's footnote 1 ("directed and/or weighted
//! graphs"): a CSR graph with positive integer edge weights, Dijkstra with
//! shortest-path counting, and a σ-proportional uniform shortest-path
//! sampler. KADABRA's estimator is oblivious to *how* a uniform shortest
//! path is drawn, so swapping this sampler in yields weighted betweenness
//! approximation with the identical guarantee (see
//! `kadabra_core::variants`).

use crate::csr::NodeId;
use rand::Rng;
use std::collections::BinaryHeap;

/// Edge weight; strictly positive (Dijkstra's requirement).
pub type Weight = u32;

/// Distance accumulator (sums of weights).
pub type Dist = u64;

/// Sentinel for "unreached".
pub const UNREACHED_W: Dist = Dist::MAX;

/// A static, undirected, positively weighted graph in CSR form.
#[derive(Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<u64>,
    targets: Vec<NodeId>,
    weights: Vec<Weight>,
}

impl WeightedGraph {
    /// Builds from an edge list of `(u, v, w)` triples; self-loops are
    /// dropped, parallel edges keep the minimum weight, and every weight
    /// must be positive.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId, Weight)]) -> WeightedGraph {
        assert!(n <= NodeId::MAX as usize, "too many vertices for u32 ids");
        let mut cleaned: Vec<(NodeId, NodeId, Weight)> = Vec::with_capacity(edges.len());
        for &(u, v, w) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge endpoint out of range");
            assert!(w > 0, "weights must be positive");
            if u != v {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                cleaned.push((a, b, w));
            }
        }
        cleaned.sort_unstable();
        // Parallel edges: keep the lightest (only it can lie on a shortest path).
        cleaned.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut degrees = vec![0u64; n];
        for &(u, v, _) in &cleaned {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degrees[i];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut targets = vec![0 as NodeId; offsets[n] as usize];
        let mut weights = vec![0 as Weight; offsets[n] as usize];
        for &(u, v, w) in &cleaned {
            targets[cursor[u as usize] as usize] = v;
            weights[cursor[u as usize] as usize] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            weights[cursor[v as usize] as usize] = w;
            cursor[v as usize] += 1;
        }
        WeightedGraph { offsets, targets, weights }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Weighted neighbours of `v` as `(target, weight)` pairs.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }
}

impl std::fmt::Debug for WeightedGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WeightedGraph")
            .field("nodes", &self.num_nodes())
            .field("edges", &self.num_edges())
            .finish()
    }
}

/// Dijkstra with shortest-path counting from `source`; stops early once
/// `until` (if given) is settled.
///
/// Returns `(dist, sigma, settled_order)`. σ values are exact for settled
/// vertices: with positive weights a vertex's distance is final when popped,
/// so σ accumulated via relaxations from settled vertices is final too.
pub fn dijkstra_sigma(
    g: &WeightedGraph,
    source: NodeId,
    until: Option<NodeId>,
) -> (Vec<Dist>, Vec<u64>, Vec<NodeId>) {
    let n = g.num_nodes();
    let mut dist = vec![UNREACHED_W; n];
    let mut sigma = vec![0u64; n];
    let mut settled = vec![false; n];
    let mut order = Vec::new();
    // Max-heap of Reverse((dist, vertex)).
    let mut heap: BinaryHeap<std::cmp::Reverse<(Dist, NodeId)>> = BinaryHeap::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1;
    heap.push(std::cmp::Reverse((0, source)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        order.push(u);
        if until == Some(u) {
            break;
        }
        debug_assert_eq!(d, dist[u as usize]);
        let su = sigma[u as usize];
        for (v, w) in g.neighbors(u) {
            if settled[v as usize] {
                continue;
            }
            let cand = d + w as Dist;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                sigma[v as usize] = su;
                heap.push(std::cmp::Reverse((cand, v)));
            } else if cand == dist[v as usize] {
                sigma[v as usize] = sigma[v as usize].saturating_add(su);
            }
        }
    }
    (dist, sigma, order)
}

/// A weighted path sample: interior vertices of a uniformly drawn
/// minimum-weight `s`-`t` path, plus its weight and multiplicity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedPathSample {
    /// Total weight of the shortest path.
    pub distance: Dist,
    /// Interior vertices (excludes endpoints).
    pub interior: Vec<NodeId>,
    /// Number of distinct minimum-weight s-t paths.
    pub num_paths: u64,
}

/// Samples a uniformly random minimum-weight `s`-`t` path via Dijkstra with
/// early exit plus σ-proportional backtracking. (A bidirectional Dijkstra
/// would halve the search like the paper's bidirectional BFS; it is a pure
/// optimization and does not affect the estimator.)
pub fn sample_weighted_shortest_path<R: Rng + ?Sized>(
    g: &WeightedGraph,
    s: NodeId,
    t: NodeId,
    rng: &mut R,
) -> Option<WeightedPathSample> {
    assert!(s != t, "sampling requires distinct endpoints");
    let (dist, sigma, _) = dijkstra_sigma(g, s, Some(t));
    if dist[t as usize] == UNREACHED_W {
        return None;
    }
    let mut interior = Vec::new();
    let mut cur = t;
    while cur != s {
        // Predecessors: neighbours u with dist[u] + w == dist[cur].
        let mut total = 0u64;
        for (u, w) in g.neighbors(cur) {
            if dist[u as usize] != UNREACHED_W && dist[u as usize] + w as Dist == dist[cur as usize]
            {
                total += sigma[u as usize];
            }
        }
        debug_assert!(total > 0);
        let mut pick = rng.gen_range(0..total);
        let mut nxt = cur;
        for (u, w) in g.neighbors(cur) {
            if dist[u as usize] != UNREACHED_W && dist[u as usize] + w as Dist == dist[cur as usize]
            {
                let su = sigma[u as usize];
                if pick < su {
                    nxt = u;
                    break;
                }
                pick -= su;
            }
        }
        debug_assert_ne!(nxt, cur);
        if nxt != s {
            interior.push(nxt);
        }
        cur = nxt;
    }
    interior.reverse();
    Some(WeightedPathSample { distance: dist[t as usize], interior, num_paths: sigma[t as usize] })
}

/// Exhaustively enumerates all minimum-weight `s`-`t` paths (test oracle).
pub fn enumerate_weighted_shortest_paths(
    g: &WeightedGraph,
    s: NodeId,
    t: NodeId,
) -> Vec<Vec<NodeId>> {
    assert!(s != t);
    let (dist, _, _) = dijkstra_sigma(g, s, None);
    if dist[t as usize] == UNREACHED_W {
        return Vec::new();
    }
    let mut paths = Vec::new();
    let mut stack = vec![t];
    fn rec(
        g: &WeightedGraph,
        dist: &[Dist],
        s: NodeId,
        cur: NodeId,
        stack: &mut Vec<NodeId>,
        paths: &mut Vec<Vec<NodeId>>,
    ) {
        if cur == s {
            let mut interior: Vec<NodeId> = stack[1..stack.len() - 1].to_vec();
            interior.reverse();
            paths.push(interior);
            return;
        }
        for (u, w) in g.neighbors(cur) {
            if dist[u as usize] != UNREACHED_W && dist[u as usize] + w as Dist == dist[cur as usize]
            {
                stack.push(u);
                rec(g, dist, s, u, stack, paths);
                stack.pop();
            }
        }
    }
    rec(g, &dist, s, t, &mut stack, &mut paths);
    paths
}

/// Maximum number of *vertices* on any sampled shortest path — the weighted
/// analogue of the vertex diameter KADABRA's ω needs. Estimated from `k`
/// Dijkstra sweeps (double-sweep style: each sweep roots at the hop-farthest
/// vertex of the previous one). An underestimate only loosens the
/// approximation, never correctness, because the result is doubled.
pub fn estimate_vertex_diameter(g: &WeightedGraph, sweeps: usize, start: NodeId) -> u32 {
    let n = g.num_nodes();
    if n == 0 {
        return 0;
    }
    let mut root = start;
    let mut best_hops = 1u32;
    for _ in 0..sweeps.max(1) {
        let (dist, _, order) = dijkstra_sigma(g, root, None);
        // Hop count along predecessor chains: recompute by following any
        // predecessor; per settled vertex the hop count is 1 + predecessor's.
        let mut hops = vec![0u32; n];
        let mut far = root;
        for &v in &order {
            if v == root {
                continue;
            }
            let mut best = 0u32;
            for (u, w) in g.neighbors(v) {
                if dist[u as usize] != UNREACHED_W
                    && dist[u as usize] + w as Dist == dist[v as usize]
                {
                    best = best.max(hops[u as usize]);
                }
            }
            hops[v as usize] = best + 1;
            if hops[v as usize] > hops[far as usize] {
                far = v;
            }
        }
        best_hops = best_hops.max(hops[far as usize] + 1);
        root = far;
    }
    // Double for an upper-bound flavour (see doc comment).
    (2 * best_hops).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wpath(n: u32, w: Weight) -> WeightedGraph {
        let edges: Vec<_> = (0..n - 1).map(|v| (v, v + 1, w)).collect();
        WeightedGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn construction_basics() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 5), (1, 2, 7), (2, 2, 1)]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let n0: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n0, vec![(0, 5), (2, 7)]);
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let g = WeightedGraph::from_edges(2, &[(0, 1, 9), (1, 0, 3), (0, 1, 5)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0).next(), Some((1, 3)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        WeightedGraph::from_edges(2, &[(0, 1, 0)]);
    }

    #[test]
    fn dijkstra_on_weighted_path() {
        let g = wpath(5, 3);
        let (dist, sigma, order) = dijkstra_sigma(&g, 0, None);
        assert_eq!(dist, vec![0, 3, 6, 9, 12]);
        assert!(sigma.iter().all(|&s| s == 1));
        assert_eq!(order[0], 0);
    }

    #[test]
    fn dijkstra_prefers_light_detour() {
        // 0-2 direct weight 10; 0-1-2 weights 3+3=6.
        let g = WeightedGraph::from_edges(3, &[(0, 2, 10), (0, 1, 3), (1, 2, 3)]);
        let (dist, sigma, _) = dijkstra_sigma(&g, 0, None);
        assert_eq!(dist[2], 6);
        assert_eq!(sigma[2], 1);
    }

    #[test]
    fn dijkstra_counts_ties() {
        // Two disjoint routes of equal weight 0->3: via 1 (2+2) and via 2 (1+3).
        let g = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 3)]);
        let (dist, sigma, _) = dijkstra_sigma(&g, 0, None);
        assert_eq!(dist[3], 4);
        assert_eq!(sigma[3], 2);
    }

    #[test]
    fn early_exit_settles_target() {
        let g = wpath(100, 1);
        let (dist, _, order) = dijkstra_sigma(&g, 0, Some(5));
        assert_eq!(dist[5], 5);
        assert!(order.len() <= 7, "early exit must not settle the whole path");
    }

    #[test]
    fn sampler_matches_enumeration_on_random_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..25 {
            let n = 12usize;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if rng.gen_bool(0.3) {
                        edges.push((u, v, rng.gen_range(1..4)));
                    }
                }
            }
            let g = WeightedGraph::from_edges(n, &edges);
            for (s, t) in [(0, 11), (2, 9)] {
                let all = enumerate_weighted_shortest_paths(&g, s, t);
                match sample_weighted_shortest_path(&g, s, t, &mut rng) {
                    None => assert!(all.is_empty()),
                    Some(p) => {
                        assert_eq!(p.num_paths as usize, all.len());
                        let mut key = p.interior.clone();
                        key.sort_unstable();
                        assert!(all.iter().any(|cand| {
                            let mut c = cand.clone();
                            c.sort_unstable();
                            c == key
                        }));
                    }
                }
            }
        }
    }

    #[test]
    fn sampler_uniform_on_tied_routes() {
        // Both routes weight 4, one with two hops, one with three.
        let g =
            WeightedGraph::from_edges(5, &[(0, 1, 2), (1, 4, 2), (0, 2, 1), (2, 3, 2), (3, 4, 1)]);
        let all = enumerate_weighted_shortest_paths(&g, 0, 4);
        assert_eq!(all.len(), 2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut long_route = 0u64;
        let trials = 20_000;
        for _ in 0..trials {
            let p = sample_weighted_shortest_path(&g, 0, 4, &mut rng).unwrap();
            if p.interior.len() == 2 {
                long_route += 1;
            }
        }
        let frac = long_route as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.02, "biased: {frac}");
    }

    #[test]
    fn disconnected_returns_none() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 1), (2, 3, 1)]);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_weighted_shortest_path(&g, 0, 3, &mut rng).is_none());
    }

    #[test]
    fn vertex_diameter_estimate_covers_path() {
        let g = wpath(20, 5);
        let vd = estimate_vertex_diameter(&g, 2, 0);
        assert!(vd >= 20, "path of 20 vertices needs vd >= 20, got {vd}");
    }

    #[test]
    fn unit_weights_agree_with_bfs_distances() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20usize;
        let mut wedges = Vec::new();
        let mut uedges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.gen_bool(0.2) {
                    wedges.push((u, v, 1));
                    uedges.push((u, v));
                }
            }
        }
        let wg = WeightedGraph::from_edges(n, &wedges);
        let ug = crate::csr::graph_from_edges(n, &uedges);
        let (wd, wsig, _) = dijkstra_sigma(&wg, 0, None);
        let ub = crate::bfs::sigma_bfs(&ug, 0);
        for v in 0..n {
            if ub.dist[v] == crate::scratch::UNREACHED {
                assert_eq!(wd[v], UNREACHED_W);
            } else {
                assert_eq!(wd[v], ub.dist[v] as Dist);
                assert_eq!(wsig[v], ub.sigma[v]);
            }
        }
    }
}
