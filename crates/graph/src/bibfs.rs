//! Balanced bidirectional BFS and uniform shortest-path sampling.
//!
//! KADABRA's key per-sample operation (improvement (ii) in Section III-A of
//! the paper) is: draw a random vertex pair `(s, t)`, find the s-t distance
//! `L` with a *bidirectional* BFS, and sample **one shortest s-t path
//! uniformly at random** among all shortest s-t paths. Every interior vertex
//! of the sampled path receives one count.
//!
//! The implementation expands complete BFS levels alternately from both
//! endpoints, always growing the side whose frontier has the smaller total
//! degree (fewer edges to scan). Expansion stops during the first level in
//! which a newly discovered vertex is already settled by the opposite search.
//!
//! Correctness of the stopping rule: let the expanding side be `s` with
//! completed radius `ds` and let the other side have completed radius `dt`.
//! All vertices within distance `ds` of `s` (resp. `dt` of `t`) are settled
//! with exact distances and path counts σ. If a path of length
//! `L < ds + 1 + k0` existed (where `k0` is the minimum settled `t`-distance
//! over the meeting vertices), then either `L ≤ ds` — impossible, `t` would
//! have been discovered (with settled `dist_t(t) = 0`) in an earlier level —
//! or the path's vertex at distance `ds + 1` from `s` would be a meeting
//! vertex with a smaller settled `t`-distance. Hence
//! `L = ds + 1 + k0`, and the set `C = {v : dist_s(v) = ds+1, dist_t(v) = k0}`
//! is a complete s-t cut of the shortest-path DAG, giving
//! `σ_st = Σ_{v ∈ C} σ_s(v)·σ_t(v)`.
//!
//! A uniform path is then drawn by picking a cut vertex with probability
//! proportional to `σ_s(v)·σ_t(v)` and walking back to each endpoint, at each
//! step choosing a predecessor `u` with probability `σ(u)/Σ σ`.

use crate::bfs::sigma_bfs;
use crate::csr::{Graph, NodeId};
use crate::scratch::{StampedBfsState, TraversalScratch};
use crate::view::GraphView;
use rand::Rng;

/// Outcome of one bidirectional shortest-path sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSample {
    /// Shortest s-t distance in hops.
    pub distance: u32,
    /// Interior vertices of the sampled path (excludes both endpoints).
    /// Empty when `s` and `t` are adjacent.
    pub interior: Vec<NodeId>,
    /// Total number of distinct shortest s-t paths (saturating at `u128::MAX`).
    pub num_paths: u128,
}

/// Statistics of the bidirectional search, used by performance models.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Edges scanned by both searches.
    pub edges_scanned: u64,
    /// Vertices settled by both searches.
    pub vertices_settled: u64,
}

/// Summary of a sampled path whose interior vertices were left in
/// `scratch.path` by [`sample_shortest_path_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleInfo {
    /// Shortest s-t distance in hops.
    pub distance: u32,
    /// Total number of distinct shortest s-t paths (saturating at `u128::MAX`).
    pub num_paths: u128,
}

/// How many adjacency entries ahead the scan prefetches the stamped state.
const STATE_PREFETCH_DIST: usize = 4;

/// Samples a uniformly random shortest `s`-`t` path.
///
/// Returns `None` if `t` is unreachable from `s`. `s == t` is rejected with a
/// panic because KADABRA never samples such pairs.
///
/// `scratch` must be sized for `g` ([`TraversalScratch::new`] with
/// `g.num_nodes()`); it is reset internally, so the same scratch can be
/// reused across samples without reallocation.
pub fn sample_shortest_path<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    s: NodeId,
    t: NodeId,
    scratch: &mut TraversalScratch,
    rng: &mut R,
) -> Option<PathSample> {
    sample_shortest_path_with_stats(g, s, t, scratch, rng).map(|(p, _)| p)
}

/// Like [`sample_shortest_path`] but also reports search statistics.
pub fn sample_shortest_path_with_stats<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    s: NodeId,
    t: NodeId,
    scratch: &mut TraversalScratch,
    rng: &mut R,
) -> Option<(PathSample, SearchStats)> {
    let mut stats = SearchStats::default();
    let info = sample_shortest_path_into(g, s, t, scratch, rng, &mut stats)?;
    let sample = PathSample {
        distance: info.distance,
        interior: scratch.path.clone(),
        num_paths: info.num_paths,
    };
    Some((sample, stats))
}

/// Allocation-free core of the sampler: identical semantics to
/// [`sample_shortest_path`], but the sampled interior is left in
/// `scratch.path` (cleared on `None`) instead of being cloned into a fresh
/// [`PathSample`], and search statistics are *accumulated* into `stats`.
///
/// Every buffer the search needs lives in `scratch`, so after the first few
/// samples have grown the buffers to the working-set size, a call performs no
/// heap allocation at all — the property the allocation-regression test in
/// `kadabra-core` pins down.
pub fn sample_shortest_path_into<G: GraphView, R: Rng + ?Sized>(
    g: &G,
    s: NodeId,
    t: NodeId,
    scratch: &mut TraversalScratch,
    rng: &mut R,
    stats: &mut SearchStats,
) -> Option<SampleInfo> {
    assert!(s != t, "sampling requires distinct endpoints");
    assert!((s as usize) < g.num_nodes() && (t as usize) < g.num_nodes());
    scratch.reset();
    let TraversalScratch {
        fwd,
        bwd,
        path,
        frontier_fwd,
        frontier_bwd,
        next_frontier,
        meets,
        cut,
        ..
    } = scratch;

    // Frontiers hold the vertices of the most recently completed level.
    frontier_fwd.push(s);
    frontier_bwd.push(t);
    fwd.visit(s, 0, 1);
    bwd.visit(t, 0, 1);
    stats.vertices_settled += 2;
    let mut ds = 0u32; // completed radius around s
    let mut dt = 0u32; // completed radius around t
    let mut deg_s: u64 = g.degree(s) as u64;
    let mut deg_t: u64 = g.degree(t) as u64;

    loop {
        if frontier_fwd.is_empty() || frontier_bwd.is_empty() {
            return None; // one component exhausted without meeting
        }
        // Balanced expansion: grow the cheaper side.
        let expand_fwd = deg_s <= deg_t;
        let (state, other, frontier, depth): (
            &mut StampedBfsState,
            &mut StampedBfsState,
            &mut Vec<NodeId>,
            &mut u32,
        ) = if expand_fwd {
            (&mut *fwd, &mut *bwd, &mut *frontier_fwd, &mut ds)
        } else {
            (&mut *bwd, &mut *fwd, &mut *frontier_bwd, &mut dt)
        };

        let new_depth = *depth + 1;
        next_frontier.clear();
        let mut next_deg: u64 = 0;
        for i in 0..frontier.len() {
            let u = frontier[i];
            // Pull the next frontier vertex's adjacency row while scanning
            // this one's.
            if let Some(&w) = frontier.get(i + 1) {
                g.prefetch_neighbors(w);
            }
            let su = state.sigma(u);
            let adj = g.neighbors(u);
            for (j, &v) in adj.iter().enumerate() {
                // Pull the stamped record a few probes ahead: the v's are
                // data-dependent, so the hardware prefetcher cannot help.
                if let Some(&w) = adj.get(j + STATE_PREFETCH_DIST) {
                    state.prefetch(w);
                }
                stats.edges_scanned += 1;
                if state.settle_or_merge(v, new_depth, su) {
                    stats.vertices_settled += 1;
                    next_frontier.push(v);
                    next_deg += g.degree(v) as u64;
                    if other.reached(v) {
                        meets.push((v, other.dist(v)));
                    }
                }
            }
        }
        *depth = new_depth;
        std::mem::swap(frontier, next_frontier);
        if expand_fwd {
            deg_s = next_deg;
        } else {
            deg_t = next_deg;
        }
        if !meets.is_empty() {
            // Finish: compute the true distance and the cut.
            // xtask: allow(unwrap) — guarded by !meets.is_empty() above.
            let k0 = meets.iter().map(|&(_, k)| k).min().unwrap();
            let distance = new_depth + k0;
            // The cut lives at level `new_depth` of the side just expanded.
            let (near, far) = if expand_fwd { (&*fwd, &*bwd) } else { (&*bwd, &*fwd) };
            let mut num_paths: u128 = 0;
            for &(v, k) in meets.iter() {
                if k == k0 {
                    let w = (near.sigma(v) as u128).saturating_mul(far.sigma(v) as u128);
                    num_paths = num_paths.saturating_add(w);
                    cut.push((v, w));
                }
            }
            debug_assert!(num_paths > 0);

            let (near_root, far_root) = if expand_fwd { (s, t) } else { (t, s) };
            select_and_backtrack(g, cut, num_paths, near, near_root, far, far_root, path, rng);
            debug_assert_eq!(
                // xtask: allow(determinism) — a shortest path visits each
                // vertex at most once, so its length fits the u32 the CSR
                // layout guarantees for vertex counts.
                path.len() as u32 + 1,
                distance,
                "interior vertex count must be distance - 1"
            );
            return Some(SampleInfo { distance, num_paths });
        }
    }
}

/// σ/distance view of one completed search direction. Implemented by the
/// scalar per-direction [`StampedBfsState`] and by one lane of the batched
/// kernel's lane-strided arena ([`crate::bibfs_batch`]), so both kernels
/// drive the **same** selection/backtrack code — which is what makes the
/// batched kernel's path choices bit-identical to the scalar kernel's for an
/// identical RNG stream.
pub trait SigmaDistView {
    /// Distance of `v` from this direction's root, or [`crate::scratch::UNREACHED`].
    fn view_dist(&self, v: NodeId) -> u32;
    /// σ(v): shortest-path count from this direction's root.
    fn view_sigma(&self, v: NodeId) -> u64;
    /// Whether `v` was settled by this direction.
    fn view_reached(&self, v: NodeId) -> bool;
    /// Single-probe record read: `Some((dist, σ))` if settled, else `None`.
    /// Implementors back this with one slot load — the backtrack walk probes
    /// every neighbor of every path vertex, so the probe count dominates its
    /// cost.
    #[inline]
    fn view_record(&self, v: NodeId) -> Option<(u32, u64)> {
        if self.view_reached(v) {
            Some((self.view_dist(v), self.view_sigma(v)))
        } else {
            None
        }
    }
    /// Hints the CPU to pull `v`'s record toward cache ahead of a probe.
    #[inline]
    fn view_prefetch(&self, v: NodeId) {
        let _ = v;
    }
}

impl SigmaDistView for StampedBfsState {
    #[inline]
    fn view_dist(&self, v: NodeId) -> u32 {
        self.dist(v)
    }
    #[inline]
    fn view_sigma(&self, v: NodeId) -> u64 {
        self.sigma(v)
    }
    #[inline]
    fn view_reached(&self, v: NodeId) -> bool {
        self.reached(v)
    }
    #[inline]
    fn view_record(&self, v: NodeId) -> Option<(u32, u64)> {
        self.record(v)
    }
    #[inline]
    fn view_prefetch(&self, v: NodeId) {
        self.prefetch(v);
    }
}

/// Shared tail of both kernels: draws one cut vertex ∝ σ_near·σ_far and
/// walks back to both roots, leaving the interior in `path`.
///
/// The cut is first sorted by vertex id. The level sets of a BFS are
/// order-independent, but the *discovery order* within the final level is
/// not — the scalar kernel visits the frontier in insertion order while the
/// batched kernel scans a compacted active list — so the cut is put into a
/// canonical order before any RNG is consumed. Selection then depends only
/// on the level sets and the RNG stream, never on traversal schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn select_and_backtrack<
    G: GraphView,
    R: Rng + ?Sized,
    N: SigmaDistView,
    F: SigmaDistView,
>(
    g: &G,
    cut: &mut Vec<(NodeId, u128)>,
    num_paths: u128,
    near: &N,
    near_root: NodeId,
    far: &F,
    far_root: NodeId,
    path: &mut Vec<NodeId>,
    rng: &mut R,
) {
    // Canonical cut order (each vertex settles at most once per direction and
    // level, so ids are distinct and the sort is a total order).
    cut.sort_unstable_by_key(|&(v, _)| v);

    // Sample a cut vertex proportionally to σ_near · σ_far.
    let mut pick = rng.gen_range(0..num_paths);
    let mut chosen = cut[0].0;
    for &(v, w) in cut.iter() {
        if pick < w {
            chosen = v;
            break;
        }
        pick -= w;
    }

    // Walk back towards both endpoints, σ-proportionally. The cut buffer is
    // dead once a vertex is drawn, so the walks reuse it as predecessor
    // scratch — no extra allocation, no extra plumbing.
    path.clear();
    backtrack(g, near, chosen, near_root, path, cut, rng);
    if chosen != far_root {
        path.push(chosen);
    }
    backtrack(g, far, chosen, far_root, path, cut, rng);
}

/// Sliding prefetch distance for the backtrack predecessor scan: the
/// neighbor records are data-dependent random probes, so pull them toward
/// cache a few entries ahead.
const BACKTRACK_PREFETCH_DIST: usize = 6;

/// Walks from `from` (exclusive) towards `root` (exclusive), pushing interior
/// vertices onto `out`. At a vertex of distance `d` the predecessor `u`
/// (distance `d - 1`) is chosen with probability `σ(u) / Σ σ`, which makes
/// the complete walk a uniform draw among the σ(from) shortest root→from
/// paths.
///
/// `preds` is caller scratch (clobbered): each step scans the neighbor
/// records **once**, caching the qualifying predecessors with their σ, then
/// draws from the cache — the record probes are random accesses into a
/// state arena that may be cache-cold, so not re-scanning for the draw
/// halves the expensive loads. The drawn predecessor — and the RNG stream —
/// are exactly those of a scan-twice implementation.
pub(crate) fn backtrack<G: GraphView, R: Rng + ?Sized, V: SigmaDistView>(
    g: &G,
    state: &V,
    from: NodeId,
    root: NodeId,
    out: &mut Vec<NodeId>,
    preds: &mut Vec<(NodeId, u128)>,
    rng: &mut R,
) {
    let mut cur = from;
    let mut d = state.view_dist(cur);
    while d > 1 {
        let adj = g.neighbors(cur);
        for &u in adj.iter().take(BACKTRACK_PREFETCH_DIST) {
            state.view_prefetch(u);
        }
        // Total σ over predecessors equals σ(cur) by construction, except for
        // cut vertices whose σ may also have received contributions from
        // same-level edges; recompute the predecessor total to stay exact.
        preds.clear();
        let mut total: u64 = 0;
        for (j, &u) in adj.iter().enumerate() {
            if let Some(&nu) = adj.get(j + BACKTRACK_PREFETCH_DIST) {
                state.view_prefetch(nu);
            }
            if let Some((du, su)) = state.view_record(u) {
                if du == d - 1 {
                    total += su;
                    preds.push((u, su as u128));
                }
            }
        }
        debug_assert!(total > 0);
        let mut pick = rng.gen_range(0..total);
        let mut nxt = cur;
        for &(u, su) in preds.iter() {
            let su = su as u64;
            if pick < su {
                nxt = u;
                break;
            }
            pick -= su;
        }
        debug_assert_ne!(nxt, cur);
        g.prefetch_neighbors(nxt);
        out.push(nxt);
        cur = nxt;
        d -= 1;
    }
    debug_assert!(d == 0 || g.has_edge(cur, root) || cur == root);
    let _ = root;
}

/// Exhaustively enumerates **all** shortest `s`-`t` paths. Exponential in the
/// worst case — intended as a test oracle on small graphs only.
///
/// Each returned path lists interior vertices in s→t order.
pub fn enumerate_shortest_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert!(s != t);
    let res = sigma_bfs(g, s);
    if res.dist[t as usize] == crate::scratch::UNREACHED {
        return Vec::new();
    }
    // DFS backwards from t over the shortest-path DAG.
    let mut paths = Vec::new();
    let mut stack = vec![t];
    fn rec(
        g: &Graph,
        dist: &[u32],
        s: NodeId,
        cur: NodeId,
        stack: &mut Vec<NodeId>,
        paths: &mut Vec<Vec<NodeId>>,
    ) {
        if cur == s {
            // stack holds t..=s reversed; interior = everything but ends.
            let mut interior: Vec<NodeId> = stack[1..stack.len() - 1].to_vec();
            interior.reverse();
            paths.push(interior);
            return;
        }
        let d = dist[cur as usize];
        for &u in g.neighbors(cur) {
            if dist[u as usize] + 1 == d {
                stack.push(u);
                rec(g, dist, s, u, stack, paths);
                stack.pop();
            }
        }
    }
    rec(g, &res.dist, s, t, &mut stack, &mut paths);
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::graph_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scratch_for(g: &Graph) -> TraversalScratch {
        TraversalScratch::new(g.num_nodes())
    }

    #[test]
    fn adjacent_pair_has_empty_interior() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(1);
        let p = sample_shortest_path(&g, 0, 1, &mut sc, &mut rng).unwrap();
        assert_eq!(p.distance, 1);
        assert!(p.interior.is_empty());
        assert_eq!(p.num_paths, 1);
    }

    #[test]
    fn path_graph_interior_is_whole_middle() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let p = sample_shortest_path(&g, 0, 4, &mut sc, &mut rng).unwrap();
        assert_eq!(p.distance, 4);
        assert_eq!(p.num_paths, 1);
        let mut interior = p.interior.clone();
        interior.sort_unstable();
        assert_eq!(interior, vec![1, 2, 3]);
    }

    #[test]
    fn disconnected_pair_returns_none() {
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sample_shortest_path(&g, 0, 3, &mut sc, &mut rng).is_none());
    }

    #[test]
    fn four_cycle_counts_two_paths() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(4);
        let p = sample_shortest_path(&g, 0, 2, &mut sc, &mut rng).unwrap();
        assert_eq!(p.distance, 2);
        assert_eq!(p.num_paths, 2);
        assert_eq!(p.interior.len(), 1);
        assert!(p.interior[0] == 1 || p.interior[0] == 3);
    }

    #[test]
    fn distance_matches_unidirectional_bfs_on_random_graphs() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..30 {
            let n = 20 + trial % 10;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if rng.gen_bool(0.12) {
                        edges.push((u, v));
                    }
                }
            }
            let g = graph_from_edges(n, &edges);
            let mut sc = scratch_for(&g);
            for _ in 0..20 {
                let s = rng.gen_range(0..n as NodeId);
                let t = rng.gen_range(0..n as NodeId);
                if s == t {
                    continue;
                }
                let expect = crate::bfs::hop_distance(&g, s, t);
                let got = sample_shortest_path(&g, s, t, &mut sc, &mut rng);
                match (expect, &got) {
                    (None, None) => {}
                    (Some(d), Some(p)) => assert_eq!(d, p.distance, "s={s} t={t}"),
                    _ => panic!("reachability mismatch for s={s} t={t}: {expect:?} vs {got:?}"),
                }
            }
        }
    }

    #[test]
    fn num_paths_matches_enumeration_on_random_graphs() {
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..40 {
            let n = 12;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if rng.gen_bool(0.25) {
                        edges.push((u, v));
                    }
                }
            }
            let g = graph_from_edges(n, &edges);
            let mut sc = scratch_for(&g);
            for s in 0..3 {
                for t in 6..9 {
                    let all = enumerate_shortest_paths(&g, s, t);
                    let got = sample_shortest_path(&g, s, t, &mut sc, &mut rng);
                    if all.is_empty() {
                        assert!(got.is_none());
                    } else {
                        let p = got.unwrap();
                        assert_eq!(p.num_paths as usize, all.len(), "s={s} t={t}");
                        assert!(all.iter().any(|cand| {
                            let mut a = cand.clone();
                            let mut b = p.interior.clone();
                            a.sort_unstable();
                            b.sort_unstable();
                            a == b
                        }));
                    }
                }
            }
        }
    }

    #[test]
    fn sampled_interior_is_a_real_shortest_path() {
        // Verify connectivity of the sampled interior explicitly.
        use rand::Rng as _;
        let mut rng = StdRng::seed_from_u64(7);
        let mut edges = Vec::new();
        let n = 30;
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.gen_bool(0.1) {
                    edges.push((u, v));
                }
            }
        }
        let g = graph_from_edges(n, &edges);
        let mut sc = scratch_for(&g);
        for _ in 0..100 {
            let s = rng.gen_range(0..n as NodeId);
            let t = rng.gen_range(0..n as NodeId);
            if s == t {
                continue;
            }
            if let Some(p) = sample_shortest_path(&g, s, t, &mut sc, &mut rng) {
                // The interior, ordered by distance from s, must form a chain
                // s - i1 - i2 - ... - t.
                let dist_s = crate::bfs::bfs(&g, s).dist;
                let mut chain = p.interior.clone();
                chain.sort_unstable_by_key(|&v| dist_s[v as usize]);
                let mut prev = s;
                for (i, &v) in chain.iter().enumerate() {
                    assert_eq!(dist_s[v as usize], i as u32 + 1);
                    assert!(g.has_edge(prev, v), "chain break {prev}-{v}");
                    prev = v;
                }
                assert!(g.has_edge(prev, t));
            }
        }
    }

    #[test]
    fn path_sampling_is_uniform_chi_square() {
        // Graph with exactly 6 shortest 0→5 paths of length 3:
        // 0 -> {1,2} -> {3,4} crossing completely -> 5 gives 2*2=4 paths; add
        // a third middle layer vertex to reach 6.
        let g = graph_from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (1, 4),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                // extra decoys
                (0, 6),
                (6, 7),
            ],
        );
        let all = enumerate_shortest_paths(&g, 0, 5);
        assert_eq!(all.len(), 4);
        let mut counts = vec![0u64; all.len()];
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let trials = 40_000;
        for _ in 0..trials {
            let p = sample_shortest_path(&g, 0, 5, &mut sc, &mut rng).unwrap();
            let mut b = p.interior.clone();
            b.sort_unstable();
            let idx = all
                .iter()
                .position(|cand| {
                    let mut a = cand.clone();
                    a.sort_unstable();
                    a == b
                })
                .expect("sampled path must be a shortest path");
            counts[idx] += 1;
        }
        // χ² with 3 dof; 99.9% critical value ≈ 16.27. Allow generous slack.
        let expected = trials as f64 / all.len() as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 25.0, "χ² too large: {chi2}, counts {counts:?}");
    }

    #[test]
    fn uniformity_with_asymmetric_path_counts() {
        // Diamond chain where one branch splits further: paths 0→4 are
        // 0-1-3-4, 0-2-3-4 plus 0-5-6-4 (disjoint route), all length 3.
        let g =
            graph_from_edges(7, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (0, 5), (5, 6), (6, 4)]);
        let all = enumerate_shortest_paths(&g, 0, 4);
        assert_eq!(all.len(), 3);
        let mut counts = vec![0u64; 3];
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 30_000;
        for _ in 0..trials {
            let p = sample_shortest_path(&g, 0, 4, &mut sc, &mut rng).unwrap();
            let mut b = p.interior.clone();
            b.sort_unstable();
            let idx = all
                .iter()
                .position(|cand| {
                    let mut a = cand.clone();
                    a.sort_unstable();
                    a == b
                })
                .unwrap();
            counts[idx] += 1;
        }
        let expected = trials as f64 / 3.0;
        for &c in &counts {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "non-uniform counts: {counts:?}");
        }
    }

    #[test]
    fn stats_report_work() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(10);
        let (_, st) = sample_shortest_path_with_stats(&g, 0, 4, &mut sc, &mut rng).unwrap();
        assert!(st.edges_scanned > 0);
        assert!(st.vertices_settled >= 2);
    }

    #[test]
    #[should_panic(expected = "distinct endpoints")]
    fn equal_endpoints_panic() {
        let g = graph_from_edges(2, &[(0, 1)]);
        let mut sc = scratch_for(&g);
        let mut rng = StdRng::seed_from_u64(11);
        let _ = sample_shortest_path(&g, 1, 1, &mut sc, &mut rng);
    }

    #[test]
    fn enumerate_on_cycle() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let paths = enumerate_shortest_paths(&g, 0, 3);
        assert_eq!(paths.len(), 2);
    }
}
