//! End-to-end checks of the incremental engine: the maintained estimate
//! tracks a from-scratch oracle across update batches, τ is conserved by
//! the re-sampling transaction, and the whole trajectory is bit-
//! reproducible per `(graph, updates, config, seed)`.

use kadabra_baselines::brandes;
use kadabra_core::phases::{calibration_samples_for_thread, diameter_phase, scores_from_counts};
use kadabra_core::sampler::ThreadSampler;
use kadabra_core::{bounds, Calibration, KadabraConfig};
use kadabra_dynamic::{DynamicEngine, UpdateBatch, UpdateError};
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::generators::{grid, GridConfig};
use kadabra_graph::{Graph, GraphView, NodeId};
use kadabra_mpisim::FaultPlan;
use kadabra_telemetry::Telemetry;

const RANKS: usize = 2;
const THREADS: usize = 2;

fn setup(seed: u64, epsilon: f64) -> (Graph, KadabraConfig, u64, u32, Calibration) {
    let g = grid(GridConfig { rows: 5, cols: 5, diagonal_prob: 0.0, seed: 7 });
    let kcfg = KadabraConfig { epsilon, delta: 0.1, seed, ..Default::default() };
    kcfg.validate();
    let (vd, _) = diameter_phase(&g, &kcfg);
    let omega = bounds::omega(kcfg.c, kcfg.epsilon, kcfg.delta, vd);
    let n = g.num_nodes();
    let total_threads = RANKS * THREADS;
    let mut total = vec![0u64; n + 1];
    for r in 0..RANKS {
        for t in 0..THREADS {
            let mut sampler = ThreadSampler::new(n, seed, r, t);
            let mut counts = vec![0u64; n + 1];
            let taken = calibration_samples_for_thread(
                &g,
                &mut sampler,
                &mut counts[..n],
                &kcfg,
                omega,
                total_threads,
            );
            counts[n] = taken;
            for (a, &x) in total.iter_mut().zip(&counts) {
                *a += x;
            }
        }
    }
    let calibration = Calibration::from_counts(&total[..n], total[n], &kcfg);
    (g, kcfg, omega, vd, calibration)
}

fn engine_for(g: &Graph, kcfg: &KadabraConfig, omega: u64, vd: u32) -> DynamicEngine {
    DynamicEngine::new(g.clone(), *kcfg, omega, vd, RANKS, THREADS, 4, FaultPlan::ideal(kcfg.seed))
}

/// The batch under test: two grid edges deleted, two chords inserted.
fn test_batch(view_edges: &[(NodeId, NodeId)]) -> UpdateBatch {
    let deletes = vec![view_edges[0], view_edges[view_edges.len() / 2]];
    UpdateBatch::new(vec![(0, 24), (3, 17)], deletes).expect("valid batch")
}

fn mutated_oracle(engine: &DynamicEngine) -> Vec<f64> {
    let mut edges = Vec::new();
    engine.view().for_each_edge(|u, v| edges.push((u, v)));
    brandes(&graph_from_edges(engine.view().num_nodes(), &edges))
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn maintained_estimate_tracks_the_oracle_across_a_batch() {
    let (g, kcfg, omega, vd, calibration) = setup(42, 0.2);
    let tel = Telemetry::stats_only();
    let mut engine = engine_for(&g, &kcfg, omega, vd);

    let report = engine.refine_until(kcfg.epsilon, 64, &calibration, &tel);
    assert!(
        report.achieved <= kcfg.epsilon || report.tau >= engine.omega(),
        "refinement must reach ε or the cap: achieved {} at τ {}",
        report.achieved,
        report.tau
    );
    let scores = scores_from_counts(&report.global[..g.num_nodes()], report.tau);
    let diff = max_abs_diff(&scores, &brandes(&g));
    assert!(diff <= kcfg.epsilon, "pre-update estimate off by {diff}");

    let tau_before = engine.last_tau();
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
    let batch = test_batch(&edges);
    let up = engine.apply_update(&batch, &calibration, &tel).expect("batch applies");
    assert_eq!(up.tau, tau_before, "crash-free re-sampling must conserve τ");
    assert_eq!(up.invalidated + up.retained, tau_before, "every sample classified");
    assert!(up.invalidated > 0, "this batch provably crosses sampled paths");
    assert!(up.retained > 0, "a 4-edge batch must not invalidate everything");
    assert_eq!(up.seq, 1);

    // Re-converge the (possibly looser) post-update frame, then compare
    // against a from-scratch oracle on the mutated graph.
    let report = engine.refine_until(kcfg.epsilon, 64, &calibration, &tel);
    let scores = scores_from_counts(&report.global[..g.num_nodes()], report.tau);
    let diff = max_abs_diff(&scores, &mutated_oracle(&engine));
    assert!(diff <= kcfg.epsilon, "post-update estimate off by {diff}");
}

#[test]
fn the_trajectory_is_bit_reproducible() {
    let (g, kcfg, omega, vd, calibration) = setup(99, 0.25);
    let tel = Telemetry::stats_only();
    let edges: Vec<(NodeId, NodeId)> = g.edges().collect();

    let run = |engine: &mut DynamicEngine| {
        let r1 = engine.refine_until(kcfg.epsilon, 64, &calibration, &tel);
        let up =
            engine.apply_update(&test_batch(&edges), &calibration, &tel).expect("batch applies");
        let r2 = engine.refine_until(kcfg.epsilon, 64, &calibration, &tel);
        (r1.global, up.global, up.invalidated, r2.global, r2.tau)
    };

    let mut a = engine_for(&g, &kcfg, omega, vd);
    let mut b = engine_for(&g, &kcfg, omega, vd);
    let ra = run(&mut a);
    let rb = run(&mut b);
    assert_eq!(ra.0, rb.0, "pre-update frames diverged");
    assert_eq!(ra.1, rb.1, "post-update frames diverged");
    assert_eq!(ra.2, rb.2, "invalidation counts diverged");
    assert_eq!(ra.3, rb.3, "re-converged frames diverged");
    assert_eq!(ra.4, rb.4);
    assert_eq!(a.work_edges(), b.work_edges(), "work accounting diverged");
}

#[test]
fn rejected_batches_change_nothing() {
    let (g, kcfg, omega, vd, calibration) = setup(7, 0.3);
    let tel = Telemetry::stats_only();
    let mut engine = engine_for(&g, &kcfg, omega, vd);
    engine.refine(&calibration, &tel);
    let frame_before = engine.last_global().to_vec();
    let work_before = engine.work_edges();

    let bad = UpdateBatch::new(vec![(0, 1)], vec![]).expect("structurally valid");
    assert_eq!(
        engine.apply_update(&bad, &calibration, &tel),
        Err(UpdateError::InsertExisting { u: 0, v: 1 })
    );
    assert_eq!(engine.log().seq(), 0);
    assert_eq!(engine.last_global(), frame_before.as_slice());
    assert_eq!(engine.work_edges(), work_before);
    assert!(engine.view().has_edge(0, 1));
}

#[test]
fn omega_ratchets_up_when_a_batch_stretches_the_graph() {
    // Deleting a rung of the grid can lengthen shortest paths; ω must
    // never shrink, and must grow if the vd bound does.
    let (g, kcfg, omega, vd, calibration) = setup(5, 0.3);
    let tel = Telemetry::stats_only();
    let mut engine = engine_for(&g, &kcfg, omega, vd);
    engine.refine(&calibration, &tel);
    let omega_before = engine.omega();
    let batch = UpdateBatch::new(vec![], vec![(0, 1)]).expect("valid");
    engine.apply_update(&batch, &calibration, &tel).expect("applies");
    assert!(engine.omega() >= omega_before, "ω must be monotone");
    assert!(engine.vertex_diameter() >= vd);
}
