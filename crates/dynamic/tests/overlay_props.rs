//! Property tests for the streaming-update substrate (DESIGN.md §14):
//!
//! * **Overlay ≡ rebuilt CSR** — after any valid batch sequence, the
//!   [`DynamicGraph`] overlay is traversal-isomorphic to a CSR built from
//!   scratch on the mutated edge set: identical adjacency, and the
//!   bidirectional sampler run with the same RNG stream returns identical
//!   distances, path counts, and interiors on both.
//! * **Compaction round-trips** — folding the overlay into a fresh CSR
//!   changes nothing observable: same adjacency before/after, and the
//!   rebuilt base equals the from-scratch CSR row for row (labeling
//!   preserved).

use kadabra_dynamic::{DeltaLog, UpdateBatch};
use kadabra_graph::bibfs::{sample_shortest_path_into, SearchStats};
use kadabra_graph::csr::graph_from_edges;
use kadabra_graph::scratch::TraversalScratch;
use kadabra_graph::{GraphView, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

type EdgeList = Vec<(NodeId, NodeId)>;

/// Strategy: a base edge list over `n` vertices plus a sequence of raw
/// "toggle" batches (an edge present in the current view is deleted, an
/// absent one inserted — so every derived batch is valid by construction).
fn arb_instance() -> impl Strategy<Value = (usize, EdgeList, Vec<EdgeList>)> {
    (3..20usize).prop_flat_map(|n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        (
            proptest::collection::vec(edge.clone(), 0..40),
            proptest::collection::vec(proptest::collection::vec(edge, 1..8), 1..5),
        )
            .prop_map(move |(base, batches)| (n, base, batches))
    })
}

/// Applies the raw toggle batches through the log, mirroring the edge set
/// in `edges`. Returns the number of batches actually appended.
fn apply_toggles(
    log: &mut DeltaLog,
    edges: &mut BTreeSet<(NodeId, NodeId)>,
    raw_batches: &[Vec<(NodeId, NodeId)>],
) -> usize {
    let mut applied = 0;
    for raw in raw_batches {
        let mut seen = BTreeSet::new();
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for &(a, b) in raw {
            if a == b {
                continue;
            }
            let e = (a.min(b), a.max(b));
            if !seen.insert(e) {
                continue;
            }
            if edges.remove(&e) {
                deletes.push(e);
            } else {
                edges.insert(e);
                inserts.push(e);
            }
        }
        if inserts.is_empty() && deletes.is_empty() {
            continue;
        }
        let batch = UpdateBatch::new(inserts, deletes).expect("toggles are structurally valid");
        log.append(&batch).expect("toggles are valid against the view");
        applied += 1;
    }
    applied
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overlay traversal is isomorphic to a from-scratch CSR on the
    /// mutated edge set: same adjacency, and the sampler — driven by the
    /// same RNG stream — returns bit-identical `(distance, σ, interior)`.
    #[test]
    fn overlay_is_traversal_isomorphic_to_rebuilt_csr(
        (n, base, raw_batches) in arb_instance(),
        seed in 0u64..1000,
    ) {
        let g = graph_from_edges(n, &base);
        let mut edges: BTreeSet<(NodeId, NodeId)> = g.edges().collect();
        let mut log = DeltaLog::new(g);
        apply_toggles(&mut log, &mut edges, &raw_batches);

        let edge_list: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
        let rebuilt = graph_from_edges(n, &edge_list);
        let view = log.view();
        prop_assert_eq!(view.num_edges(), rebuilt.num_edges());
        for v in 0..n as NodeId {
            prop_assert_eq!(view.neighbors(v), rebuilt.neighbors(v), "row {} diverged", v);
            prop_assert_eq!(view.degree(v), rebuilt.degree(v));
        }

        // Same RNG stream over both representations: bit-identical draws.
        let mut sc_a = TraversalScratch::new(n);
        let mut sc_b = TraversalScratch::new(n);
        let mut stats = SearchStats::default();
        for pair_idx in 0..8u64 {
            let s = ((seed + pair_idx) % n as u64) as NodeId;
            let t = ((seed + 3 * pair_idx + 1) % n as u64) as NodeId;
            if s == t {
                continue;
            }
            let mut rng_a = StdRng::seed_from_u64(seed ^ pair_idx);
            let mut rng_b = StdRng::seed_from_u64(seed ^ pair_idx);
            let a = sample_shortest_path_into(view, s, t, &mut sc_a, &mut rng_a, &mut stats);
            let b = sample_shortest_path_into(&rebuilt, s, t, &mut sc_b, &mut rng_b, &mut stats);
            match (a, b) {
                (None, None) => {}
                (Some(ia), Some(ib)) => {
                    prop_assert_eq!(ia.distance, ib.distance);
                    prop_assert_eq!(ia.num_paths, ib.num_paths);
                    prop_assert_eq!(&sc_a.path, &sc_b.path, "sampled interiors diverged");
                }
                (a, b) => prop_assert!(false, "connectivity diverged: {:?} vs {:?}",
                    a.map(|i| i.distance), b.map(|i| i.distance)),
            }
        }
    }

    /// Compaction is invisible: the view's adjacency is unchanged, the
    /// overlay empties, and the rebuilt base CSR equals the from-scratch
    /// CSR row for row (same labeling, same offsets-order).
    #[test]
    fn compaction_round_trips_to_the_from_scratch_csr(
        (n, base, raw_batches) in arb_instance(),
    ) {
        let g = graph_from_edges(n, &base);
        let mut edges: BTreeSet<(NodeId, NodeId)> = g.edges().collect();
        let mut log = DeltaLog::new(g);
        apply_toggles(&mut log, &mut edges, &raw_batches);
        let seq_before = log.seq();

        let before: Vec<Vec<NodeId>> =
            (0..n as NodeId).map(|v| log.view().neighbors(v).to_vec()).collect();
        log.compact_now();

        prop_assert_eq!(log.view().touched_vertices(), 0);
        prop_assert_eq!(log.seq(), seq_before, "compaction must not consume a sequence number");
        let edge_list: Vec<(NodeId, NodeId)> = edges.iter().copied().collect();
        let expect = graph_from_edges(n, &edge_list);
        for v in 0..n as NodeId {
            prop_assert_eq!(log.view().neighbors(v), before[v as usize].as_slice());
            prop_assert_eq!(log.view().base().neighbors(v), expect.neighbors(v));
        }
        prop_assert_eq!(log.view().base().num_edges(), expect.num_edges());

        // A second compaction (through the recycled arena) is idempotent.
        log.compact_now();
        for v in 0..n as NodeId {
            prop_assert_eq!(log.view().neighbors(v), expect.neighbors(v));
        }
    }
}
