//! The incremental sampling engine: a resident pool of per-rank,
//! per-thread samplers whose retained sample population is *maintained*
//! across streaming edge updates instead of being redrawn from scratch.
//!
//! Refinement rounds mirror the server's resident engine (Algorithm 1
//! epochs inside one [`Universe`] run, fixed epoch budget per round, crash
//! recovery via ledger shrink-and-rebuild), with two differences: every
//! confirmed sample is also *recorded* — `(s, t, L)` plus its interior in a
//! per-thread [`PathStore`] — and sampling traverses the [`DeltaLog`]'s
//! overlay view, so no CSR rebuild sits between a batch and the next epoch.
//!
//! An update batch ([`DynamicEngine::apply_update`]) runs the §14 pipeline:
//!
//! 1. **Sweep (old view)** — BFS distance tables from the deletion
//!    endpoints, before the batch applies.
//! 2. **Append** — the batch enters the [`DeltaLog`]; the overlay now
//!    serves the new graph.
//! 3. **Sweep (new view)** — tables from the insertion endpoints.
//! 4. **Classify + re-sample** — inside one [`Universe`] run, every rank
//!    classifies each retained record against the tables
//!    ([`classify_samples`]), then redraws exactly the invalidated ones on
//!    the new view through `kadabra_core::resample_invalidated`, which
//!    retracts the stale interior mass and confirms the redrawn mass in one
//!    τ-conserving ledger transaction. Redraws come from dedicated
//!    per-`(seed, batch, rank, thread)` streams, so the maintained estimate
//!    stays a pure deterministic function of
//!    `(graph, update sequence, config, seed)`.
//!
//! # Fault-plan policy
//!
//! [`FaultPlan::reseeded`] keeps the crash schedule only at round 0, so the
//! engine routes salts deliberately: refinement rounds use odd salts ≥ 1
//! and later batches even salts ≥ 2 (both crash-free), while the **first**
//! update batch runs under the base plan verbatim — a plan-scheduled crash
//! therefore fires *mid-update-batch*, the hardest point for the recovery
//! protocol (exercised by `tests/dynamic_chaos.rs`).

use kadabra_core::calibration::Calibration;
use kadabra_core::sampler::{mix_seed, ThreadSampler, ADS_STREAM_OFFSET};
use kadabra_core::{
    achieved_epsilon, resample_invalidated, KadabraConfig, ResampleScratch, SampleLedger,
    ValidityBitmap,
};
use kadabra_graph::bibfs::sample_shortest_path_into;
use kadabra_graph::scratch::UNREACHED;
use kadabra_graph::{Graph, NodeId};
use kadabra_mpisim::{CommError, Communicator, FaultPlan, Universe};
use kadabra_telemetry::{CounterId, SpanId, Telemetry};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::invalidate::{classify_samples, vertex_diameter_bound, PathStore, SweepScratch};
use crate::log::{DeltaLog, UpdateBatch, UpdateError};
use crate::overlay::DynamicGraph;

/// Salt folded into redraw streams so they can never collide with the
/// adaptive streams (`ADS_STREAM_OFFSET` space) or the calibration streams.
const REDRAW_STREAM_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// One sampling thread of one rank: its adaptive stream plus the retained
/// samples it has confirmed.
struct DynThread {
    sampler: ThreadSampler,
    store: PathStore,
}

/// Per-rank resident state, parked in its slot between runs.
struct DynRankState {
    threads: Vec<DynThread>,
    /// Confirmed frames — recovery and checkpoint source of truth. The
    /// thread stores mirror exactly this ledger's mass (rollback on failed
    /// reductions keeps them in lockstep).
    ledger: SampleLedger,
    /// Samples drawn but not yet globally confirmed (one frame per rank,
    /// shared by its threads).
    s_loc: Vec<u64>,
    bitmap: ValidityBitmap,
    rescratch: ResampleScratch,
}

struct DynSlot {
    /// Original pool index — stable across shrinks; telemetry rank and
    /// sampler stream id.
    id: usize,
    state: Mutex<Option<DynRankState>>,
}

/// What one refinement round produced (shape mirrors the server engine's
/// `RoundReport`).
#[derive(Debug, Clone, PartialEq)]
pub struct DynRoundReport {
    /// Σ survivor ledgers: per-vertex counts plus τ in the last slot.
    pub global: Vec<u64>,
    /// Total confirmed samples.
    pub tau: u64,
    /// Accuracy the frame supports under the calibrated δ budgets.
    pub achieved: f64,
    /// Ranks still alive.
    pub live: usize,
    /// Refinement rounds completed (across the engine's lifetime).
    pub round: u64,
}

/// What one applied update batch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateReport {
    /// Sequence number the batch was assigned by the [`DeltaLog`].
    pub seq: u64,
    /// Σ survivor ledgers after classification and re-sampling.
    pub global: Vec<u64>,
    /// Total confirmed samples (unchanged by the update unless a rank died
    /// mid-batch, which drops its mass).
    pub tau: u64,
    /// Accuracy the maintained frame supports on the *new* graph.
    pub achieved: f64,
    /// Retained samples that had to be redrawn.
    pub invalidated: u64,
    /// Retained samples kept as-is (provably valid).
    pub retained: u64,
    /// Ranks still alive.
    pub live: usize,
    /// Whether the log compacted after this batch.
    pub compacted: bool,
}

/// The resident incremental engine for one dynamic tenant.
pub struct DynamicEngine {
    n: usize,
    threads: usize,
    kcfg: KadabraConfig,
    omega: u64,
    vd: u32,
    max_epochs_per_round: u32,
    base_plan: FaultPlan,
    log: DeltaLog,
    slots: Vec<DynSlot>,
    refine_runs: u64,
    batches: u64,
    last_global: Vec<u64>,
    last_tau: u64,
    last_achieved: f64,
    sweep: SweepScratch,
    vd_dist: Vec<u32>,
    vd_queue: Vec<NodeId>,
    /// Cumulative classification/diagnostic BFS edges (engine-level, not
    /// tied to any rank's sampler).
    sweep_edges: u64,
}

impl DynamicEngine {
    /// A fresh incremental pool of `ranks × threads` sampler streams over
    /// `base`. `omega`/`vd` come from the caller's diameter phase on the
    /// base graph (the engine re-bounds them itself after every batch).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        base: Graph,
        kcfg: KadabraConfig,
        omega: u64,
        vd: u32,
        ranks: usize,
        threads: usize,
        max_epochs_per_round: u32,
        base_plan: FaultPlan,
    ) -> Self {
        assert!(ranks >= 1, "a pool needs at least one sampler rank");
        assert!(threads >= 1, "a rank needs at least one sampling thread");
        assert!(max_epochs_per_round >= 1, "a round must run at least one epoch");
        let n = base.num_nodes();
        let slots = (0..ranks)
            .map(|id| DynSlot {
                id,
                state: Mutex::new(Some(DynRankState {
                    threads: (0..threads)
                        .map(|t| DynThread {
                            sampler: ThreadSampler::with_kernel(
                                n,
                                kcfg.seed,
                                id,
                                ADS_STREAM_OFFSET + t,
                                kcfg.kernel,
                            ),
                            store: PathStore::new(n),
                        })
                        .collect(),
                    ledger: SampleLedger::new(n),
                    s_loc: vec![0u64; n + 1],
                    bitmap: ValidityBitmap::all_valid(0),
                    rescratch: ResampleScratch::new(n),
                })),
            })
            .collect();
        DynamicEngine {
            n,
            threads,
            kcfg,
            omega,
            vd,
            max_epochs_per_round,
            base_plan,
            log: DeltaLog::new(base),
            slots,
            refine_runs: 0,
            batches: 0,
            last_global: vec![0u64; n + 1],
            last_tau: 0,
            last_achieved: 1.0,
            sweep: SweepScratch::new(),
            vd_dist: Vec::new(),
            vd_queue: Vec::new(),
            sweep_edges: 0,
        }
    }

    /// The current graph view (base CSR ± applied deltas).
    pub fn view(&self) -> &DynamicGraph {
        self.log.view()
    }

    /// The delta log (sequence, history, compaction stats).
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Ranks still alive in the pool.
    pub fn live(&self) -> usize {
        self.slots.len()
    }

    /// Update batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Refinement rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.refine_runs
    }

    /// The sample cap ω currently in force.
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// The vertex-diameter bound currently in force.
    pub fn vertex_diameter(&self) -> u32 {
        self.vd
    }

    /// Accuracy reported by the last completed run (1.0 before any).
    pub fn last_achieved(&self) -> f64 {
        self.last_achieved
    }

    /// Confirmed samples after the last completed run.
    pub fn last_tau(&self) -> u64 {
        self.last_tau
    }

    /// The maintained global frame (per-vertex counts + τ).
    pub fn last_global(&self) -> &[u64] {
        &self.last_global
    }

    /// Total traversal edges scanned across the engine's lifetime: every
    /// live sampler stream, every redraw, and every classification /
    /// diameter sweep. The deterministic work measure `bench_dynamic`
    /// gates on.
    pub fn work_edges(&self) -> u64 {
        let mut total = self.sweep_edges;
        for slot in &self.slots {
            if let Some(st) = slot.state.lock().as_ref() {
                for th in &st.threads {
                    total += th.sampler.stats.edges_scanned + th.store.redraw_stats.edges_scanned;
                }
            }
        }
        total
    }

    /// Serialized ledger images of every live rank (`(slot id, bytes)`),
    /// the engine's durable state for service checkpointing.
    pub fn checkpoint_ledgers(&self) -> Vec<(usize, Vec<u8>)> {
        self.slots
            .iter()
            .filter_map(|s| s.state.lock().as_ref().map(|st| (s.id, st.ledger.to_bytes())))
            .collect()
    }

    /// Splits the rank's epoch quota `n0` across its threads (earlier
    /// threads take the remainder — deterministic).
    fn thread_share(n0: u64, threads: usize, t: usize) -> u64 {
        let base = n0 / threads as u64;
        let extra = u64::from((t as u64) < n0 % threads as u64);
        base + extra
    }

    /// Runs one fixed-length refinement round: every live rank executes up
    /// to `max_epochs_per_round` allreduce epochs on the current view,
    /// recording every confirmed sample in its thread stores. Deterministic
    /// per `(graph, updates, config, seed, round)`.
    pub fn refine(&mut self, calibration: &Calibration, tel: &Telemetry) -> DynRoundReport {
        let live = self.slots.len();
        assert!(live > 0, "refine on an empty pool");
        // Odd salts ≥ 1: crash-free (the crash schedule is reserved for the
        // first update batch — see the module docs).
        let plan = self.base_plan.reseeded(1 + 2 * self.refine_runs);
        self.refine_runs += 1;
        let view = self.log.view();
        let (n, kcfg, omega, max_epochs, threads) =
            (self.n, &self.kcfg, self.omega, self.max_epochs_per_round, self.threads);
        let slots = &self.slots;
        let start_global = self.last_global.clone();
        let results = Universe::run_with_plan(live, plan, |comm| {
            run_refine_round(
                view,
                n,
                kcfg,
                omega,
                max_epochs,
                threads,
                slots,
                &start_global,
                comm,
                tel,
            )
        });
        self.slots.retain(|s| s.state.lock().is_some());
        let global = results.into_iter().flatten().next().unwrap_or_else(|| vec![0u64; self.n + 1]);
        self.last_tau = global[self.n];
        self.last_achieved =
            achieved_epsilon(&global[..self.n], self.last_tau, self.omega, calibration);
        self.last_global = global.clone();
        DynRoundReport {
            global,
            tau: self.last_tau,
            achieved: self.last_achieved,
            live: self.slots.len(),
            round: self.refine_runs - 1,
        }
    }

    /// Refines until the maintained frame supports `target_eps` (or τ hits
    /// ω, or `max_rounds` elapse, or the pool empties). Returns the last
    /// round's report.
    pub fn refine_until(
        &mut self,
        target_eps: f64,
        max_rounds: u64,
        calibration: &Calibration,
        tel: &Telemetry,
    ) -> DynRoundReport {
        let mut report = DynRoundReport {
            global: self.last_global.clone(),
            tau: self.last_tau,
            achieved: self.last_achieved,
            live: self.live(),
            round: self.refine_runs,
        };
        let mut rounds = 0;
        while report.achieved > target_eps
            && report.tau < self.omega
            && rounds < max_rounds
            && self.live() > 0
        {
            report = self.refine(calibration, tel);
            rounds += 1;
        }
        report
    }

    /// Applies one update batch end-to-end (module docs give the
    /// pipeline). On validation error nothing changes.
    pub fn apply_update(
        &mut self,
        batch: &UpdateBatch,
        calibration: &Calibration,
        tel: &Telemetry,
    ) -> Result<UpdateReport, UpdateError> {
        self.log.validate(batch)?;
        assert!(!self.slots.is_empty(), "apply_update on an empty pool");

        // Depth caps for the sweeps (see `invalidate` module docs): the
        // deletion sweep only needs distances up to the largest finite L;
        // the insertion sweep must run uncapped if any retained pair was
        // disconnected (an insert can reconnect it at any distance).
        let (lmax, any_disconnected) = self.record_horizon();
        let del_cap = lmax;
        let ins_cap = if any_disconnected { u32::MAX } else { lmax };

        let mut eps = Vec::new();
        batch.delete_endpoints(&mut eps);
        self.sweep_edges += self.sweep.sweep_old(self.log.view(), eps, del_cap, batch.deletes());

        // xtask: allow(unwrap) — `validate` ran on this exact batch above;
        // append re-checks the same invariants against an unchanged view.
        let seq = self.log.append(batch).expect("batch validated above");
        tel.writer(0, 0).count(CounterId::EdgesApplied, batch.len() as u64);

        let mut eps = Vec::new();
        batch.insert_endpoints(&mut eps);
        self.sweep_edges += self.sweep.sweep_new(self.log.view(), eps, ins_cap, batch.inserts());

        // First batch runs under the base plan verbatim (crash schedule
        // armed); later batches use crash-free even salts ≥ 2.
        let plan = if self.batches == 0 {
            self.base_plan.clone()
        } else {
            self.base_plan.reseeded(2 * self.batches)
        };
        self.batches += 1;

        let live = self.slots.len();
        let view = self.log.view();
        let (n, kcfg) = (self.n, &self.kcfg);
        let (slots, sweep) = (&self.slots, &self.sweep);
        let results = Universe::run_with_plan(live, plan, |comm| {
            run_update(view, n, kcfg, seq, slots, sweep, comm, tel)
        });
        self.slots.retain(|s| s.state.lock().is_some());
        // The frame is allreduced (identical on every survivor) but the
        // classification tallies are rank-local: take the first frame, sum
        // the tallies.
        let mut global = None;
        let (mut invalidated, mut retained) = (0u64, 0u64);
        for (frame, inv, ret) in results.into_iter().flatten() {
            global.get_or_insert(frame);
            invalidated += inv;
            retained += ret;
        }
        let global = global.unwrap_or_else(|| vec![0u64; self.n + 1]);

        // Re-bound ω on the mutated graph: the vertex diameter may have
        // grown. ω only ratchets up (shrinking it would invalidate the
        // a-priori cap argument for samples already drawn).
        let (vd_bound, scanned) =
            vertex_diameter_bound(self.log.view(), &mut self.vd_dist, &mut self.vd_queue);
        self.sweep_edges += scanned;
        self.vd = self.vd.max(vd_bound.min(self.n as u32));
        self.omega = self.omega.max(kadabra_core::omega(
            self.kcfg.c,
            self.kcfg.epsilon,
            self.kcfg.delta,
            self.vd,
        ));

        self.last_tau = global[self.n];
        self.last_achieved =
            achieved_epsilon(&global[..self.n], self.last_tau, self.omega, calibration);
        self.last_global = global.clone();
        let compacted = self.log.maybe_compact();
        Ok(UpdateReport {
            seq,
            global,
            tau: self.last_tau,
            achieved: self.last_achieved,
            invalidated,
            retained,
            live: self.slots.len(),
            compacted,
        })
    }

    /// `(largest finite L, any disconnected pair?)` over every retained
    /// record of every live rank.
    fn record_horizon(&self) -> (u32, bool) {
        let mut lmax = 0u32;
        let mut any_disconnected = false;
        for slot in &self.slots {
            if let Some(st) = slot.state.lock().as_ref() {
                for th in &st.threads {
                    for r in th.store.recs() {
                        if r.dist == UNREACHED {
                            any_disconnected = true;
                        } else {
                            lmax = lmax.max(r.dist);
                        }
                    }
                }
            }
        }
        (lmax, any_disconnected)
    }
}

/// Per-rank body of one refinement round: allreduce epochs over the
/// overlay view, with sample recording and the shrink-and-continue crash
/// protocol. Survivors return `Some(global frame)`; dead ranks `None`.
#[allow(clippy::too_many_arguments)]
fn run_refine_round(
    view: &DynamicGraph,
    n: usize,
    kcfg: &KadabraConfig,
    omega: u64,
    max_epochs: u32,
    threads: usize,
    slots: &[DynSlot],
    start_global: &[u64],
    comm: Communicator,
    tel: &Telemetry,
) -> Option<Vec<u64>> {
    let me = comm.rank();
    let my_world = comm.world_rank();
    let id = slots[me].id;
    let w = tel.writer(id as u32, 0);
    comm.set_tracer(w.clone());
    let mut st = slots[me].state.lock().take()?;

    let mut comm = comm;
    let mut n0 = kcfg.n0(comm.size() * threads) * threads as u64;
    let mut s_global = start_global.to_vec();
    let mut epoch = 0u32;
    let mut dead = false;
    let sp_round = w.begin(SpanId::AdaptiveSampling);

    while epoch < max_epochs {
        w.set_epoch(epoch);
        let DynRankState { threads: ths, ledger, s_loc, .. } = &mut st;
        let marks: Vec<(usize, usize)> = ths.iter().map(|t| t.store.mark()).collect();
        let outcome = (|| -> Result<bool, CommError> {
            let sp = w.begin(SpanId::SampleBatch);
            for (t, th) in ths.iter_mut().enumerate() {
                let share = DynamicEngine::thread_share(n0, threads, t);
                let frame = &mut *s_loc;
                let store = &mut th.store;
                th.sampler.sample_batch_records(view, share, |s, tt, dist, interior| {
                    for &v in interior {
                        frame[v as usize] += 1;
                    }
                    frame[n] += 1;
                    store.push(s, tt, dist, interior);
                });
            }
            w.end(sp);
            let sp = w.begin(SpanId::IreduceWait);
            let reduced = comm.allreduce_sum_u64(s_loc)?;
            w.end(sp);
            w.count(CounterId::BytesReduced, s_loc.len() as u64 * 8);
            ledger.confirm(s_loc);
            s_loc.iter_mut().for_each(|x| *x = 0);
            w.count(CounterId::Samples, n0);
            let sp = w.begin(SpanId::Check);
            for (a, &x) in s_global.iter_mut().zip(&reduced) {
                *a += x;
            }
            // The only in-round stop is the deterministic τ ≥ ω cap; the
            // allreduce hands every rank the same frame, so the decision
            // needs no broadcast.
            let stop = s_global[n] >= omega;
            w.end(sp);
            Ok(stop)
        })();

        match outcome {
            Ok(stop) => {
                w.count(CounterId::Epochs, 1);
                epoch += 1;
                if stop {
                    break;
                }
            }
            Err(CommError::RankFailed { rank }) if rank == my_world => {
                dead = true;
                break;
            }
            Err(CommError::RankFailed { .. }) => {
                // The epoch's frame was never confirmed anywhere: roll the
                // stores back to their pre-epoch marks so they stay
                // ledger-exact, then shrink and resync from the survivors'
                // ledgers.
                for (th, &mark) in st.threads.iter_mut().zip(&marks) {
                    th.store.truncate_to(mark);
                }
                st.s_loc.iter_mut().for_each(|x| *x = 0);
                match kadabra_core::shrink_and_rebuild(&comm, &st.ledger, &w) {
                    Ok((small, rebuilt)) => {
                        comm = small;
                        s_global = rebuilt;
                        n0 = kcfg.n0(comm.size() * threads) * threads as u64;
                        epoch += 1;
                    }
                    Err(e) if e.failed_rank() == Some(my_world) => {
                        dead = true;
                        break;
                    }
                    Err(e) => panic!("unrecoverable communicator failure: {e}"),
                }
            }
            Err(e) => panic!("unrecoverable communicator failure: {e}"),
        }
    }
    w.end(sp_round);
    if dead {
        return None;
    }
    *slots[me].state.lock() = Some(st);
    Some(s_global)
}

/// Per-rank body of one update batch: classify every retained record,
/// redraw the invalidated ones on the new view, and allreduce the post-
/// transaction ledgers into the new global frame. Survivors return
/// `Some((global, invalidated, retained))`.
#[allow(clippy::too_many_arguments)]
fn run_update(
    view: &DynamicGraph,
    n: usize,
    kcfg: &KadabraConfig,
    seq: u64,
    slots: &[DynSlot],
    sweep: &SweepScratch,
    comm: Communicator,
    tel: &Telemetry,
) -> Option<(Vec<u64>, u64, u64)> {
    let me = comm.rank();
    let my_world = comm.world_rank();
    let id = slots[me].id;
    let w = tel.writer(id as u32, 0);
    comm.set_tracer(w.clone());
    let mut st = slots[me].state.lock().take()?;
    let sp_update = w.begin(SpanId::Update);

    let mut invalidated = 0u64;
    let mut retained = 0u64;
    {
        let DynRankState { threads: ths, ledger, bitmap, rescratch, .. } = &mut st;
        let sp = w.begin(SpanId::Invalidate);
        for (t, th) in ths.iter_mut().enumerate() {
            bitmap.reset(th.store.len());
            classify_samples(
                th.store.recs(),
                n,
                &sweep.del_slots,
                &sweep.dist_old,
                &sweep.ins_slots,
                &sweep.dist_new,
                bitmap,
            );
            let mut rng = StdRng::seed_from_u64(mix_seed(
                kcfg.seed ^ REDRAW_STREAM_SALT ^ seq,
                id as u64,
                t as u64,
            ));
            let store = &mut th.store;
            let redrawn = resample_invalidated(bitmap, ledger, rescratch, |i, retract, confirm| {
                for &v in store.interior(i) {
                    retract[v as usize] += 1;
                }
                let rec = store.recs()[i];
                let info = {
                    let PathStore { scratch, redraw_stats, .. } = store;
                    sample_shortest_path_into(view, rec.s, rec.t, scratch, &mut rng, redraw_stats)
                };
                let dist = info.map_or(UNREACHED, |inf| inf.distance);
                store.replace_with_scratch_path(i, dist);
                for &v in store.interior(i) {
                    confirm[v as usize] += 1;
                }
            });
            store.compact_pool();
            invalidated += redrawn as u64;
            retained += store.len() as u64 - redrawn as u64;
        }
        w.end(sp);
    }
    w.count(CounterId::SamplesInvalidated, invalidated);
    w.count(CounterId::SamplesRetained, retained);

    // The collective: Σ live ledgers is the new global frame. A crash here
    // fires *after* the local transaction, so survivors' ledgers are
    // already post-update — shrink_and_rebuild recomputes the same sum over
    // the smaller pool.
    let global = match comm.allreduce_sum_u64(st.ledger.frame()) {
        Ok(g) => g,
        Err(CommError::RankFailed { rank }) if rank == my_world => {
            w.end(sp_update);
            return None;
        }
        Err(CommError::RankFailed { .. }) => {
            // shrink_and_rebuild's allreduce over the survivors *is* the
            // collective this batch needs: Σ survivor ledgers.
            match kadabra_core::shrink_and_rebuild(&comm, &st.ledger, &w) {
                Ok((_small, rebuilt)) => rebuilt,
                Err(e) if e.failed_rank() == Some(my_world) => {
                    w.end(sp_update);
                    return None;
                }
                Err(e) => panic!("unrecoverable communicator failure: {e}"),
            }
        }
        Err(e) => panic!("unrecoverable communicator failure: {e}"),
    };
    w.end(sp_update);
    *slots[me].state.lock() = Some(st);
    Some((global, invalidated, retained))
}
