//! **Incremental betweenness on streaming graph updates** (DESIGN.md §14).
//!
//! The static pipeline answers "what is the betweenness of this graph";
//! this crate answers "…and of the graph five edits later" without paying
//! for a from-scratch adaptive run. Three pieces compose:
//!
//! * [`log`] — the [`log::DeltaLog`]: validated, deterministically
//!   sequenced batches of edge insertions/deletions, with periodic
//!   compaction back into a fresh CSR through recycled arena buffers.
//! * [`overlay`] — the [`overlay::DynamicGraph`] view (base CSR + delta
//!   overlay) that the existing bidirectional sampler traverses directly
//!   via the `GraphView` trait — no per-batch rebuild, no dispatch cost on
//!   untouched vertices.
//! * [`invalidate`] + [`engine`] — affected-pair detection (bounded BFS
//!   sweeps from the touched endpoints classify each retained sample as
//!   provably-valid or invalidated) and the ε-preserving re-sampling
//!   engine: only invalidated samples are redrawn, from dedicated
//!   per-`(seed, batch, rank, thread)` streams, through a τ-conserving
//!   ledger transaction — so the maintained estimate is bit-reproducibly a
//!   pure function of `(graph, update sequence, config, seed)` and stays
//!   within the (ε, δ) guarantee on the mutated graph.

pub mod engine;
pub mod invalidate;
pub mod log;
pub mod overlay;

pub use engine::{DynRoundReport, DynamicEngine, UpdateReport};
pub use invalidate::{
    bfs_distances_into, classify_samples, vertex_diameter_bound, PathRec, PathStore, SweepScratch,
};
pub use log::{BatchStamp, DeltaLog, UpdateBatch, UpdateError};
pub use overlay::DynamicGraph;
