//! The overlay graph view: a base CSR plus materialized rows for the
//! vertices touched by pending edge updates.
//!
//! [`DynamicGraph`] implements [`GraphView`], so the existing bidirectional
//! sampler traverses it directly — no per-batch CSR rebuild, no dynamic
//! dispatch in the hot loop (the kernels monomorphize over the view). The
//! design trades a tiny indirection on *touched* vertices (one `row_of`
//! lookup steering to a materialized `Vec` row) for zero cost on untouched
//! ones, whose adjacency slices still come straight out of the base CSR.
//!
//! Periodic compaction ([`DynamicGraph::compact_into`]) folds the overlay
//! back into a fresh CSR built through a recycled [`CsrArena`], preserving
//! the vertex labeling — compaction is invisible to every consumer of the
//! view (same adjacency, same ids), which the proptests in
//! `tests/overlay_equivalence.rs` pin down.

use kadabra_graph::{CsrArena, Graph, GraphBuilder, GraphView, NodeId};

use crate::log::UpdateBatch;

/// `row_of` sentinel: the vertex's adjacency still lives in the base CSR.
const UNTOUCHED: u32 = u32::MAX;

/// A base CSR plus an overlay of materialized adjacency rows for vertices
/// touched by applied [`UpdateBatch`]es.
///
/// Mutation is crate-private on purpose: the only sanctioned write path is
/// the [`crate::log::DeltaLog`], which validates and sequences batches
/// before they reach the overlay (the `delta-confinement` lint pass guards
/// the same boundary at the workspace level).
pub struct DynamicGraph {
    base: Graph,
    /// Per-vertex steering: index into `rows`, or [`UNTOUCHED`].
    row_of: Vec<u32>,
    /// Materialized sorted neighbor rows for touched vertices.
    rows: Vec<Vec<NodeId>>,
    /// Current undirected edge count (base ± applied deltas).
    num_edges: usize,
}

impl DynamicGraph {
    /// Wraps a base CSR with an empty overlay.
    pub fn new(base: Graph) -> Self {
        let n = base.num_nodes();
        let m = base.num_edges();
        DynamicGraph { base, row_of: vec![UNTOUCHED; n], rows: Vec::new(), num_edges: m }
    }

    /// The underlying base CSR (compaction folds the overlay into it).
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Current undirected edge count.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of vertices whose rows are materialized in the overlay.
    pub fn touched_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Visits every current undirected edge as `(u, v)` with `u < v`, in
    /// vertex-then-neighbor order.
    pub fn for_each_edge<F: FnMut(NodeId, NodeId)>(&self, mut f: F) {
        for u in 0..self.base.num_nodes() as NodeId {
            for &v in self.neighbors(u) {
                if u < v {
                    f(u, v);
                }
            }
        }
    }

    /// Materializes (or locates) the overlay row of `v`, reserving room for
    /// `extra` further insertions so [`Self::apply_edits`] never reallocates.
    fn ensure_row(&mut self, v: NodeId, extra: usize) {
        let slot = self.row_of[v as usize];
        if slot != UNTOUCHED {
            self.rows[slot as usize].reserve(extra);
            return;
        }
        let base_row = self.base.neighbors(v);
        let mut row = Vec::with_capacity(base_row.len() + extra);
        row.extend_from_slice(base_row);
        // xtask: allow(determinism) — at most one row per vertex and
        // `NodeId` is u32, so the row index always fits (UNTOUCHED is MAX).
        self.row_of[v as usize] = self.rows.len() as u32;
        self.rows.push(row);
    }

    /// Applies a validated batch: materializes the rows of every touched
    /// endpoint, then runs the in-place edit kernel.
    ///
    /// The batch must already be validated against this view (every delete
    /// present, every insert absent) — [`crate::log::DeltaLog::append`] is
    /// the public entry that guarantees it.
    pub(crate) fn apply_batch(&mut self, batch: &UpdateBatch) {
        for &(u, v) in batch.inserts() {
            self.ensure_row(u, 1);
            self.ensure_row(v, 1);
        }
        for &(u, v) in batch.deletes() {
            self.ensure_row(u, 0);
            self.ensure_row(v, 0);
        }
        self.apply_edits(batch);
    }

    /// In-place edit kernel over pre-materialized, pre-reserved rows: sorted
    /// removes then sorted inserts, both endpoints per edge. Performs no
    /// heap allocation (hot-loop-hygiene scoped — see `kadabra-lint`).
    fn apply_edits(&mut self, batch: &UpdateBatch) {
        for &(u, v) in batch.deletes() {
            self.remove_directed(u, v);
            self.remove_directed(v, u);
            self.num_edges -= 1;
        }
        for &(u, v) in batch.inserts() {
            self.insert_directed(u, v);
            self.insert_directed(v, u);
            self.num_edges += 1;
        }
    }

    fn row_mut(&mut self, v: NodeId) -> &mut Vec<NodeId> {
        let slot = self.row_of[v as usize];
        debug_assert_ne!(slot, UNTOUCHED, "row must be materialized before editing");
        &mut self.rows[slot as usize]
    }

    fn insert_directed(&mut self, u: NodeId, v: NodeId) {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Err(pos) => row.insert(pos, v),
            Ok(_) => panic!("insert of existing edge {u}-{v} reached the overlay unvalidated"),
        }
    }

    fn remove_directed(&mut self, u: NodeId, v: NodeId) {
        let row = self.row_mut(u);
        match row.binary_search(&v) {
            Ok(pos) => {
                row.remove(pos);
            }
            Err(_) => panic!("delete of missing edge {u}-{v} reached the overlay unvalidated"),
        }
    }

    /// Folds the overlay into a fresh base CSR built through `arena`'s
    /// recycled buffers, preserving the vertex labeling, and clears the
    /// overlay. The view's adjacency is bit-identical before and after.
    pub(crate) fn compact_into(&mut self, arena: &mut CsrArena) {
        let n = self.base.num_nodes();
        let mut b = GraphBuilder::with_capacity(n, self.num_edges);
        self.for_each_edge(|u, v| {
            // xtask: allow(unwrap) — edges come from a canonical view, so
            // they are in-range, deduplicated, and self-loop free.
            b.add_edge(u, v).unwrap();
        });
        let rebuilt = b.build_in(arena);
        debug_assert_eq!(rebuilt.num_edges(), self.num_edges);
        let old = std::mem::replace(&mut self.base, rebuilt);
        arena.recycle(old);
        self.row_of.fill(UNTOUCHED);
        self.rows.clear();
    }
}

impl GraphView for DynamicGraph {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        let slot = self.row_of[v as usize];
        if slot == UNTOUCHED {
            self.base.degree(v)
        } else {
            self.rows[slot as usize].len()
        }
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let slot = self.row_of[v as usize];
        if slot == UNTOUCHED {
            self.base.neighbors(v)
        } else {
            &self.rows[slot as usize]
        }
    }

    #[inline]
    fn prefetch_neighbors(&self, v: NodeId) {
        if self.row_of[v as usize] == UNTOUCHED {
            self.base.prefetch_neighbors(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;

    fn batch(ins: &[(NodeId, NodeId)], del: &[(NodeId, NodeId)]) -> UpdateBatch {
        UpdateBatch::new(ins.to_vec(), del.to_vec()).expect("valid batch")
    }

    #[test]
    fn overlay_splices_edits_over_the_base_csr() {
        // Path 0-1-2-3, then delete {1,2} and insert {0,2}, {1,3}.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut d = DynamicGraph::new(g);
        assert_eq!(d.num_edges(), 3);
        d.apply_batch(&batch(&[(0, 2), (1, 3)], &[(1, 2)]));
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.neighbors(0), &[1, 2]);
        assert_eq!(d.neighbors(1), &[0, 3]);
        assert_eq!(d.neighbors(2), &[0, 3]);
        assert_eq!(d.neighbors(3), &[1, 2]);
        assert_eq!(d.degree(1), 2);
        assert!(d.has_edge(1, 3) && !d.has_edge(1, 2));
        // Vertex 3's row was touched; untouched vertices still read the
        // base CSR (same slice address).
        assert_eq!(d.touched_vertices(), 4);
    }

    #[test]
    fn compaction_preserves_adjacency_and_labeling() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut d = DynamicGraph::new(g);
        d.apply_batch(&batch(&[(0, 2)], &[(3, 4)]));
        let before: Vec<Vec<NodeId>> = (0..5).map(|v| d.neighbors(v as NodeId).to_vec()).collect();
        let mut arena = CsrArena::new();
        d.compact_into(&mut arena);
        assert_eq!(d.touched_vertices(), 0, "compaction clears the overlay");
        for (v, row) in before.iter().enumerate() {
            assert_eq!(d.neighbors(v as NodeId), row.as_slice(), "vertex {v} row moved");
            assert_eq!(d.base().neighbors(v as NodeId), row.as_slice());
        }
        assert_eq!(d.num_edges(), d.base().num_edges());
    }
}
