//! The delta log: validated, deterministically sequenced edge-update
//! batches over a [`DynamicGraph`], with periodic compaction back into a
//! fresh CSR through recycled [`CsrArena`] buffers.
//!
//! Every mutation of a tenant graph flows through [`DeltaLog::append`] —
//! the single write path the `delta-confinement` lint pass enforces
//! workspace-wide. `append` validates the batch against the *current* view
//! (every delete present, every insert absent, no duplicate within the
//! batch), applies it to the overlay, and assigns it the next batch
//! sequence number. The maintained estimate is a pure function of
//! `(graph, update sequence, config, seed)`, so the sequencing is part of
//! the determinism contract: batch `k` is the state after exactly `k`
//! appends, regardless of when compaction ran.

use kadabra_graph::{CsrArena, Graph, GraphView, NodeId};

use crate::overlay::DynamicGraph;

/// Why a proposed update batch was rejected. Rejected batches leave the
/// log and the view untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An endpoint pair with `u == v`.
    SelfLoop {
        /// The offending vertex.
        v: NodeId,
    },
    /// An endpoint outside `0..num_nodes`.
    OutOfRange {
        /// The offending vertex.
        v: NodeId,
        /// The view's vertex count.
        n: usize,
    },
    /// The same undirected edge named twice in one batch (in either list).
    DuplicateInBatch {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
    /// An insertion of an edge the current view already has.
    InsertExisting {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
    /// A deletion of an edge the current view does not have.
    DeleteMissing {
        /// Smaller endpoint.
        u: NodeId,
        /// Larger endpoint.
        v: NodeId,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            UpdateError::SelfLoop { v } => write!(f, "self-loop at vertex {v}"),
            UpdateError::OutOfRange { v, n } => {
                write!(f, "vertex {v} out of range for a {n}-vertex graph")
            }
            UpdateError::DuplicateInBatch { u, v } => {
                write!(f, "edge {u}-{v} named more than once in the batch")
            }
            UpdateError::InsertExisting { u, v } => {
                write!(f, "insert of existing edge {u}-{v}")
            }
            UpdateError::DeleteMissing { u, v } => {
                write!(f, "delete of missing edge {u}-{v}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// A normalized batch of edge updates: insertions and deletions as
/// `(u, v)` pairs with `u < v`, each list sorted and duplicate-free, and no
/// edge named in both lists.
///
/// Normalization happens in [`UpdateBatch::new`]; graph-dependent
/// validation (presence/absence, vertex range) happens when the batch
/// reaches a [`DeltaLog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    inserts: Vec<(NodeId, NodeId)>,
    deletes: Vec<(NodeId, NodeId)>,
}

fn normalize(mut edges: Vec<(NodeId, NodeId)>) -> Result<Vec<(NodeId, NodeId)>, UpdateError> {
    for e in edges.iter_mut() {
        if e.0 == e.1 {
            return Err(UpdateError::SelfLoop { v: e.0 });
        }
        if e.0 > e.1 {
            *e = (e.1, e.0);
        }
    }
    edges.sort_unstable();
    for w in edges.windows(2) {
        if w[0] == w[1] {
            return Err(UpdateError::DuplicateInBatch { u: w[0].0, v: w[0].1 });
        }
    }
    Ok(edges)
}

impl UpdateBatch {
    /// Normalizes and structurally validates a batch.
    pub fn new(
        inserts: Vec<(NodeId, NodeId)>,
        deletes: Vec<(NodeId, NodeId)>,
    ) -> Result<Self, UpdateError> {
        let inserts = normalize(inserts)?;
        let deletes = normalize(deletes)?;
        // Both lists are sorted; a merge pass finds cross-list duplicates.
        let (mut i, mut j) = (0, 0);
        while i < inserts.len() && j < deletes.len() {
            match inserts[i].cmp(&deletes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    return Err(UpdateError::DuplicateInBatch { u: inserts[i].0, v: inserts[i].1 })
                }
            }
        }
        Ok(UpdateBatch { inserts, deletes })
    }

    /// Normalized insertions, `u < v`, sorted.
    pub fn inserts(&self) -> &[(NodeId, NodeId)] {
        &self.inserts
    }

    /// Normalized deletions, `u < v`, sorted.
    pub fn deletes(&self) -> &[(NodeId, NodeId)] {
        &self.deletes
    }

    /// Total number of edge updates in the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the batch carries no updates.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Collects the distinct endpoints of `edges` into `out` (sorted).
    fn endpoints_of(edges: &[(NodeId, NodeId)], out: &mut Vec<NodeId>) {
        out.clear();
        for &(u, v) in edges {
            out.push(u);
            out.push(v);
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Distinct endpoints of the deletions, sorted into `out`.
    pub fn delete_endpoints(&self, out: &mut Vec<NodeId>) {
        Self::endpoints_of(&self.deletes, out);
    }

    /// Distinct endpoints of the insertions, sorted into `out`.
    pub fn insert_endpoints(&self, out: &mut Vec<NodeId>) {
        Self::endpoints_of(&self.inserts, out);
    }

    /// Validates the batch against a concrete view: endpoints in range,
    /// every delete present, every insert absent.
    pub fn validate_against<G: GraphView>(&self, g: &G) -> Result<(), UpdateError> {
        let n = g.num_nodes();
        for &(u, v) in self.inserts.iter().chain(&self.deletes) {
            if u as usize >= n {
                return Err(UpdateError::OutOfRange { v: u, n });
            }
            if v as usize >= n {
                return Err(UpdateError::OutOfRange { v, n });
            }
        }
        for &(u, v) in &self.inserts {
            if g.has_edge(u, v) {
                return Err(UpdateError::InsertExisting { u, v });
            }
        }
        for &(u, v) in &self.deletes {
            if !g.has_edge(u, v) {
                return Err(UpdateError::DeleteMissing { u, v });
            }
        }
        Ok(())
    }
}

/// Summary of one applied batch, kept for audit and replay accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStamp {
    /// Sequence number assigned at append (1-based).
    pub seq: u64,
    /// Number of insertions in the batch.
    pub inserts: usize,
    /// Number of deletions in the batch.
    pub deletes: usize,
}

/// The log of applied batches over a [`DynamicGraph`], with periodic
/// compaction.
pub struct DeltaLog {
    view: DynamicGraph,
    arena: CsrArena,
    seq: u64,
    edits_since_compaction: usize,
    compact_threshold: usize,
    compactions: u64,
    history: Vec<BatchStamp>,
}

impl DeltaLog {
    /// Wraps a base CSR. The default compaction threshold folds the
    /// overlay back into a CSR once the accumulated edits reach a quarter
    /// of the base edge count (at least 64 edits, so tiny graphs don't
    /// thrash the builder).
    pub fn new(base: Graph) -> Self {
        let threshold = (base.num_edges() / 4).max(64);
        DeltaLog::with_compaction_threshold(base, threshold)
    }

    /// Wraps a base CSR with an explicit compaction threshold (in
    /// accumulated edge edits).
    pub fn with_compaction_threshold(base: Graph, compact_threshold: usize) -> Self {
        DeltaLog {
            view: DynamicGraph::new(base),
            arena: CsrArena::new(),
            seq: 0,
            edits_since_compaction: 0,
            compact_threshold: compact_threshold.max(1),
            compactions: 0,
            history: Vec::new(),
        }
    }

    /// The current overlay view (base CSR ± applied deltas).
    pub fn view(&self) -> &DynamicGraph {
        &self.view
    }

    /// Sequence number of the last applied batch (0 before any append).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Stamps of every applied batch, in sequence order.
    pub fn history(&self) -> &[BatchStamp] {
        &self.history
    }

    /// Number of compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Validates `batch` against the current view without applying it.
    pub fn validate(&self, batch: &UpdateBatch) -> Result<(), UpdateError> {
        batch.validate_against(&self.view)
    }

    /// Validates and applies `batch`, assigning it the next sequence
    /// number. On error nothing changes.
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<u64, UpdateError> {
        self.validate(batch)?;
        self.view.apply_batch(batch);
        self.seq += 1;
        self.edits_since_compaction += batch.len();
        self.history.push(BatchStamp {
            seq: self.seq,
            inserts: batch.inserts().len(),
            deletes: batch.deletes().len(),
        });
        Ok(self.seq)
    }

    /// Compacts if the accumulated edits crossed the threshold. Returns
    /// whether a compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        if self.edits_since_compaction >= self.compact_threshold {
            self.compact_now();
            true
        } else {
            false
        }
    }

    /// Unconditionally folds the overlay into a fresh CSR (built through
    /// the log's recycled arena buffers). View semantics are unchanged.
    pub fn compact_now(&mut self) {
        self.view.compact_into(&mut self.arena);
        self.edits_since_compaction = 0;
        self.compactions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)).collect();
        graph_from_edges(n, &edges)
    }

    #[test]
    fn batches_normalize_and_reject_structural_garbage() {
        let b = UpdateBatch::new(vec![(3, 1)], vec![(2, 0)]).expect("valid");
        assert_eq!(b.inserts(), &[(1, 3)]);
        assert_eq!(b.deletes(), &[(0, 2)]);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert_eq!(UpdateBatch::new(vec![(2, 2)], vec![]), Err(UpdateError::SelfLoop { v: 2 }));
        assert_eq!(
            UpdateBatch::new(vec![(1, 2), (2, 1)], vec![]),
            Err(UpdateError::DuplicateInBatch { u: 1, v: 2 })
        );
        assert_eq!(
            UpdateBatch::new(vec![(1, 2)], vec![(2, 1)]),
            Err(UpdateError::DuplicateInBatch { u: 1, v: 2 })
        );
    }

    #[test]
    fn append_validates_against_the_live_view() {
        let mut log = DeltaLog::new(ring(5));
        let miss = UpdateBatch::new(vec![], vec![(0, 2)]).expect("valid");
        assert_eq!(log.append(&miss), Err(UpdateError::DeleteMissing { u: 0, v: 2 }));
        let dup = UpdateBatch::new(vec![(0, 1)], vec![]).expect("valid");
        assert_eq!(log.append(&dup), Err(UpdateError::InsertExisting { u: 0, v: 1 }));
        let oob = UpdateBatch::new(vec![(0, 9)], vec![]).expect("valid");
        assert_eq!(log.append(&oob), Err(UpdateError::OutOfRange { v: 9, n: 5 }));
        assert_eq!(log.seq(), 0, "rejected batches must not advance the sequence");

        let ok = UpdateBatch::new(vec![(0, 2)], vec![(0, 1)]).expect("valid");
        assert_eq!(log.append(&ok), Ok(1));
        assert!(log.view().has_edge(0, 2) && !log.view().has_edge(0, 1));
        // The view is live: the same batch is now invalid.
        assert!(log.append(&ok).is_err());
        assert_eq!(log.history(), &[BatchStamp { seq: 1, inserts: 1, deletes: 1 }]);
    }

    #[test]
    fn compaction_fires_on_threshold_and_preserves_the_view() {
        let mut log = DeltaLog::with_compaction_threshold(ring(6), 2);
        let b = UpdateBatch::new(vec![(0, 3)], vec![]).expect("valid");
        log.append(&b).expect("append");
        assert!(!log.maybe_compact(), "1 edit < threshold 2");
        let b2 = UpdateBatch::new(vec![(1, 4)], vec![(2, 3)]).expect("valid");
        log.append(&b2).expect("append");
        assert!(log.maybe_compact());
        assert_eq!(log.compactions(), 1);
        assert_eq!(log.view().touched_vertices(), 0);
        // Post-compaction adjacency equals a from-scratch build.
        let expect = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 0), (0, 3), (1, 4)]);
        for v in 0..6u32 {
            assert_eq!(log.view().neighbors(v), expect.neighbors(v));
        }
        assert_eq!(log.seq(), 2, "compaction does not consume a sequence number");
    }
}
