//! Affected-pair detection: bounded BFS sweeps from the endpoints touched
//! by an update batch, and the classification kernel that marks each
//! retained sample as provably-valid or invalidated.
//!
//! # The invalidation rule
//!
//! A retained sample is a triple `(s, t, L)` plus the interior of a path
//! drawn uniformly from the shortest s-t paths of the graph it was sampled
//! on (`L` is that graph's `d(s, t)`, or `u32::MAX` for a disconnected
//! pair). For a batch with deletions `D` (checked against the *old* view,
//! before the batch applies) and insertions `I` (checked against the *new*
//! view, after), the sample is **provably valid** iff
//!
//! * for every `{u, v} ∈ D`: `d_old(s,u) + 1 + d_old(v,t) > L` and
//!   `d_old(s,v) + 1 + d_old(u,t) > L`, and
//! * for every `{u, v} ∈ I`: `d_new(s,u) + 1 + d_new(v,t) > L` and
//!   `d_new(s,v) + 1 + d_new(u,t) > L`.
//!
//! Validity implies the *set* of shortest s-t paths is identical in the old
//! and new graphs: no old shortest path can cross a deleted edge (its
//! endpoint-distance sum would be ≤ L), so all survive; and any new path of
//! length ≤ L through an inserted edge would force an endpoint-distance sum
//! ≤ L on the new view, so none exists — paths of length ≤ L in the new
//! graph all avoid `I`, hence lie in the old graph too. The rule reads only
//! `(s, t, L)` — never the drawn path — so conditioned on retention the
//! kept path stays uniform over the (unchanged) shortest-path set, and the
//! combined retained + redrawn population is exactly i.i.d. on the new
//! graph (DESIGN.md §14).
//!
//! Sums use `u64` arithmetic with [`UNREACHED`] promoted, so unreachable
//! endpoints fall out naturally, and the sweeps are depth-capped: any
//! distance beyond the cap reads as [`UNREACHED`], which is sound whenever
//! the cap is at least the largest finite `L` under test (the caller adds
//! an uncapped pass only where connectivity can flip — see
//! [`crate::engine::DynamicEngine`]).

use kadabra_core::ValidityBitmap;
use kadabra_graph::scratch::UNREACHED;
use kadabra_graph::{GraphView, NodeId};

/// One retained sample: the drawn pair, its shortest-path distance at draw
/// time (`u32::MAX` for a disconnected pair), and the interior span in the
/// owning [`PathStore`]'s pool.
#[derive(Debug, Clone, Copy)]
pub struct PathRec {
    /// Source endpoint.
    pub s: NodeId,
    /// Target endpoint.
    pub t: NodeId,
    /// `d(s, t)` on the view the sample was drawn on, or `u32::MAX`.
    pub dist: u32,
    start: u32,
    len: u32,
}

/// Per-thread store of retained samples: fixed-width records plus a flat
/// interior pool, mirroring (exactly) the confirmed mass in the owning
/// rank's `SampleLedger`.
pub struct PathStore {
    recs: Vec<PathRec>,
    pool: Vec<NodeId>,
    spare: Vec<NodeId>,
    /// Traversal scratch for redraws (separate from the sampler's, so
    /// redraw streams never perturb the adaptive stream's buffers).
    pub scratch: kadabra_graph::TraversalScratch,
    /// Cumulative search statistics over every redraw.
    pub redraw_stats: kadabra_graph::bibfs::SearchStats,
}

impl PathStore {
    /// An empty store for an `n`-vertex view.
    pub fn new(n: usize) -> Self {
        PathStore {
            recs: Vec::new(),
            pool: Vec::new(),
            spare: Vec::new(),
            scratch: kadabra_graph::TraversalScratch::new(n),
            redraw_stats: kadabra_graph::bibfs::SearchStats::default(),
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the store holds no samples.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// The retained records, in confirmation order.
    pub fn recs(&self) -> &[PathRec] {
        &self.recs
    }

    /// Appends a sample.
    pub fn push(&mut self, s: NodeId, t: NodeId, dist: u32, interior: &[NodeId]) {
        let start = self.pool.len();
        assert!(start + interior.len() <= u32::MAX as usize, "interior pool overflow");
        self.pool.extend_from_slice(interior);
        self.recs.push(PathRec {
            s,
            t,
            dist,
            start: start as u32,
            // xtask: allow(determinism) — the assert above bounds the whole
            // pool (hence every span length) to u32.
            len: interior.len() as u32,
        });
    }

    /// Interior vertices of record `i`.
    pub fn interior(&self, i: usize) -> &[NodeId] {
        let r = &self.recs[i];
        &self.pool[r.start as usize..(r.start + r.len) as usize]
    }

    /// Rollback mark: pass to [`Self::truncate_to`] to drop every sample
    /// pushed after this point (used when a reduction fails before the
    /// epoch's frame is confirmed, keeping the store ledger-exact).
    pub fn mark(&self) -> (usize, usize) {
        (self.recs.len(), self.pool.len())
    }

    /// Drops every sample pushed after `mark`.
    pub fn truncate_to(&mut self, mark: (usize, usize)) {
        self.recs.truncate(mark.0);
        self.pool.truncate(mark.1);
    }

    /// Replaces record `i`'s path with the redraw left in `self.scratch`
    /// (`dist` is the redraw's distance, `u32::MAX` if disconnected). The
    /// new interior is appended to the pool; [`Self::compact_pool`] reclaims
    /// the abandoned span.
    pub fn replace_with_scratch_path(&mut self, i: usize, dist: u32) {
        let start = self.pool.len();
        let len = self.scratch.path.len();
        assert!(start + len <= u32::MAX as usize, "interior pool overflow");
        self.pool.extend_from_slice(&self.scratch.path);
        let r = &mut self.recs[i];
        r.dist = dist;
        r.start = start as u32;
        r.len = len as u32;
    }

    /// Rewrites the pool in record order, dropping spans abandoned by
    /// [`Self::replace_with_scratch_path`]. Uses a resident spare buffer,
    /// so steady-state updates allocate nothing new.
    pub fn compact_pool(&mut self) {
        self.spare.clear();
        self.spare.reserve(self.pool.len());
        for r in self.recs.iter_mut() {
            // xtask: allow(determinism) — the spare rewrites a pool already
            // asserted to fit u32, and compaction only shrinks it.
            let start = self.spare.len() as u32;
            self.spare.extend_from_slice(&self.pool[r.start as usize..(r.start + r.len) as usize]);
            r.start = start;
        }
        std::mem::swap(&mut self.pool, &mut self.spare);
    }
}

/// Reusable buffers for the endpoint distance sweeps of one update batch.
pub struct SweepScratch {
    /// Flat `endpoints × n` distance tables over the old view.
    pub dist_old: Vec<u32>,
    /// Distinct deletion endpoints, sorted (row order of `dist_old`).
    pub eps_old: Vec<NodeId>,
    /// Flat `endpoints × n` distance tables over the new view.
    pub dist_new: Vec<u32>,
    /// Distinct insertion endpoints, sorted (row order of `dist_new`).
    pub eps_new: Vec<NodeId>,
    /// Per-deleted-edge `(row(u), row(v))` into `dist_old`.
    pub del_slots: Vec<(u32, u32)>,
    /// Per-inserted-edge `(row(u), row(v))` into `dist_new`.
    pub ins_slots: Vec<(u32, u32)>,
    queue: Vec<NodeId>,
}

impl SweepScratch {
    /// Empty scratch; buffers grow to the working set on first use.
    pub fn new() -> Self {
        SweepScratch {
            dist_old: Vec::new(),
            eps_old: Vec::new(),
            dist_new: Vec::new(),
            eps_new: Vec::new(),
            del_slots: Vec::new(),
            ins_slots: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// Runs one BFS per endpoint in `eps` over `g`, filling `dist` as a
    /// flat `eps.len() × n` table (depth-capped at `cap`), and resolves
    /// `edges` to `(row, row)` slot pairs in `slots`. Returns edges
    /// scanned.
    fn sweep_into<G: GraphView>(
        g: &G,
        eps: &[NodeId],
        cap: u32,
        dist: &mut Vec<u32>,
        queue: &mut Vec<NodeId>,
        edges: &[(NodeId, NodeId)],
        slots: &mut Vec<(u32, u32)>,
    ) -> u64 {
        let n = g.num_nodes();
        dist.clear();
        dist.resize(eps.len() * n, UNREACHED);
        let mut scanned = 0u64;
        for (row, &src) in eps.iter().enumerate() {
            scanned += bfs_distances_into(g, src, cap, &mut dist[row * n..(row + 1) * n], queue);
        }
        slots.clear();
        // xtask: allow(unwrap) — every edge endpoint is in `eps` by
        // construction (eps is the dedup of these very endpoints).
        let row = |x: NodeId| eps.binary_search(&x).unwrap() as u32;
        for &(u, v) in edges {
            slots.push((row(u), row(v)));
        }
        scanned
    }

    /// Sweeps the *old* view from the deletion endpoints. Returns edges
    /// scanned.
    pub fn sweep_old<G: GraphView>(
        &mut self,
        g: &G,
        eps: Vec<NodeId>,
        cap: u32,
        deletes: &[(NodeId, NodeId)],
    ) -> u64 {
        self.eps_old = eps;
        Self::sweep_into(
            g,
            &self.eps_old,
            cap,
            &mut self.dist_old,
            &mut self.queue,
            deletes,
            &mut self.del_slots,
        )
    }

    /// Sweeps the *new* view from the insertion endpoints. Returns edges
    /// scanned.
    pub fn sweep_new<G: GraphView>(
        &mut self,
        g: &G,
        eps: Vec<NodeId>,
        cap: u32,
        inserts: &[(NodeId, NodeId)],
    ) -> u64 {
        self.eps_new = eps;
        Self::sweep_into(
            g,
            &self.eps_new,
            cap,
            &mut self.dist_new,
            &mut self.queue,
            inserts,
            &mut self.ins_slots,
        )
    }
}

impl Default for SweepScratch {
    fn default() -> Self {
        SweepScratch::new()
    }
}

/// Single-source BFS over a [`GraphView`] into a caller-owned distance
/// slice, depth-capped at `cap` (vertices farther than `cap` keep
/// [`UNREACHED`]). Reuses `queue`; allocation-free once buffers are grown.
/// Returns the number of edges scanned.
pub fn bfs_distances_into<G: GraphView>(
    g: &G,
    src: NodeId,
    cap: u32,
    dist: &mut [u32],
    queue: &mut Vec<NodeId>,
) -> u64 {
    debug_assert_eq!(dist.len(), g.num_nodes());
    debug_assert!(dist.iter().all(|&d| d == UNREACHED));
    queue.clear();
    queue.push(src);
    dist[src as usize] = 0;
    let mut head = 0usize;
    let mut scanned = 0u64;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        if du >= cap {
            continue;
        }
        if let Some(&w) = queue.get(head) {
            g.prefetch_neighbors(w);
        }
        let adj = g.neighbors(u);
        scanned += adj.len() as u64;
        for &v in adj {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        }
    }
    scanned
}

/// The classification kernel: marks in `bitmap` every record whose
/// shortest-path set may have changed under the batch (module docs give
/// the rule and its proof sketch). `dist_old`/`dist_new` are the flat
/// endpoint tables of [`SweepScratch`]; `del_slots`/`ins_slots` the
/// per-edge row pairs. Allocation-free.
#[allow(clippy::too_many_arguments)]
pub fn classify_samples(
    recs: &[PathRec],
    n: usize,
    del_slots: &[(u32, u32)],
    dist_old: &[u32],
    ins_slots: &[(u32, u32)],
    dist_new: &[u32],
    bitmap: &mut ValidityBitmap,
) {
    debug_assert_eq!(bitmap.len(), recs.len());
    for (i, r) in recs.iter().enumerate() {
        let l = r.dist as u64;
        let (s, t) = (r.s as usize, r.t as usize);
        let mut invalid = false;
        for &(ru, rv) in del_slots {
            let (ou, ov) = ((ru as usize) * n, (rv as usize) * n);
            let su = dist_old[ou + s] as u64;
            let vt = dist_old[ov + t] as u64;
            let sv = dist_old[ov + s] as u64;
            let ut = dist_old[ou + t] as u64;
            if su + 1 + vt <= l || sv + 1 + ut <= l {
                invalid = true;
                break;
            }
        }
        if !invalid {
            for &(ru, rv) in ins_slots {
                let (ou, ov) = ((ru as usize) * n, (rv as usize) * n);
                let su = dist_new[ou + s] as u64;
                let vt = dist_new[ov + t] as u64;
                let sv = dist_new[ov + s] as u64;
                let ut = dist_new[ou + t] as u64;
                if su + 1 + vt <= l || sv + 1 + ut <= l {
                    invalid = true;
                    break;
                }
            }
        }
        if invalid {
            bitmap.invalidate(i);
        }
    }
}

/// One full-graph BFS sweep giving a sound vertex-diameter upper bound for
/// the ω recomputation after a batch: per connected component, `2·ecc + 1`
/// from an arbitrary root bounds the component's vertex diameter. Reuses
/// `dist`/`queue`; returns `(bound, edges_scanned)`.
pub fn vertex_diameter_bound<G: GraphView>(
    g: &G,
    dist: &mut Vec<u32>,
    queue: &mut Vec<NodeId>,
) -> (u32, u64) {
    let n = g.num_nodes();
    dist.clear();
    dist.resize(n, UNREACHED);
    let mut bound = 1u32;
    let mut scanned = 0u64;
    for root in 0..n as NodeId {
        if dist[root as usize] != UNREACHED {
            continue;
        }
        queue.clear();
        queue.push(root);
        dist[root as usize] = 0;
        let mut head = 0usize;
        let mut ecc = 0u32;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            ecc = ecc.max(du);
            let adj = g.neighbors(u);
            scanned += adj.len() as u64;
            for &v in adj {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = du + 1;
                    queue.push(v);
                }
            }
        }
        bound = bound.max(2 * ecc + 1);
    }
    (bound, scanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::UpdateBatch;
    use crate::overlay::DynamicGraph;
    use kadabra_graph::csr::graph_from_edges;

    #[test]
    fn capped_bfs_marks_everything_beyond_the_horizon_unreached() {
        // Path 0-1-2-3-4.
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut dist = vec![UNREACHED; 5];
        let mut queue = Vec::new();
        let scanned = bfs_distances_into(&g, 0, 2, &mut dist, &mut queue);
        assert_eq!(dist, vec![0, 1, 2, UNREACHED, UNREACHED]);
        assert!(scanned > 0);
        dist.fill(UNREACHED);
        bfs_distances_into(&g, 0, u32::MAX, &mut dist, &mut queue);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn classification_flags_exactly_the_affected_pairs() {
        // Cycle 0-1-2-3-4-5-0. Delete {2,3}: pairs whose shortest paths
        // cross it are invalidated; antipodal-free pairs far from the edge
        // keep their paths.
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let view = DynamicGraph::new(g);
        let batch = UpdateBatch::new(vec![], vec![(2, 3)]).expect("valid");
        let mut store = PathStore::new(6);
        // (s, t, d(s,t)) on the old cycle.
        store.push(2, 3, 1, &[]); // the deleted edge itself → invalid
        store.push(1, 4, 3, &[2, 3]); // shortest path crosses {2,3} → invalid
        store.push(0, 1, 1, &[]); // far from the edge → valid
        store.push(0, 2, 2, &[1]); // d=2 both ways? 0-1-2 only (other side is 4 hops) → valid
        let mut sweep = SweepScratch::new();
        let mut eps = Vec::new();
        batch.delete_endpoints(&mut eps);
        assert_eq!(eps, vec![2, 3]);
        sweep.sweep_old(&view, eps, u32::MAX, batch.deletes());
        let mut bitmap = kadabra_core::ValidityBitmap::all_valid(store.len());
        classify_samples(
            store.recs(),
            6,
            &sweep.del_slots,
            &sweep.dist_old,
            &sweep.ins_slots,
            &sweep.dist_new,
            &mut bitmap,
        );
        assert!(!bitmap.is_valid(0));
        assert!(!bitmap.is_valid(1));
        assert!(bitmap.is_valid(2));
        assert!(bitmap.is_valid(3));
    }

    #[test]
    fn insertion_invalidates_newly_connected_pairs() {
        // Two components {0,1} and {2,3}; inserting {1,2} connects them.
        let g = graph_from_edges(4, &[(0, 1), (2, 3)]);
        let mut view = DynamicGraph::new(g);
        let batch = UpdateBatch::new(vec![(1, 2)], vec![]).expect("valid");
        let mut store = PathStore::new(4);
        store.push(0, 3, u32::MAX, &[]); // disconnected at draw time
        store.push(0, 1, 1, &[]); // same-component, untouched
        view.apply_batch(&batch);
        let mut sweep = SweepScratch::new();
        let mut eps = Vec::new();
        batch.insert_endpoints(&mut eps);
        sweep.sweep_new(&view, eps, u32::MAX, batch.inserts());
        let mut bitmap = kadabra_core::ValidityBitmap::all_valid(store.len());
        classify_samples(
            store.recs(),
            4,
            &sweep.del_slots,
            &sweep.dist_old,
            &sweep.ins_slots,
            &sweep.dist_new,
            &mut bitmap,
        );
        assert!(!bitmap.is_valid(0), "newly connected pair must redraw");
        assert!(bitmap.is_valid(1));
    }

    #[test]
    fn store_rollback_and_pool_compaction_keep_records_exact() {
        let mut store = PathStore::new(8);
        store.push(0, 3, 2, &[1, 2]);
        let mark = store.mark();
        store.push(4, 6, 2, &[5]);
        store.truncate_to(mark);
        assert_eq!(store.len(), 1);
        assert_eq!(store.interior(0), &[1, 2]);
        // Replace record 0's path via the scratch and compact the pool.
        store.scratch.path.clear();
        store.scratch.path.extend_from_slice(&[7, 6]);
        store.replace_with_scratch_path(0, 3);
        assert_eq!(store.interior(0), &[7, 6]);
        assert_eq!(store.recs()[0].dist, 3);
        let pool_before = store.interior(0).to_vec();
        store.compact_pool();
        assert_eq!(store.interior(0), pool_before.as_slice());
    }

    #[test]
    fn vd_bound_covers_every_component() {
        // Path of 5 (vd = 5) plus an isolated edge.
        let g = graph_from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)]);
        let view = DynamicGraph::new(g);
        let (mut dist, mut queue) = (Vec::new(), Vec::new());
        let (bound, scanned) = vertex_diameter_bound(&view, &mut dist, &mut queue);
        assert!(bound >= 5, "bound {bound} must dominate the true vd 5");
        assert!(scanned > 0);
    }
}
