//! A counting [`GlobalAlloc`] wrapper for allocation-regression gates.
//!
//! The sampling hot path is contractually allocation-free in steady state
//! (DESIGN.md §11): after warm-up, `ThreadSampler::sample_batch` must not
//! touch the heap. Prose contracts rot, so two consumers pin it:
//!
//! * `crates/core/tests/sample_batch_alloc.rs` registers [`CountingAlloc`]
//!   as the test binary's `#[global_allocator]` and asserts the post-warm-up
//!   allocation delta is exactly zero;
//! * `crates/bench/src/bin/bench_kernel.rs` reports `allocs_per_sample` in
//!   `BENCH_kernel.json`, and `cargo xtask bench --kernel --check` fails if
//!   it ever becomes nonzero.
//!
//! Counters are plain `Relaxed` monotone counters — they order nothing, and
//! cross-thread exactness is not needed (both consumers measure on a single
//! thread; other threads can only inflate the reading, never hide an
//! allocation).
//!
//! This crate deliberately sidesteps the workspace's loom `sync.rs`
//! indirection: a `#[global_allocator]` static must be `const`-constructible
//! and live for the whole process, which loom's model-checked atomics cannot
//! do — and the allocator runs *underneath* any model the checker could
//! explore anyway.

use std::alloc::{GlobalAlloc, Layout, System};
// xtask: allow(direct-atomics) — a #[global_allocator] must be a const-
// constructible static usable before main; loom atomics cannot back one, so
// this crate opts out of the sync.rs indirection (see module docs).
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-delegating allocator that counts every heap operation.
///
/// Register it as the binary's global allocator, then diff [`counts`]
/// snapshots around the region under test:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: CountingAlloc = CountingAlloc::new();
///
/// let before = ALLOC.counts();
/// hot_path();
/// assert_eq!(ALLOC.counts().allocs - before.allocs, 0);
/// ```
///
/// [`counts`]: CountingAlloc::counts
#[derive(Debug)]
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

/// A point-in-time reading of the counters. Diff two snapshots with
/// [`AllocCounts::since`] to measure a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Heap acquisitions: `alloc`, `alloc_zeroed`, and every `realloc`
    /// (a realloc may move, so the zero-alloc contract counts it).
    pub allocs: u64,
    /// Calls to `dealloc`.
    pub deallocs: u64,
    /// Total bytes requested across all acquisitions.
    pub bytes: u64,
}

impl AllocCounts {
    /// The counter deltas accumulated since `earlier` was taken.
    #[must_use]
    pub fn since(&self, earlier: &AllocCounts) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            deallocs: self.deallocs.wrapping_sub(earlier.deallocs),
            bytes: self.bytes.wrapping_sub(earlier.bytes),
        }
    }
}

impl CountingAlloc {
    /// A zeroed counter set delegating to the system allocator.
    #[must_use]
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters (process-wide, monotone).
    pub fn counts(&self) -> AllocCounts {
        AllocCounts {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    fn record(&self, size: usize) {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the counter updates have no effect on
// the returned pointers or layouts.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registered once for the whole test binary; both tests read it.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc::new();

    #[test]
    fn vec_growth_is_counted() {
        let before = ALLOC.counts();
        let mut v: Vec<u64> = Vec::with_capacity(4);
        v.extend_from_slice(&[1, 2, 3, 4]);
        let mid = ALLOC.counts().since(&before);
        assert!(mid.allocs >= 1, "Vec::with_capacity must hit the allocator");
        assert!(mid.bytes >= 32);
        drop(v);
        let end = ALLOC.counts().since(&before);
        assert!(end.deallocs >= 1, "drop must hit dealloc");
    }

    #[test]
    fn allocation_free_region_reads_zero_delta() {
        // The counters are process-wide, so a concurrently running test can
        // bleed allocations into the measured window; retry a few times — a
        // real allocation in the region fails every attempt.
        let mut v: Vec<u64> = Vec::with_capacity(64);
        let zero_seen = (0..16).any(|_| {
            v.clear();
            let before = ALLOC.counts();
            // Pushing within capacity must not allocate.
            for i in 0..64 {
                v.push(i);
            }
            assert_eq!(v.iter().sum::<u64>(), 63 * 64 / 2);
            ALLOC.counts().since(&before).allocs == 0
        });
        assert!(zero_seen, "in-capacity pushes must be allocation-free");
    }
}
