//! Deterministic cross-rank work stealing over the point-to-point layer.
//!
//! Ranks that finish their epoch quota early ("helpers") claim
//! pre-partitioned sample sub-ranges from ranks the fault plan marks as
//! stragglers, so a straggler's injected slowdown no longer bounds round
//! latency. The protocol is a two-message handshake per (helper, straggler)
//! pair on reserved tags:
//!
//! 1. helper → straggler: *claim* `[round, chunk, count]` — "I will take
//!    `count` samples of your round-`round` quota, drawn from the stream
//!    coordinate `chunk`".
//! 2. straggler → helper: *grant* `[count]` — acknowledgement; the
//!    straggler drops the granted range from its own quota.
//!
//! Determinism: the partition (who claims which chunk, how large) is
//! computed by every rank from the shared `(plan, n0, members)` state alone
//! — nothing is negotiated — so the handshake only *confirms* a schedule
//! both sides already agree on, and the sampled estimate is bit-identical
//! to a run where the straggler did all the work itself (helpers draw the
//! stolen samples from the straggler's dedicated hash streams, not their
//! own). The claim send is buffered (never blocks), so any claim/grant
//! interleaving across multiple helpers is deadlock-free; the straggler
//! grants in a deterministic helper order chosen by the caller.

use crate::comm::Communicator;
use crate::error::CommError;

/// Reserved tag of steal claims (helper → straggler), disjoint from the
/// gather tag space (`u64::MAX - 0xA1`) and from application tags.
pub const STEAL_CLAIM_TAG: u64 = u64::MAX - 0xC1;

/// Reserved tag of steal grants (straggler → helper).
pub const STEAL_GRANT_TAG: u64 = u64::MAX - 0xC2;

impl Communicator {
    /// Claims `count` samples of `straggler`'s round-`round` quota, drawn
    /// from stream coordinate `chunk`. Blocks until the straggler grants,
    /// returning the granted count (always `count` in the current protocol
    /// — the echo confirms both sides executed the same schedule).
    ///
    /// Fails with [`CommError::RankFailed`] if the straggler dies before
    /// granting; the caller then abandons the claim and joins recovery (the
    /// straggler's quota is rebuilt by the post-shrink ledger all-reduce,
    /// so no samples are lost or double-counted).
    pub fn steal_claim(
        &self,
        straggler: usize,
        round: u64,
        chunk: u64,
        count: u64,
    ) -> Result<u64, CommError> {
        assert!(straggler != self.rank(), "a rank cannot steal from itself");
        self.send_u64s(straggler, STEAL_CLAIM_TAG, &[round, chunk, count]);
        let grant = self.recv_u64s(straggler, STEAL_GRANT_TAG)?;
        assert!(
            grant.len() == 1 && grant[0] == count,
            "steal grant mismatch: claimed {count}, granted {grant:?}"
        );
        Ok(grant[0])
    }

    /// Grants the next claim from `helper`: receives its
    /// `[round, chunk, count]` claim, acknowledges it, and returns the
    /// triple so the straggler can drop the granted range from its own
    /// quota. Call once per helper, in a deterministic helper order shared
    /// with the claim schedule.
    ///
    /// Fails with [`CommError::RankFailed`] if the helper dies before its
    /// (buffered) claim was posted; a claim already in the mailbox survives
    /// the helper's crash and is still granted, as with any buffered send.
    pub fn steal_grant(&self, helper: usize) -> Result<(u64, u64, u64), CommError> {
        assert!(helper != self.rank(), "a rank cannot grant to itself");
        let claim = self.recv_u64s(helper, STEAL_CLAIM_TAG)?;
        assert!(claim.len() == 3, "malformed steal claim: {claim:?}");
        self.send_u64s(helper, STEAL_GRANT_TAG, &[claim[2]]);
        Ok((claim[0], claim[1], claim[2]))
    }
}

#[cfg(test)]
mod tests {
    use crate::{FaultPlan, Universe};

    #[test]
    fn claim_grant_roundtrip() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                // Helper: claim 5 samples of rank 1's round-3 quota.
                comm.steal_claim(1, 3, 7, 5).unwrap()
            } else {
                let (round, chunk, count) = comm.steal_grant(0).unwrap();
                assert_eq!((round, chunk, count), (3, 7, 5));
                count
            }
        });
        assert_eq!(out, vec![5, 5]);
    }

    #[test]
    fn multiple_helpers_grant_in_caller_order() {
        // Three helpers claim concurrently; the straggler grants in helper
        // rank order and sees each helper's own chunk coordinate.
        let out = Universe::run(4, |comm| {
            if comm.rank() == 3 {
                let mut granted = Vec::new();
                for helper in 0..3 {
                    let (round, chunk, count) = comm.steal_grant(helper).unwrap();
                    assert_eq!(round, 1);
                    assert_eq!(chunk, helper as u64);
                    granted.push(count);
                }
                granted
            } else {
                let mine = 10 + comm.rank() as u64;
                comm.steal_claim(3, 1, comm.rank() as u64, mine).unwrap();
                vec![mine]
            }
        });
        assert_eq!(out[3], vec![10, 11, 12]);
    }

    #[test]
    fn steal_handshake_is_reproducible_under_jitter() {
        let plan = FaultPlan::ideal(11).with_p2p_jitter(2);
        let run = || {
            Universe::run_with_plan(3, plan.clone(), |comm| {
                if comm.rank() == 2 {
                    let a = comm.steal_grant(0).unwrap();
                    let b = comm.steal_grant(1).unwrap();
                    vec![a.2, b.2]
                } else {
                    vec![comm.steal_claim(2, 0, comm.rank() as u64, 4).unwrap()]
                }
            })
        };
        let a = run();
        assert_eq!(a[2], vec![4, 4]);
        assert_eq!(a, run(), "steal handshake not reproducible: {}", plan.summary());
    }

    #[test]
    fn grant_fails_when_helper_dies_without_claiming() {
        // Helper (rank 0) crashes at its first collective checkpoint,
        // before posting any claim; the straggler's grant must fail typed.
        let plan = FaultPlan::ideal(5).with_crash_at_collective(0, 0);
        let out = Universe::run_with_plan(2, plan, |comm| {
            if comm.rank() == 0 {
                comm.barrier().err().and_then(|e| e.failed_rank())
            } else {
                comm.steal_grant(0).err().and_then(|e| e.failed_rank())
            }
        });
        assert_eq!(out, vec![Some(0), Some(0)]);
    }
}
