//! Atomic-type indirection for model checking.
//!
//! All atomics in this crate are imported from here, never from
//! `std::sync::atomic` directly (enforced by `cargo xtask lint`). Under the
//! `loom` feature the types resolve to the loom shim's model-checked
//! versions, so crate-level concurrency tests can exhaustively explore
//! interleavings; otherwise they are the plain `std` atomics with zero
//! overhead.

#[cfg(feature = "loom")]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(not(feature = "loom"))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
