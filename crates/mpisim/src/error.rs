//! Typed communicator errors.
//!
//! The engine's failure paths (deadlock timeout, poison on protocol misuse,
//! and the crash-fault layer's dead-rank detection) surface as [`CommError`]
//! values propagated through `Result`s instead of panics, so drivers can
//! react — a [`CommError::RankFailed`] is the cue for shrink-and-continue
//! recovery ([`crate::Communicator::shrink`]), while `Timeout`/`Poisoned`
//! indicate an algorithm bug and carry the `(plan, seed)` replay pair needed
//! to reproduce it bit-for-bit.

use std::fmt;

/// Why a communicator operation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A member of the communicator was declared dead before joining the
    /// operation; the op can never complete. `rank` is the failed process's
    /// *world* rank (stable across splits and shrinks). A crashing rank
    /// receives this error with its own world rank.
    RankFailed {
        /// World rank of the failed process.
        rank: usize,
    },
    /// A blocking wait exhausted the (plan-scaled) deadlock budget with no
    /// member declared dead — a collective-order bug in the algorithm under
    /// test, not a fault-injection outcome.
    Timeout {
        /// What was being waited on (op seq, kind, join progress).
        op: String,
        /// The `(plan, seed)` replay pair of the run.
        replay: String,
    },
    /// Another rank detected protocol misuse (collective kind mismatch) and
    /// poisoned the communicator; all waiters fail fast instead of riding
    /// the deadlock timeout.
    Poisoned {
        /// The poisoning rank's diagnostic.
        detail: String,
        /// The `(plan, seed)` replay pair of the run.
        replay: String,
    },
}

impl CommError {
    /// The failed world rank, if this error reports a dead member.
    pub fn failed_rank(&self) -> Option<usize> {
        match self {
            CommError::RankFailed { rank } => Some(*rank),
            _ => None,
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankFailed { rank } => {
                write!(f, "communicator member failed: world rank {rank} is dead")
            }
            CommError::Timeout { op, replay } => {
                write!(f, "collective deadlock: {op} [replay: {replay}]")
            }
            CommError::Poisoned { detail, replay } => {
                write!(f, "communicator poisoned: {detail} [replay: {replay}]")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_and_poison_messages_carry_the_replay_pair() {
        let t = CommError::Timeout {
            op: "op seq 3 (Barrier) stuck with 1/2 ranks".into(),
            replay: "FaultPlan { seed: 7, .. }".into(),
        };
        assert!(t.to_string().contains("replay: FaultPlan { seed: 7"));
        let p = CommError::Poisoned {
            detail: "collective mismatch at seq 0".into(),
            replay: "plan: none (free-running)".into(),
        };
        assert!(p.to_string().contains("replay: plan: none"));
        assert_eq!(p.failed_rank(), None);
        assert_eq!(CommError::RankFailed { rank: 3 }.failed_rank(), Some(3));
    }
}
