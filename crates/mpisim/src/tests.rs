//! Integration tests of the simulated MPI runtime.

use crate::{CommError, Communicator, FaultPlan, ReduceOp, Universe};

#[test]
fn world_size_and_ranks() {
    let ranks = Universe::run(4, |comm| {
        assert_eq!(comm.size(), 4);
        comm.rank()
    });
    assert_eq!(ranks, vec![0, 1, 2, 3]);
}

#[test]
fn single_rank_world() {
    let out = Universe::run(1, |comm| {
        comm.barrier().unwrap();
        let r = comm.reduce_sum_u64(0, &[1, 2, 3]).unwrap();
        assert_eq!(r, Some(vec![1, 2, 3]));
        comm.bcast_u64(0, Some(9)).unwrap()
    });
    assert_eq!(out, vec![9]);
}

#[test]
fn barrier_synchronizes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let before = AtomicUsize::new(0);
    Universe::run(6, |comm| {
        // Relaxed suffices: the barrier itself is the synchronization under
        // test, and it must order these accesses for the assert to hold.
        before.fetch_add(1, Ordering::Relaxed);
        comm.barrier().unwrap();
        // After the barrier every rank must observe all six arrivals.
        assert_eq!(before.load(Ordering::Relaxed), 6);
    });
}

#[test]
fn reduce_sum_vectors() {
    let out = Universe::run(5, |comm| {
        let data = vec![comm.rank() as u64; 4];
        comm.reduce_sum_u64(2, &data).unwrap()
    });
    for (rank, r) in out.iter().enumerate() {
        if rank == 2 {
            assert_eq!(r.as_deref(), Some(&[10u64, 10, 10, 10][..]));
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn ireduce_overlaps_with_computation() {
    let out = Universe::run(4, |comm| {
        let data = vec![1u64, comm.rank() as u64];
        let mut req = comm.ireduce_sum_u64(0, &data).unwrap();
        // Simulated "overlapped sampling": spin on test() doing local work.
        let mut local_work = 0u64;
        while !req.test().unwrap() {
            local_work += 1;
            std::hint::spin_loop();
        }
        (req.into_result().unwrap(), local_work)
    });
    assert_eq!(out[0].0, Some(vec![4, 1 + 2 + 3]));
    for r in &out[1..] {
        assert_eq!(r.0, None);
    }
}

#[test]
fn scalar_reductions() {
    let out = Universe::run(4, |comm| {
        let v = comm.rank() as u64 + 1;
        (
            comm.reduce_scalar_u64(0, ReduceOp::Sum, v).unwrap(),
            comm.reduce_scalar_u64(0, ReduceOp::Min, v).unwrap(),
            comm.reduce_scalar_u64(0, ReduceOp::Max, v).unwrap(),
        )
    });
    assert_eq!(out[0], (Some(10), Some(1), Some(4)));
    assert_eq!(out[1], (None, None, None));
}

#[test]
fn allreduce_gives_everyone_the_result() {
    let out = Universe::run(3, |comm| {
        comm.allreduce_scalar_u64(ReduceOp::Max, comm.rank() as u64 * 7).unwrap()
    });
    assert_eq!(out, vec![14, 14, 14]);
}

#[test]
fn broadcast_from_nonzero_root() {
    let out = Universe::run(4, |comm| {
        let v = if comm.rank() == 3 { Some(42) } else { None };
        comm.bcast_u64(3, v).unwrap()
    });
    assert_eq!(out, vec![42; 4]);
}

#[test]
fn ibcast_bool_termination_flag() {
    let out = Universe::run(3, |comm| {
        let v = if comm.rank() == 0 { Some(true) } else { None };
        let mut req = comm.ibcast_bool(0, v).unwrap();
        let mut spins = 0u64;
        while !req.test().unwrap() {
            spins += 1;
            std::hint::spin_loop();
        }
        req.into_result().unwrap() != 0 && spins < u64::MAX
    });
    assert_eq!(out, vec![true; 3]);
}

#[test]
fn multiple_sequential_collectives_keep_order() {
    let out = Universe::run(3, |comm| {
        let mut results = Vec::new();
        for round in 0..10u64 {
            let r = comm.allreduce_scalar_u64(ReduceOp::Sum, round + comm.rank() as u64).unwrap();
            results.push(r);
        }
        results
    });
    for r in out {
        for (round, v) in r.iter().enumerate() {
            assert_eq!(*v, 3 * round as u64 + 3); // 0+1+2 + 3*round
        }
    }
}

#[test]
fn split_into_node_local_and_leader_comms() {
    // 8 ranks, 2 per "node" -> 4 nodes; reproduce Section IV-E's layout.
    let out = Universe::run(8, |comm| {
        let node = (comm.rank() / 2) as u32;
        let local = comm.split(node, comm.rank() as i64).unwrap();
        assert_eq!(local.size(), 2);
        let local_sum = local.allreduce_scalar_u64(ReduceOp::Sum, comm.rank() as u64).unwrap();

        // Leader communicator: the first rank of each node gets color 0,
        // everyone else color 1 (they never use theirs).
        let is_leader = local.rank() == 0;
        let leaders = comm.split(u32::from(!is_leader), comm.rank() as i64).unwrap();
        let leader_sum = if is_leader {
            Some(leaders.allreduce_scalar_u64(ReduceOp::Sum, local_sum).unwrap())
        } else {
            None
        };
        (local.rank(), local_sum, leader_sum)
    });
    for (rank, (local_rank, local_sum, leader_sum)) in out.iter().enumerate() {
        assert_eq!(*local_rank, rank % 2);
        let node = rank / 2;
        assert_eq!(*local_sum, (2 * node) as u64 + (2 * node + 1) as u64);
        if rank % 2 == 0 {
            // Sum over node sums: 1 + 5 + 9 + 13 = 28.
            assert_eq!(*leader_sum, Some(28));
        } else {
            assert!(leader_sum.is_none());
        }
    }
}

#[test]
fn split_orders_by_key() {
    let out = Universe::run(4, |comm| {
        // Reverse the rank order via the key.
        let sub = comm.split(0, -(comm.rank() as i64)).unwrap();
        sub.rank()
    });
    assert_eq!(out, vec![3, 2, 1, 0]);
}

#[test]
fn bytes_are_accounted() {
    let out = Universe::run(2, |comm| {
        let data = vec![0u64; 100];
        comm.reduce_sum_u64(0, &data).unwrap();
        comm.barrier().unwrap();
        comm.bytes_transferred()
    });
    // 2 ranks * 100 u64 = 1600 bytes for the reduce; barrier adds none.
    assert_eq!(out[0], 1600);
    assert_eq!(out[1], 1600);
}

#[test]
fn collective_kind_mismatch_poisons_with_a_typed_error() {
    // Mismatched collective kinds must surface as `CommError::Poisoned` at
    // EVERY rank — a typed result, not a panic or a deadlock — and the
    // diagnostic must carry the replay pair.
    let out = Universe::run(2, |comm: Communicator| {
        if comm.rank() == 0 {
            comm.barrier().err()
        } else {
            comm.reduce_scalar_u64(0, ReduceOp::Sum, 1).err()
        }
    });
    for (rank, err) in out.iter().enumerate() {
        let err = err.as_ref().unwrap_or_else(|| panic!("rank {rank} missed the poison"));
        assert!(
            matches!(err, CommError::Poisoned { .. }),
            "rank {rank}: expected Poisoned, got {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("collective mismatch at seq 0"), "diagnostic lost: {msg}");
        assert!(msg.contains("replay:"), "replay pair missing: {msg}");
    }
}

#[test]
fn nested_splits() {
    let out = Universe::run(8, |comm| {
        let half = comm.split((comm.rank() / 4) as u32, comm.rank() as i64).unwrap();
        let quarter = half.split((half.rank() / 2) as u32, half.rank() as i64).unwrap();
        (half.size(), quarter.size(), quarter.rank())
    });
    for (rank, &(h, q, qr)) in out.iter().enumerate() {
        assert_eq!(h, 4);
        assert_eq!(q, 2);
        assert_eq!(qr, rank % 2);
    }
}

#[test]
fn large_vector_reduce() {
    let n = 100_000;
    let out = Universe::run(3, |comm| {
        let data = vec![comm.rank() as u64 + 1; n];
        comm.reduce_sum_u64(0, &data).unwrap()
    });
    let root = out[0].as_ref().unwrap();
    assert_eq!(root.len(), n);
    assert!(root.iter().all(|&x| x == 6));
}

#[test]
fn many_rounds_of_ibarrier_plus_reduce() {
    // The paper's Section IV-F pattern: non-blocking barrier, then blocking
    // reduce, repeated for many epochs.
    let rounds = 50u64;
    let out = Universe::run(4, |comm| {
        let mut collected = 0u64;
        for round in 0..rounds {
            let mut bar = comm.ibarrier().unwrap();
            let mut local = 0u64;
            while !bar.test().unwrap() {
                local += 1; // overlapped "sampling"
            }
            let r = comm.reduce_sum_u64(0, &[round + comm.rank() as u64, local]).unwrap();
            if let Some(v) = r {
                collected += v[0];
            }
        }
        collected
    });
    // Root collected sum over rounds of (4*round + 0+1+2+3).
    let expect: u64 = (0..rounds).map(|r| 4 * r + 6).sum();
    assert_eq!(out[0], expect);
}

#[test]
fn allreduce_vectors() {
    let out = Universe::run(3, |comm| {
        let data = vec![comm.rank() as u64, 10];
        comm.allreduce_sum_u64(&data).unwrap()
    });
    for r in out {
        assert_eq!(r, vec![3, 30]);
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[test]
fn collectives_stay_correct_under_a_fault_plan() {
    // Delays and stragglers perturb *when* ranks observe completion, never
    // *what* a collective computes.
    let plan = FaultPlan::ideal(1).with_collective_delay(1, 12).with_straggler(1, 5);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let sum = comm.allreduce_scalar_u64(ReduceOp::Sum, comm.rank() as u64).unwrap();
        let r = comm.reduce_sum_u64(0, &[1, comm.rank() as u64]).unwrap();
        let b = comm.bcast_u64(2, (comm.rank() == 2).then_some(77)).unwrap();
        (sum, r, b)
    });
    for (rank, (sum, r, b)) in out.iter().enumerate() {
        assert_eq!(*sum, 6);
        assert_eq!(*b, 77);
        if rank == 0 {
            assert_eq!(r.as_deref(), Some(&[4u64, 6][..]));
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn overlap_counts_are_plan_deterministic() {
    // Under a plan, the number of times test() returns false — i.e. the
    // number of overlapped samples each rank would take — is a pure
    // function of (plan, rank, seq): identical across runs, unlike the
    // free-running mode where it depends on OS scheduling.
    let plan = FaultPlan::ideal(33).with_collective_delay(2, 40).with_straggler(2, 3);
    let run = || {
        Universe::run_with_plan(4, plan.clone(), |comm| {
            let mut polls = Vec::new();
            for round in 0..6u64 {
                let mut req = comm.ireduce_sum_u64(0, &[round]).unwrap();
                let mut n = 0u64;
                while !req.test().unwrap() {
                    n += 1;
                }
                polls.push(n);
            }
            polls
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "overlap counts must replay bit-identically: {}", plan.summary());
    // The injected delays actually bite (some rank polls more than zero
    // times) and respect the configured ceiling for non-stragglers.
    assert!(a.iter().flatten().any(|&n| n > 0), "plan injected nothing: {a:?}");
    for (rank, polls) in a.iter().enumerate() {
        let cap = if rank == 2 { 40 * 3 } else { 40 };
        assert!(polls.iter().all(|&n| n <= cap), "rank {rank} over cap: {polls:?}");
    }
}

#[test]
fn straggler_delays_peer_completion_observably() {
    // A straggler's big injected delay shows up in ITS OWN poll count; its
    // peers just block in wait() until it resolves — no deadlock error,
    // because the engine scales its timeout by the plan's max latency.
    let plan = FaultPlan::ideal(5).with_collective_delay(10, 10).with_straggler(3, 20);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let mut req = comm.ibarrier().unwrap();
        let mut n = 0u64;
        while !req.test().unwrap() {
            n += 1;
        }
        req.wait().unwrap();
        n
    });
    assert_eq!(out[3], 200, "straggler factor must scale its poll count");
    assert!(out[..3].iter().all(|&n| n == 10));
}

#[test]
fn split_children_inherit_the_plan() {
    let plan = FaultPlan::ideal(8).with_collective_delay(1, 30);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let sub = comm.split(u32::try_from(comm.rank() % 2).unwrap_or(0), 0).unwrap();
        assert!(sub.fault_plan().is_some(), "child communicator lost the plan");
        // Child collectives are also delayed deterministically.
        let mut req = sub.ibarrier().unwrap();
        let mut n = 0u64;
        while !req.test().unwrap() {
            n += 1;
        }
        req.wait().unwrap();
        n
    });
    assert!(out.iter().any(|&n| n > 0), "child communicator saw no injected delay");
}

// ---------------------------------------------------------------------------
// Crash faults & shrink-and-continue
// ---------------------------------------------------------------------------

#[test]
fn scheduled_crash_is_typed_and_bit_reproducible() {
    // Rank 1 dies instead of joining its third collective (0-based seq 2):
    // it observes RankFailed{1} with its OWN rank, peers observe RankFailed{1}
    // on the op it never joined, and the whole outcome replays bit-for-bit.
    let plan = FaultPlan::ideal(11).with_crash_at_collective(1, 2);
    let run = || {
        Universe::run_with_plan(3, plan.clone(), |comm| {
            let mut results = Vec::new();
            for round in 0..4u64 {
                match comm.allreduce_scalar_u64(ReduceOp::Sum, round + comm.rank() as u64) {
                    Ok(v) => results.push(Ok(v)),
                    Err(e) => {
                        results.push(Err(e));
                        break;
                    }
                }
            }
            results
        })
    };
    let a = run();
    assert_eq!(a, run(), "crash outcome must replay from (plan, seed): {}", plan.summary());
    // Two clean rounds everywhere.
    for r in &a {
        #[allow(clippy::identity_op)] // the spelled-out rank sum documents who joined
        {
            assert_eq!(r[0], Ok(0 + 1 + 2));
            assert_eq!(r[1], Ok(3 + 1 + 2));
        }
    }
    // Round 2: everyone observes the same typed failure.
    for (rank, r) in a.iter().enumerate() {
        assert_eq!(r.len(), 3, "rank {rank} should stop at the failed round");
        assert_eq!(r[2], Err(CommError::RankFailed { rank: 1 }), "rank {rank}: {:?}", r[2]);
    }
}

#[test]
fn shrink_excludes_the_dead_and_survivors_continue() {
    // Rank 2 of 4 dies; survivors shrink and keep computing on the smaller
    // communicator, with world identities preserved.
    let plan = FaultPlan::ideal(21).with_crash_at_collective(2, 1);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let mut sums = Vec::new();
        loop {
            match comm.allreduce_scalar_u64(ReduceOp::Sum, comm.world_rank() as u64) {
                Ok(v) => sums.push(v),
                Err(CommError::RankFailed { rank }) if rank == comm.world_rank() => {
                    return (sums, None); // this rank is the casualty
                }
                Err(CommError::RankFailed { .. }) => break,
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        let small = comm.shrink().unwrap();
        assert_eq!(small.size(), 3);
        assert_eq!(small.members(), &[0, 1, 3]);
        assert_eq!(small.world_rank(), comm.world_rank());
        // Survivor sum over world ranks: 0 + 1 + 3.
        let v = small.allreduce_scalar_u64(ReduceOp::Sum, small.world_rank() as u64).unwrap();
        let b = small.bcast_u64(0, (small.rank() == 0).then_some(99)).unwrap();
        (sums, Some((small.rank(), v, b)))
    });
    // One clean round before the crash (rank 2 joins seq 0, dies at seq 1).
    for (rank, (sums, after)) in out.iter().enumerate() {
        #[allow(clippy::identity_op)] // the spelled-out rank sum documents who joined
        {
            assert_eq!(sums, &[0 + 1 + 2 + 3], "rank {rank} pre-crash rounds");
        }
        if rank == 2 {
            assert!(after.is_none(), "the dead rank cannot continue");
        } else {
            let (small_rank, v, b) = after.unwrap();
            let expected_rank = [0, 1, usize::MAX, 2][rank];
            assert_eq!(small_rank, expected_rank);
            assert_eq!(v, 4);
            assert_eq!(b, 99);
        }
    }
}

#[test]
fn after_polls_crash_fires_mid_overlap() {
    // An AfterPolls crash consumes the rank's poll budget across its
    // overlapped test() loops — it dies with a reduction in flight, and the
    // failure is observed through the *request*, not a fresh collective.
    let plan = FaultPlan::ideal(3).with_collective_delay(2, 6).with_crash_after_polls(1, 10);
    let run = || {
        Universe::run_with_plan(2, plan.clone(), |comm| {
            let mut polls = 0u64;
            for round in 0..8u64 {
                let mut req = match comm.ireduce_sum_u64(0, &[round]) {
                    Ok(r) => r,
                    Err(e) => return (polls, round, Some(e)),
                };
                loop {
                    match req.test() {
                        Ok(true) => break,
                        Ok(false) => polls += 1,
                        Err(e) => return (polls, round, Some(e)),
                    }
                }
            }
            (polls, 8, None)
        })
    };
    let a = run();
    assert_eq!(a, run(), "mid-overlap crash must replay identically: {}", plan.summary());
    let (polls, _round, err) = &a[1];
    // The 10th unsuccessful poll is the crash tick.
    assert_eq!(*polls, 9, "rank 1 dies on its 10th poll");
    assert_eq!(err.as_ref(), Some(&CommError::RankFailed { rank: 1 }));
    // Rank 0 eventually observes the same world-rank failure.
    assert_eq!(a[0].2.as_ref().and_then(CommError::failed_rank), Some(1));
}

#[test]
fn shrink_generations_and_split_children_use_independent_salts() {
    // Regression (satellite b): split children of a communicator that later
    // shrinks must not alias the shrunk communicator's hash-stream salt, and
    // successive shrink generations must draw distinct streams too —
    // otherwise post-recovery delay schedules silently replay pre-failure
    // ones.
    let plan = FaultPlan::ideal(17).with_collective_delay(4, 20);
    let out = Universe::run_with_plan(3, plan, |comm| {
        let split_child = comm.split(0, comm.rank() as i64).unwrap();
        let gen0 = comm.shrink().unwrap(); // nobody dead: full-membership shrink
        let gen1 = comm.shrink().unwrap();
        let post_split = gen0.split(0, gen0.rank() as i64).unwrap();
        assert_eq!(gen0.size(), 3);
        assert_eq!(gen1.size(), 3);
        vec![comm.salt(), split_child.salt(), gen0.salt(), gen1.salt(), post_split.salt()]
    });
    // All ranks agree on every derived salt...
    assert_eq!(out[0], out[1]);
    assert_eq!(out[0], out[2]);
    // ...and the five streams are pairwise distinct.
    let salts = &out[0];
    for i in 0..salts.len() {
        for j in (i + 1)..salts.len() {
            assert_ne!(
                salts[i], salts[j],
                "salt stream aliasing between communicators {i} and {j}: {salts:?}"
            );
        }
    }
}

#[test]
fn recv_from_a_dead_rank_fails_typed_but_buffered_sends_survive() {
    // A message posted before the sender's death is still deliverable
    // (buffered send, as in MPI); once the stream is drained, further recvs
    // fail with RankFailed instead of hanging until the deadlock timeout.
    let plan = FaultPlan::ideal(7).with_crash_at_collective(0, 0);
    let out = Universe::run_with_plan(2, plan, |comm| {
        if comm.rank() == 0 {
            comm.send_u64s(1, 3, &[41, 42]);
            let died = comm.barrier(); // crash point: dies instead of joining
            (Vec::new(), died.err())
        } else {
            let payload = comm.recv_u64s(0, 3).unwrap();
            let starved = comm.recv_u64s(0, 3);
            (payload, starved.err())
        }
    });
    assert_eq!(out[0].1, Some(CommError::RankFailed { rank: 0 }));
    assert_eq!(out[1].0, vec![41, 42]);
    assert_eq!(out[1].1, Some(CommError::RankFailed { rank: 0 }));
}

// ----------------------------------------------------------------------
// Elastic grow
// ----------------------------------------------------------------------

use crate::ElasticRank;

#[test]
fn grow_admits_standbys_in_world_rank_order() {
    let out = Universe::run_elastic(2, 2, FaultPlan::ideal(3), |role| {
        let comm = match role {
            ElasticRank::Founding(comm) => {
                assert_eq!(comm.size(), 2);
                comm.grow(2).unwrap()
            }
            ElasticRank::Standby(s) => s.wait_admission().unwrap(),
        };
        assert_eq!(comm.size(), 4);
        assert_eq!(comm.members(), &[0, 1, 2, 3]);
        // The grown communicator is fully functional: a collective over all
        // four members (incumbents and newcomers in lockstep).
        let sum = comm.allreduce_sum_u64(&[comm.world_rank() as u64]).unwrap();
        assert_eq!(sum, vec![6]);
        (comm.rank(), comm.world_rank())
    });
    assert_eq!(out, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
}

#[test]
fn grow_with_exhausted_pool_admits_fewer() {
    // Requesting more ranks than the standby pool holds admits what exists.
    let out = Universe::run_elastic(1, 1, FaultPlan::ideal(4), |role| match role {
        ElasticRank::Founding(comm) => comm.grow(3).unwrap().size(),
        ElasticRank::Standby(s) => s.wait_admission().unwrap().size(),
    });
    assert_eq!(out, vec![2, 2]);
}

#[test]
fn unadmitted_standbys_fail_like_dead_ranks() {
    // A world that never grows releases its standbys at the end; their
    // wait_admission reports RankFailed with their own world rank — the
    // same shape the drivers already map to a dead outcome.
    let out = Universe::run_elastic(1, 2, FaultPlan::ideal(5), |role| match role {
        ElasticRank::Founding(comm) => {
            comm.barrier().unwrap();
            None
        }
        ElasticRank::Standby(s) => {
            let wr = s.world_rank();
            let e = s.wait_admission().err();
            assert_eq!(e.as_ref().and_then(CommError::failed_rank), Some(wr));
            Some(wr)
        }
    });
    assert_eq!(out, vec![None, Some(1), Some(2)]);
}

#[test]
fn grow_extra_mismatch_poisons_the_communicator() {
    let out = Universe::run_elastic(2, 1, FaultPlan::ideal(6), |role| match role {
        ElasticRank::Founding(comm) => {
            let extra = if comm.rank() == 0 { 1 } else { 2 };
            comm.grow(extra).err().map(|e| matches!(e, CommError::Poisoned { .. }))
        }
        ElasticRank::Standby(s) => {
            // The poisoned grow never admits anyone; the standby is
            // released when the founding ranks exit.
            assert!(s.wait_admission().is_err());
            None
        }
    });
    assert_eq!(out[0], Some(true));
    assert_eq!(out[1], Some(true));
}

#[test]
fn grow_excuses_a_member_that_dies_at_the_boundary() {
    // Rank 1's crash fires at the grow checkpoint: it dies instead of
    // joining, the grow completes over the survivors, and the admitted
    // standby takes the freed communicator rank.
    let plan = FaultPlan::ideal(8).with_crash_at_collective(1, 0);
    let out = Universe::run_elastic(2, 1, plan, |role| match role {
        ElasticRank::Founding(comm) => {
            if comm.rank() == 1 {
                return comm.grow(1).err().and_then(|e| e.failed_rank());
            }
            let g = comm.grow(1).unwrap();
            assert_eq!(g.size(), 2);
            assert_eq!(g.members(), &[0, 2]);
            None
        }
        ElasticRank::Standby(s) => {
            let g = s.wait_admission().unwrap();
            assert_eq!(g.rank(), 1);
            assert_eq!(g.members(), &[0, 2]);
            None
        }
    });
    assert_eq!(out[1], Some(1));
}

#[test]
fn grown_comm_and_split_children_use_independent_salts() {
    // Regression (satellite b, elastic mirror of the shrink aliasing test):
    // split children of a *grown* communicator must draw hash streams
    // independent of the parent, of pre-grow split children, of the grow
    // generation itself, and of a subsequent shrink — otherwise post-grow
    // delay schedules silently replay pre-grow ones.
    let plan = FaultPlan::ideal(23).with_collective_delay(4, 20);
    let out = Universe::run_elastic(2, 1, plan, |role| match role {
        ElasticRank::Founding(comm) => {
            let pre_split = comm.split(0, comm.rank() as i64).unwrap();
            let gen0 = comm.grow(1).unwrap();
            assert_eq!(gen0.size(), 3);
            let gen1 = gen0.grow(0).unwrap();
            let post_split = gen0.split(0, gen0.rank() as i64).unwrap();
            let shrunk = gen0.shrink().unwrap(); // nobody dead: full membership
            vec![
                comm.salt(),
                pre_split.salt(),
                gen0.salt(),
                gen1.salt(),
                post_split.salt(),
                shrunk.salt(),
            ]
        }
        ElasticRank::Standby(s) => {
            let gen0 = s.wait_admission().unwrap();
            assert_eq!(gen0.rank(), 2);
            let gen1 = gen0.grow(0).unwrap();
            let post_split = gen0.split(0, gen0.rank() as i64).unwrap();
            let shrunk = gen0.shrink().unwrap();
            vec![gen0.salt(), gen1.salt(), post_split.salt(), shrunk.salt()]
        }
    });
    // All members agree on every stream they share...
    assert_eq!(out[0], out[1]);
    assert_eq!(out[2], out[0][2..].to_vec());
    // ...and the six streams are pairwise distinct.
    let salts = &out[0];
    for i in 0..salts.len() {
        for j in (i + 1)..salts.len() {
            assert_ne!(
                salts[i], salts[j],
                "salt stream aliasing between communicators {i} and {j}: {salts:?}"
            );
        }
    }
}
