//! Integration tests of the simulated MPI runtime.

use crate::{Communicator, FaultPlan, ReduceOp, Universe};

#[test]
fn world_size_and_ranks() {
    let ranks = Universe::run(4, |comm| {
        assert_eq!(comm.size(), 4);
        comm.rank()
    });
    assert_eq!(ranks, vec![0, 1, 2, 3]);
}

#[test]
fn single_rank_world() {
    let out = Universe::run(1, |comm| {
        comm.barrier();
        let r = comm.reduce_sum_u64(0, &[1, 2, 3]);
        assert_eq!(r, Some(vec![1, 2, 3]));
        comm.bcast_u64(0, Some(9))
    });
    assert_eq!(out, vec![9]);
}

#[test]
fn barrier_synchronizes() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let before = AtomicUsize::new(0);
    Universe::run(6, |comm| {
        // Relaxed suffices: the barrier itself is the synchronization under
        // test, and it must order these accesses for the assert to hold.
        before.fetch_add(1, Ordering::Relaxed);
        comm.barrier();
        // After the barrier every rank must observe all six arrivals.
        assert_eq!(before.load(Ordering::Relaxed), 6);
    });
}

#[test]
fn reduce_sum_vectors() {
    let out = Universe::run(5, |comm| {
        let data = vec![comm.rank() as u64; 4];
        comm.reduce_sum_u64(2, &data)
    });
    for (rank, r) in out.iter().enumerate() {
        if rank == 2 {
            assert_eq!(r.as_deref(), Some(&[10u64, 10, 10, 10][..]));
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn ireduce_overlaps_with_computation() {
    let out = Universe::run(4, |comm| {
        let data = vec![1u64, comm.rank() as u64];
        let mut req = comm.ireduce_sum_u64(0, &data);
        // Simulated "overlapped sampling": spin on test() doing local work.
        let mut local_work = 0u64;
        while !req.test() {
            local_work += 1;
            std::hint::spin_loop();
        }
        (req.into_result().unwrap(), local_work)
    });
    assert_eq!(out[0].0, Some(vec![4, 1 + 2 + 3]));
    for r in &out[1..] {
        assert_eq!(r.0, None);
    }
}

#[test]
fn scalar_reductions() {
    let out = Universe::run(4, |comm| {
        let v = comm.rank() as u64 + 1;
        (
            comm.reduce_scalar_u64(0, ReduceOp::Sum, v),
            comm.reduce_scalar_u64(0, ReduceOp::Min, v),
            comm.reduce_scalar_u64(0, ReduceOp::Max, v),
        )
    });
    assert_eq!(out[0], (Some(10), Some(1), Some(4)));
    assert_eq!(out[1], (None, None, None));
}

#[test]
fn allreduce_gives_everyone_the_result() {
    let out =
        Universe::run(3, |comm| comm.allreduce_scalar_u64(ReduceOp::Max, comm.rank() as u64 * 7));
    assert_eq!(out, vec![14, 14, 14]);
}

#[test]
fn broadcast_from_nonzero_root() {
    let out = Universe::run(4, |comm| {
        let v = if comm.rank() == 3 { Some(42) } else { None };
        comm.bcast_u64(3, v)
    });
    assert_eq!(out, vec![42; 4]);
}

#[test]
fn ibcast_bool_termination_flag() {
    let out = Universe::run(3, |comm| {
        let v = if comm.rank() == 0 { Some(true) } else { None };
        let mut req = comm.ibcast_bool(0, v);
        let mut spins = 0u64;
        while !req.test() {
            spins += 1;
            std::hint::spin_loop();
        }
        req.into_result().unwrap() != 0 && spins < u64::MAX
    });
    assert_eq!(out, vec![true; 3]);
}

#[test]
fn multiple_sequential_collectives_keep_order() {
    let out = Universe::run(3, |comm| {
        let mut results = Vec::new();
        for round in 0..10u64 {
            let r = comm.allreduce_scalar_u64(ReduceOp::Sum, round + comm.rank() as u64);
            results.push(r);
        }
        results
    });
    for r in out {
        for (round, v) in r.iter().enumerate() {
            assert_eq!(*v, 3 * round as u64 + 3); // 0+1+2 + 3*round
        }
    }
}

#[test]
fn split_into_node_local_and_leader_comms() {
    // 8 ranks, 2 per "node" -> 4 nodes; reproduce Section IV-E's layout.
    let out = Universe::run(8, |comm| {
        let node = (comm.rank() / 2) as u32;
        let local = comm.split(node, comm.rank() as i64);
        assert_eq!(local.size(), 2);
        let local_sum = local.allreduce_scalar_u64(ReduceOp::Sum, comm.rank() as u64);

        // Leader communicator: the first rank of each node gets color 0,
        // everyone else color 1 (they never use theirs).
        let is_leader = local.rank() == 0;
        let leaders = comm.split(u32::from(!is_leader), comm.rank() as i64);
        let leader_sum = if is_leader {
            Some(leaders.allreduce_scalar_u64(ReduceOp::Sum, local_sum))
        } else {
            None
        };
        (local.rank(), local_sum, leader_sum)
    });
    for (rank, (local_rank, local_sum, leader_sum)) in out.iter().enumerate() {
        assert_eq!(*local_rank, rank % 2);
        let node = rank / 2;
        assert_eq!(*local_sum, (2 * node) as u64 + (2 * node + 1) as u64);
        if rank % 2 == 0 {
            // Sum over node sums: 1 + 5 + 9 + 13 = 28.
            assert_eq!(*leader_sum, Some(28));
        } else {
            assert!(leader_sum.is_none());
        }
    }
}

#[test]
fn split_orders_by_key() {
    let out = Universe::run(4, |comm| {
        // Reverse the rank order via the key.
        let sub = comm.split(0, -(comm.rank() as i64));
        sub.rank()
    });
    assert_eq!(out, vec![3, 2, 1, 0]);
}

#[test]
fn bytes_are_accounted() {
    let out = Universe::run(2, |comm| {
        let data = vec![0u64; 100];
        comm.reduce_sum_u64(0, &data);
        comm.barrier();
        comm.bytes_transferred()
    });
    // 2 ranks * 100 u64 = 1600 bytes for the reduce; barrier adds none.
    assert_eq!(out[0], 1600);
    assert_eq!(out[1], 1600);
}

#[test]
#[should_panic]
fn collective_kind_mismatch_is_detected() {
    // Suppress the noisy double-panic output from the second rank.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(|| {
        Universe::run(2, |comm: Communicator| {
            if comm.rank() == 0 {
                comm.barrier();
            } else {
                comm.reduce_scalar_u64(0, ReduceOp::Sum, 1);
            }
        });
    });
    std::panic::set_hook(prev_hook);
    assert!(result.is_err());
    panic!("propagate for should_panic");
}

#[test]
fn nested_splits() {
    let out = Universe::run(8, |comm| {
        let half = comm.split((comm.rank() / 4) as u32, comm.rank() as i64);
        let quarter = half.split((half.rank() / 2) as u32, half.rank() as i64);
        (half.size(), quarter.size(), quarter.rank())
    });
    for (rank, &(h, q, qr)) in out.iter().enumerate() {
        assert_eq!(h, 4);
        assert_eq!(q, 2);
        assert_eq!(qr, rank % 2);
    }
}

#[test]
fn large_vector_reduce() {
    let n = 100_000;
    let out = Universe::run(3, |comm| {
        let data = vec![comm.rank() as u64 + 1; n];
        comm.reduce_sum_u64(0, &data)
    });
    let root = out[0].as_ref().unwrap();
    assert_eq!(root.len(), n);
    assert!(root.iter().all(|&x| x == 6));
}

#[test]
fn many_rounds_of_ibarrier_plus_reduce() {
    // The paper's Section IV-F pattern: non-blocking barrier, then blocking
    // reduce, repeated for many epochs.
    let rounds = 50u64;
    let out = Universe::run(4, |comm| {
        let mut collected = 0u64;
        for round in 0..rounds {
            let mut bar = comm.ibarrier();
            let mut local = 0u64;
            while !bar.test() {
                local += 1; // overlapped "sampling"
            }
            let r = comm.reduce_sum_u64(0, &[round + comm.rank() as u64, local]);
            if let Some(v) = r {
                collected += v[0];
            }
        }
        collected
    });
    // Root collected sum over rounds of (4*round + 0+1+2+3).
    let expect: u64 = (0..rounds).map(|r| 4 * r + 6).sum();
    assert_eq!(out[0], expect);
}

#[test]
fn allreduce_vectors() {
    let out = Universe::run(3, |comm| {
        let data = vec![comm.rank() as u64, 10];
        comm.allreduce_sum_u64(&data)
    });
    for r in out {
        assert_eq!(r, vec![3, 30]);
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

#[test]
fn collectives_stay_correct_under_a_fault_plan() {
    // Delays and stragglers perturb *when* ranks observe completion, never
    // *what* a collective computes.
    let plan = FaultPlan::ideal(1).with_collective_delay(1, 12).with_straggler(1, 5);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let sum = comm.allreduce_scalar_u64(ReduceOp::Sum, comm.rank() as u64);
        let r = comm.reduce_sum_u64(0, &[1, comm.rank() as u64]);
        let b = comm.bcast_u64(2, (comm.rank() == 2).then_some(77));
        (sum, r, b)
    });
    for (rank, (sum, r, b)) in out.iter().enumerate() {
        assert_eq!(*sum, 6);
        assert_eq!(*b, 77);
        if rank == 0 {
            assert_eq!(r.as_deref(), Some(&[4u64, 6][..]));
        } else {
            assert!(r.is_none());
        }
    }
}

#[test]
fn overlap_counts_are_plan_deterministic() {
    // Under a plan, the number of times test() returns false — i.e. the
    // number of overlapped samples each rank would take — is a pure
    // function of (plan, rank, seq): identical across runs, unlike the
    // free-running mode where it depends on OS scheduling.
    let plan = FaultPlan::ideal(33).with_collective_delay(2, 40).with_straggler(2, 3);
    let run = || {
        Universe::run_with_plan(4, plan.clone(), |comm| {
            let mut polls = Vec::new();
            for round in 0..6u64 {
                let mut req = comm.ireduce_sum_u64(0, &[round]);
                let mut n = 0u64;
                while !req.test() {
                    n += 1;
                }
                polls.push(n);
            }
            polls
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "overlap counts must replay bit-identically: {}", plan.summary());
    // The injected delays actually bite (some rank polls more than zero
    // times) and respect the configured ceiling for non-stragglers.
    assert!(a.iter().flatten().any(|&n| n > 0), "plan injected nothing: {a:?}");
    for (rank, polls) in a.iter().enumerate() {
        let cap = if rank == 2 { 40 * 3 } else { 40 };
        assert!(polls.iter().all(|&n| n <= cap), "rank {rank} over cap: {polls:?}");
    }
}

#[test]
fn straggler_delays_peer_completion_observably() {
    // A straggler's big injected delay shows up in ITS OWN poll count; its
    // peers just block in wait() until it resolves — no deadlock panic,
    // because the engine scales its timeout by the plan's max latency.
    let plan = FaultPlan::ideal(5).with_collective_delay(10, 10).with_straggler(3, 20);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let mut req = comm.ibarrier();
        let mut n = 0u64;
        while !req.test() {
            n += 1;
        }
        req.wait();
        n
    });
    assert_eq!(out[3], 200, "straggler factor must scale its poll count");
    assert!(out[..3].iter().all(|&n| n == 10));
}

#[test]
fn split_children_inherit_the_plan() {
    let plan = FaultPlan::ideal(8).with_collective_delay(1, 30);
    let out = Universe::run_with_plan(4, plan, |comm| {
        let sub = comm.split(u32::try_from(comm.rank() % 2).unwrap_or(0), 0);
        assert!(sub.fault_plan().is_some(), "child communicator lost the plan");
        // Child collectives are also delayed deterministically.
        let mut req = sub.ibarrier();
        let mut n = 0u64;
        while !req.test() {
            n += 1;
        }
        req.wait();
        n
    });
    assert!(out.iter().any(|&n| n > 0), "child communicator saw no injected delay");
}
