//! Point-to-point messaging and gather collectives.
//!
//! The paper's algorithms use collectives exclusively, but a credible MPI
//! substrate needs the point-to-point layer too (and the experiment CLI
//! uses `gather` to collect distributed score vectors). Matching follows
//! MPI semantics: messages between a (sender, receiver, tag) triple are
//! non-overtaking (FIFO); `send` is buffered (never blocks); `recv` blocks
//! until a matching message arrives — or fails with a typed
//! [`CommError`]: `RankFailed` once the awaited source is declared dead
//! with nothing pending, `Timeout` when the deadlock budget runs out.

use crate::comm::Communicator;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::health::WorldHealth;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Re-check period of a blocking receive (matches the engine's wait slice):
/// each slice the receiver re-examines pending messages and the sender's
/// liveness.
const RECV_SLICE: Duration = Duration::from_millis(5);

/// One (src, dst, tag) message stream. Each posted message gets a send
/// index and a *delivery slot* (slot = index, unless a fault plan displaces
/// it by a bounded jitter); `take` always pops the pending message with the
/// smallest `(slot, index)`.
///
/// Without a plan (or with zero jitter) slots equal indices and this is
/// exactly MPI's non-overtaking FIFO. With jitter, delivery is the
/// deterministic slot-sorted permutation of whatever is pending — fully
/// reproducible whenever the receiver's `recv`s are ordered after the sends
/// (barrier, collective, or request completion in between); under a live
/// send/recv race the *set* delivered is unchanged and only the
/// plan-chosen permutation can shrink toward FIFO.
#[derive(Default)]
struct Stream {
    /// Messages posted so far (the next message's send index).
    sent: u64,
    /// (delivery slot, send index) -> payload; `take` pops the minimum.
    pending: BTreeMap<(u64, u64), Vec<u64>>,
}

/// (src, dst, tag) -> message stream.
type QueueMap = HashMap<(usize, usize, u64), Stream>;

/// Message mailbox shared by all ranks of a communicator.
pub(crate) struct Mailbox {
    queues: Mutex<QueueMap>,
    cv: Condvar,
    /// Fault plan shared with the owning engine (None = plain FIFO).
    plan: Option<Arc<FaultPlan>>,
    /// The owning communicator's plan-hash salt.
    salt: u64,
    /// Deadlock budget, already scaled by the plan's worst injected latency.
    timeout: Duration,
    /// World rank of each member (indexed by communicator rank), for
    /// dead-sender detection.
    members: Vec<usize>,
    /// Liveness registry shared with the owning engine.
    health: Arc<WorldHealth>,
}

impl Mailbox {
    pub(crate) fn new(
        plan: Option<Arc<FaultPlan>>,
        salt: u64,
        timeout: Duration,
        members: Vec<usize>,
        health: Arc<WorldHealth>,
    ) -> Arc<Self> {
        Arc::new(Mailbox {
            queues: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            plan,
            salt,
            timeout,
            members,
            health,
        })
    }

    /// The `(plan, seed)` replay pair for failure diagnostics.
    fn replay(&self) -> String {
        match &self.plan {
            Some(p) => p.summary(),
            None => "plan: none (free-running)".to_string(),
        }
    }

    fn post(&self, src: usize, dst: usize, tag: u64, payload: Vec<u64>) {
        let mut q = self.queues.lock();
        let stream = q.entry((src, dst, tag)).or_default();
        let idx = stream.sent;
        stream.sent += 1;
        let slot = match &self.plan {
            Some(p) => p.p2p_slot(self.salt, src, dst, tag, idx),
            None => idx,
        };
        stream.pending.insert((slot, idx), payload);
        self.cv.notify_all();
    }

    /// Pops the minimum pending `(slot, index)` and returns it with the
    /// payload, so the receiver's tracer can record the delivery slot.
    ///
    /// Pending messages win over a dead sender (a buffered send survives the
    /// sender's crash, as in MPI); only an *empty* stream from a dead source
    /// fails, because nothing new can ever be posted.
    fn take(&self, src: usize, dst: usize, tag: u64) -> Result<((u64, u64), Vec<u64>), CommError> {
        let mut q = self.queues.lock();
        let mut waited = Duration::ZERO;
        loop {
            if let Some(stream) = q.get_mut(&(src, dst, tag)) {
                if let Some((&key, _)) = stream.pending.iter().next() {
                    // xtask: allow(unwrap) — `key` was just observed present
                    // and the map is under the same lock.
                    let payload = stream.pending.remove(&key).expect("pending message present");
                    return Ok((key, payload));
                }
            }
            let src_world = self.members[src];
            if self.health.is_dead(src_world) {
                return Err(CommError::RankFailed { rank: src_world });
            }
            if self.cv.wait_for(&mut q, RECV_SLICE).timed_out() {
                waited += RECV_SLICE;
                if waited >= self.timeout {
                    return Err(CommError::Timeout {
                        op: format!(
                            "recv from rank {src} to rank {dst} with tag {tag}: no message \
                             after {:?}",
                            self.timeout
                        ),
                        replay: self.replay(),
                    });
                }
            }
        }
    }

    fn probe(&self, src: usize, dst: usize, tag: u64) -> bool {
        let q = self.queues.lock();
        q.get(&(src, dst, tag)).is_some_and(|stream| !stream.pending.is_empty())
    }
}

impl Communicator {
    /// Buffered send of a `u64` payload to `dst` with a message `tag`
    /// (`MPI_Send` with an eager/buffered protocol — never blocks).
    pub fn send_u64s(&self, dst: usize, tag: u64, payload: &[u64]) {
        assert!(dst < self.size(), "destination out of range");
        self.engine_add_bytes(payload.len() as u64 * 8);
        self.mailbox().post(self.rank(), dst, tag, payload.to_vec());
    }

    /// Blocking receive of a message from `src` with `tag` (`MPI_Recv`).
    pub fn recv_u64s(&self, src: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        assert!(src < self.size(), "source out of range");
        let ((slot, _idx), payload) = self.mailbox().take(src, self.rank(), tag)?;
        self.trace_p2p(src, slot);
        Ok(payload)
    }

    /// Non-blocking probe: whether a message from `src` with `tag` is ready.
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.mailbox().probe(src, self.rank(), tag)
    }

    /// Gathers every rank's vector at `root` (`MPI_Gatherv`): the root
    /// receives all payloads ordered by rank; other ranks receive `None`.
    /// Implemented over point-to-point with a reserved tag space.
    pub fn gather_u64s(
        &self,
        root: usize,
        payload: &[u64],
    ) -> Result<Option<Vec<Vec<u64>>>, CommError> {
        assert!(root < self.size(), "root out of range");
        const GATHER_TAG: u64 = u64::MAX - 0xA1;
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(payload.to_vec());
                } else {
                    out.push(self.recv_u64s(src, GATHER_TAG)?);
                }
            }
            Ok(Some(out))
        } else {
            self.send_u64s(root, GATHER_TAG, payload);
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{FaultPlan, Universe};

    #[test]
    fn send_recv_roundtrip() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 7, &[1, 2, 3]);
                Vec::new()
            } else {
                comm.recv_u64s(0, 7).unwrap()
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }

    #[test]
    fn messages_are_fifo_per_tag() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send_u64s(1, 1, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv_u64s(0, 1).unwrap()[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 100, &[100]);
                comm.send_u64s(1, 200, &[200]);
                (0, 0)
            } else {
                // Receive in reverse send order; tags keep them apart.
                let b = comm.recv_u64s(0, 200).unwrap()[0];
                let a = comm.recv_u64s(0, 100).unwrap()[0];
                (a, b)
            }
        });
        assert_eq!(out[1], (100, 200));
    }

    #[test]
    fn probe_reflects_availability() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 5, &[42]);
                comm.barrier().unwrap();
                true
            } else {
                comm.barrier().unwrap(); // ensure the message has been posted
                let ready = comm.probe(0, 5);
                let v = comm.recv_u64s(0, 5).unwrap();
                ready && v == vec![42] && !comm.probe(0, 5)
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(4, |comm| {
            let mine = vec![comm.rank() as u64; comm.rank() + 1];
            comm.gather_u64s(2, &mine).unwrap()
        });
        let g = out[2].as_ref().unwrap();
        assert_eq!(g.len(), 4);
        for (rank, payload) in g.iter().enumerate() {
            assert_eq!(payload.len(), rank + 1);
            assert!(payload.iter().all(|&x| x == rank as u64));
        }
        for (rank, o) in out.iter().enumerate() {
            if rank != 2 {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn cross_traffic_between_many_ranks() {
        let out = Universe::run(4, |comm| {
            // Everyone sends its rank to everyone else, then sums receipts.
            for dst in 0..comm.size() {
                if dst != comm.rank() {
                    comm.send_u64s(dst, 9, &[comm.rank() as u64]);
                }
            }
            let mut sum = 0;
            for src in 0..comm.size() {
                if src != comm.rank() {
                    sum += comm.recv_u64s(src, 9).unwrap()[0];
                }
            }
            sum
        });
        for (rank, &sum) in out.iter().enumerate() {
            assert_eq!(sum, 6 - rank as u64); // 0+1+2+3 minus own rank
        }
    }

    #[test]
    fn self_send_is_delivered() {
        // MPI allows a rank to message itself (buffered send never blocks,
        // so this cannot deadlock); FIFO applies to the self-stream too.
        let out = Universe::run(2, |comm| {
            comm.send_u64s(comm.rank(), 3, &[10]);
            comm.send_u64s(comm.rank(), 3, &[20]);
            let a = comm.recv_u64s(comm.rank(), 3).unwrap()[0];
            let b = comm.recv_u64s(comm.rank(), 3).unwrap()[0];
            (a, b)
        });
        assert_eq!(out, vec![(10, 20), (10, 20)]);
    }

    #[test]
    fn split_communicators_have_isolated_mailboxes() {
        // The same (src=0, dst=1, tag) triple in the parent and in a child
        // communicator must address different streams: a message posted on
        // the world mailbox is invisible to the child and vice versa.
        let out = Universe::run(4, |comm| {
            let sub = comm.split(u32::try_from(comm.rank() % 2).unwrap_or(0), 0).unwrap();
            // World traffic: 0 -> 1. Child traffic (color 0: world ranks
            // {0, 2} as sub ranks {0, 1}): sub 0 -> sub 1 with the SAME tag.
            if comm.rank() == 0 {
                comm.send_u64s(1, 7, &[111]);
                sub.send_u64s(1, 7, &[222]);
            }
            comm.barrier().unwrap();
            match comm.rank() {
                1 => comm.recv_u64s(0, 7).unwrap()[0],
                2 => sub.recv_u64s(0, 7).unwrap()[0],
                _ => 0,
            }
        });
        assert_eq!(out[1], 111, "world message must stay on the world mailbox");
        assert_eq!(out[2], 222, "child message must stay on the child mailbox");
    }

    #[test]
    fn fault_plan_reorders_p2p_deterministically() {
        let plan = FaultPlan::ideal(42).with_p2p_jitter(3);
        let run = || {
            Universe::run_with_plan(2, plan.clone(), |comm| {
                if comm.rank() == 0 {
                    for i in 0..32u64 {
                        comm.send_u64s(1, 1, &[i]);
                    }
                    comm.barrier().unwrap();
                    Vec::new()
                } else {
                    comm.barrier().unwrap(); // all messages pending before any recv
                    (0..32).map(|_| comm.recv_u64s(0, 1).unwrap()[0]).collect::<Vec<u64>>()
                }
            })
        };
        let a = run();
        // All messages delivered exactly once...
        let mut sorted = a[1].clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u64>>());
        // ...in a genuinely perturbed order...
        assert_ne!(a[1], (0..32).collect::<Vec<u64>>(), "jitter produced no reorder");
        // ...with bounded displacement (a message overtakes at most
        // `jitter` logically-earlier messages)...
        for (pos, &v) in a[1].iter().enumerate() {
            assert!(
                (pos as u64).abs_diff(v) <= 3,
                "message {v} displaced to position {pos}: beyond jitter bound"
            );
        }
        // ...and the permutation replays identically from (plan, seed).
        assert_eq!(a[1], run()[1], "p2p reorder not reproducible: {}", plan.summary());
    }

    #[test]
    fn ideal_plan_keeps_p2p_fifo() {
        let out = Universe::run_with_plan(2, FaultPlan::ideal(9), |comm| {
            if comm.rank() == 0 {
                for i in 0..16u64 {
                    comm.send_u64s(1, 4, &[i]);
                }
                Vec::new()
            } else {
                (0..16).map(|_| comm.recv_u64s(0, 4).unwrap()[0]).collect()
            }
        });
        assert_eq!(out[1], (0..16).collect::<Vec<u64>>());
    }
}
