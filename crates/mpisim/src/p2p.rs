//! Point-to-point messaging and gather collectives.
//!
//! The paper's algorithms use collectives exclusively, but a credible MPI
//! substrate needs the point-to-point layer too (and the experiment CLI
//! uses `gather` to collect distributed score vectors). Matching follows
//! MPI semantics: messages between a (sender, receiver, tag) triple are
//! non-overtaking (FIFO); `send` is buffered (never blocks); `recv` blocks
//! until a matching message arrives.

use crate::comm::Communicator;
use crate::engine::DEADLOCK_TIMEOUT;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// (src, dst, tag) -> FIFO of payloads.
type QueueMap = HashMap<(usize, usize, u64), VecDeque<Vec<u64>>>;

/// Message mailbox shared by all ranks of a communicator.
pub(crate) struct Mailbox {
    queues: Mutex<QueueMap>,
    cv: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Mailbox { queues: Mutex::new(HashMap::new()), cv: Condvar::new() })
    }

    fn post(&self, src: usize, dst: usize, tag: u64, payload: Vec<u64>) {
        let mut q = self.queues.lock();
        q.entry((src, dst, tag)).or_default().push_back(payload);
        self.cv.notify_all();
    }

    fn take(&self, src: usize, dst: usize, tag: u64) -> Vec<u64> {
        let mut q = self.queues.lock();
        loop {
            if let Some(queue) = q.get_mut(&(src, dst, tag)) {
                if let Some(payload) = queue.pop_front() {
                    return payload;
                }
            }
            if self.cv.wait_for(&mut q, DEADLOCK_TIMEOUT).timed_out() {
                panic!(
                    "recv deadlock: no message from rank {src} to rank {dst} with tag {tag} \
                     after {DEADLOCK_TIMEOUT:?}"
                );
            }
        }
    }

    fn probe(&self, src: usize, dst: usize, tag: u64) -> bool {
        let q = self.queues.lock();
        q.get(&(src, dst, tag)).is_some_and(|queue| !queue.is_empty())
    }
}

impl Communicator {
    /// Buffered send of a `u64` payload to `dst` with a message `tag`
    /// (`MPI_Send` with an eager/buffered protocol — never blocks).
    pub fn send_u64s(&self, dst: usize, tag: u64, payload: &[u64]) {
        assert!(dst < self.size(), "destination out of range");
        self.engine_add_bytes(payload.len() as u64 * 8);
        self.mailbox().post(self.rank(), dst, tag, payload.to_vec());
    }

    /// Blocking receive of a message from `src` with `tag` (`MPI_Recv`).
    pub fn recv_u64s(&self, src: usize, tag: u64) -> Vec<u64> {
        assert!(src < self.size(), "source out of range");
        self.mailbox().take(src, self.rank(), tag)
    }

    /// Non-blocking probe: whether a message from `src` with `tag` is ready.
    pub fn probe(&self, src: usize, tag: u64) -> bool {
        self.mailbox().probe(src, self.rank(), tag)
    }

    /// Gathers every rank's vector at `root` (`MPI_Gatherv`): the root
    /// receives all payloads ordered by rank; other ranks receive `None`.
    /// Implemented over point-to-point with a reserved tag space.
    pub fn gather_u64s(&self, root: usize, payload: &[u64]) -> Option<Vec<Vec<u64>>> {
        assert!(root < self.size(), "root out of range");
        const GATHER_TAG: u64 = u64::MAX - 0xA1;
        if self.rank() == root {
            let mut out = Vec::with_capacity(self.size());
            for src in 0..self.size() {
                if src == root {
                    out.push(payload.to_vec());
                } else {
                    out.push(self.recv_u64s(src, GATHER_TAG));
                }
            }
            Some(out)
        } else {
            self.send_u64s(root, GATHER_TAG, payload);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Universe;

    #[test]
    fn send_recv_roundtrip() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 7, &[1, 2, 3]);
                Vec::new()
            } else {
                comm.recv_u64s(0, 7)
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }

    #[test]
    fn messages_are_fifo_per_tag() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..10u64 {
                    comm.send_u64s(1, 1, &[i]);
                }
                Vec::new()
            } else {
                (0..10).map(|_| comm.recv_u64s(0, 1)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn tags_demultiplex() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 100, &[100]);
                comm.send_u64s(1, 200, &[200]);
                (0, 0)
            } else {
                // Receive in reverse send order; tags keep them apart.
                let b = comm.recv_u64s(0, 200)[0];
                let a = comm.recv_u64s(0, 100)[0];
                (a, b)
            }
        });
        assert_eq!(out[1], (100, 200));
    }

    #[test]
    fn probe_reflects_availability() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_u64s(1, 5, &[42]);
                comm.barrier();
                true
            } else {
                comm.barrier(); // ensure the message has been posted
                let ready = comm.probe(0, 5);
                let v = comm.recv_u64s(0, 5);
                ready && v == vec![42] && !comm.probe(0, 5)
            }
        });
        assert!(out[1]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(4, |comm| {
            let mine = vec![comm.rank() as u64; comm.rank() + 1];
            comm.gather_u64s(2, &mine)
        });
        let g = out[2].as_ref().unwrap();
        assert_eq!(g.len(), 4);
        for (rank, payload) in g.iter().enumerate() {
            assert_eq!(payload.len(), rank + 1);
            assert!(payload.iter().all(|&x| x == rank as u64));
        }
        for (rank, o) in out.iter().enumerate() {
            if rank != 2 {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn cross_traffic_between_many_ranks() {
        let out = Universe::run(4, |comm| {
            // Everyone sends its rank to everyone else, then sums receipts.
            for dst in 0..comm.size() {
                if dst != comm.rank() {
                    comm.send_u64s(dst, 9, &[comm.rank() as u64]);
                }
            }
            let mut sum = 0;
            for src in 0..comm.size() {
                if src != comm.rank() {
                    sum += comm.recv_u64s(src, 9)[0];
                }
            }
            sum
        });
        for (rank, &sum) in out.iter().enumerate() {
            assert_eq!(sum, 6 - rank as u64); // 0+1+2+3 minus own rank
        }
    }
}
