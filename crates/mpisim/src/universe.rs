//! Launching a simulated MPI world.

use crate::comm::Communicator;
use crate::engine::Engine;
use crate::fault::FaultPlan;
use crate::health::RankCrashState;
use std::sync::Arc;

/// Entry point of the simulated MPI runtime, analogous to
/// `MPI_Init`/`mpirun`.
pub struct Universe;

impl Universe {
    /// Runs `f` in `world_size` simulated MPI processes (one OS thread
    /// each), handing each its `MPI_COMM_WORLD` [`Communicator`]. Returns
    /// the per-rank results, ordered by rank.
    ///
    /// Panics in any rank propagate (with the rank number) after all other
    /// ranks are either finished or deadlock-timed out.
    pub fn run<T, F>(world_size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        Universe::launch(Engine::new(world_size), world_size, None, f)
    }

    /// Like [`Universe::run`], but the world executes under a deterministic
    /// [`FaultPlan`]: collectives complete with plan-injected delays, p2p
    /// delivery follows the plan's slot permutation, every non-blocking
    /// request polls deterministically, and plan-scheduled rank crashes fire
    /// at their logical-clock coordinates — so two runs with the same
    /// `(plan, f)` produce bit-identical schedules (see the `fault` module
    /// docs). Communicators created by `split`/`shrink` inherit the plan
    /// with derived hash salts.
    ///
    /// A rank whose crash fires observes [`crate::CommError::RankFailed`]
    /// with its own world rank from the failing call onward; its closure
    /// must return through the error (the thread itself stays joinable —
    /// a "dead" rank is one that can no longer communicate).
    pub fn run_with_plan<T, F>(world_size: usize, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        let plan = Arc::new(plan);
        let engine = Engine::with_plan(world_size, Some(plan.clone()), 0);
        Universe::launch(engine, world_size, Some(plan), f)
    }

    fn launch<T, F>(
        engine: Arc<Engine>,
        world_size: usize,
        plan: Option<Arc<FaultPlan>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        assert!(world_size >= 1, "world must have at least one rank");
        let mut results: Vec<Option<T>> = (0..world_size).map(|_| None).collect();
        crossbeam::scope(|s| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let crash = plan
                        .as_ref()
                        .and_then(|p| p.crash_point(rank))
                        .map(|pt| RankCrashState::new(rank, pt, engine.health.clone()));
                    let comm = Communicator::new(engine.clone(), rank, crash);
                    let f = &f;
                    s.builder()
                        .name(format!("mpi-rank-{rank}"))
                        .spawn(move |_| {
                            *slot = Some(f(comm));
                        })
                        // xtask: allow(unwrap) — OS thread spawn only fails
                        // on resource exhaustion, which is unrecoverable for
                        // an in-process MPI world.
                        .expect("spawn rank thread")
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(Box::new(format!("rank {rank} panicked: {e:?}")));
                }
            }
        })
        // xtask: allow(unwrap) — every child is joined (and its panic
        // re-raised) inside the scope, so the scope itself cannot fail.
        .expect("mpi world scope");
        results
            .into_iter()
            // xtask: allow(unwrap) — each rank thread wrote its slot
            // before exiting, and all of them were joined above.
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    }
}
