//! Launching a simulated MPI world.

use crate::comm::Communicator;
use crate::engine::Engine;
use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::health::{RankCrashState, WorldHealth};
use std::sync::Arc;

/// Entry point of the simulated MPI runtime, analogous to
/// `MPI_Init`/`mpirun`.
pub struct Universe;

/// The role a rank is launched in by [`Universe::run_elastic`].
pub enum ElasticRank {
    /// A founding member: holds its `MPI_COMM_WORLD` handle from the start.
    Founding(Communicator),
    /// A standby: parked until some grow generation admits it (or the world
    /// ends without ever growing).
    Standby(StandbyRank),
}

/// A parked rank waiting to be admitted by a [`Communicator::grow`]. The
/// world rank is assigned at launch (founding ranks first, then standbys in
/// ascending order), so fault-plan crash schedules and hash streams are
/// fixed before the rank ever joins.
pub struct StandbyRank {
    world_rank: usize,
    health: Arc<WorldHealth>,
    crash: Option<Arc<RankCrashState>>,
}

impl StandbyRank {
    /// World rank this standby will hold if admitted.
    pub fn world_rank(&self) -> usize {
        self.world_rank
    }

    /// Blocks until a grow generation admits this rank, returning its handle
    /// on the grown communicator (already ranked after the incumbents).
    ///
    /// If the world finishes without admitting it, returns
    /// [`CommError::RankFailed`] carrying its *own* world rank — a standby
    /// that never joined is indistinguishable from a dead rank to the
    /// drivers, which already translate that error into a dead outcome.
    pub fn wait_admission(self) -> Result<Communicator, CommError> {
        match self.health.wait_admission(self.world_rank) {
            Some((engine, rank)) => Ok(Communicator::new(engine, rank, self.crash)),
            None => Err(CommError::RankFailed { rank: self.world_rank }),
        }
    }
}

impl Universe {
    /// Runs `f` in `world_size` simulated MPI processes (one OS thread
    /// each), handing each its `MPI_COMM_WORLD` [`Communicator`]. Returns
    /// the per-rank results, ordered by rank.
    ///
    /// Panics in any rank propagate (with the rank number) after all other
    /// ranks are either finished or deadlock-timed out.
    pub fn run<T, F>(world_size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        Universe::launch(Engine::new(world_size), world_size, None, f)
    }

    /// Like [`Universe::run`], but the world executes under a deterministic
    /// [`FaultPlan`]: collectives complete with plan-injected delays, p2p
    /// delivery follows the plan's slot permutation, every non-blocking
    /// request polls deterministically, and plan-scheduled rank crashes fire
    /// at their logical-clock coordinates — so two runs with the same
    /// `(plan, f)` produce bit-identical schedules (see the `fault` module
    /// docs). Communicators created by `split`/`shrink` inherit the plan
    /// with derived hash salts.
    ///
    /// A rank whose crash fires observes [`crate::CommError::RankFailed`]
    /// with its own world rank from the failing call onward; its closure
    /// must return through the error (the thread itself stays joinable —
    /// a "dead" rank is one that can no longer communicate).
    pub fn run_with_plan<T, F>(world_size: usize, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        let plan = Arc::new(plan);
        let engine = Engine::with_plan(world_size, Some(plan.clone()), 0);
        Universe::launch(engine, world_size, Some(plan), f)
    }

    /// Like [`Universe::run_with_plan`], but launches an *elastic* world:
    /// `founding` ranks start with communicator handles, and `standby`
    /// further ranks (world ranks `founding..founding + standby`) park in
    /// the health registry's standby pool until a [`Communicator::grow`]
    /// admits them. Returns all `founding + standby` results in world-rank
    /// order.
    ///
    /// Standbys that are never admitted are released when the last founding
    /// rank finishes; their [`StandbyRank::wait_admission`] then returns
    /// [`crate::CommError::RankFailed`] with their own world rank.
    pub fn run_elastic<T, F>(founding: usize, standby: usize, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(ElasticRank) -> T + Sync,
    {
        assert!(founding >= 1, "world must have at least one founding rank");
        let plan = Arc::new(plan);
        let engine = Engine::with_plan(founding, Some(plan.clone()), 0);
        for wr in founding..founding + standby {
            engine.health.register_standby(wr);
        }
        let total = founding + standby;
        let mut results: Vec<Option<T>> = (0..total).map(|_| None).collect();
        crossbeam::scope(|s| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(world_rank, slot)| {
                    let crash = plan
                        .crash_point(world_rank)
                        .map(|pt| RankCrashState::new(world_rank, pt, engine.health.clone()));
                    let role = if world_rank < founding {
                        ElasticRank::Founding(Communicator::new(engine.clone(), world_rank, crash))
                    } else {
                        ElasticRank::Standby(StandbyRank {
                            world_rank,
                            health: engine.health.clone(),
                            crash,
                        })
                    };
                    let f = &f;
                    s.builder()
                        .name(format!("mpi-rank-{world_rank}"))
                        .spawn(move |_| {
                            *slot = Some(f(role));
                        })
                        // xtask: allow(unwrap) — OS thread spawn only fails
                        // on resource exhaustion, which is unrecoverable for
                        // an in-process MPI world.
                        .expect("spawn rank thread")
                })
                .collect();
            // Join founding ranks first; once they have all exited no grow
            // can ever fire again, so close the gate to release any standby
            // still parked. Panics are collected (not re-raised inside the
            // loop) so the release still happens and every thread is joined.
            let mut panics = Vec::new();
            for (world_rank, h) in handles.into_iter().enumerate() {
                if let Err(e) = h.join() {
                    panics.push(format!("rank {world_rank} panicked: {e:?}"));
                }
                if world_rank + 1 == founding {
                    engine.health.close_join_gate();
                }
            }
            if let Some(p) = panics.into_iter().next() {
                std::panic::resume_unwind(Box::new(p));
            }
        })
        // xtask: allow(unwrap) — every child is joined (and its panic
        // re-raised) inside the scope, so the scope itself cannot fail.
        .expect("mpi world scope");
        results
            .into_iter()
            // xtask: allow(unwrap) — each rank thread wrote its slot
            // before exiting, and all of them were joined above.
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    }

    fn launch<T, F>(
        engine: Arc<Engine>,
        world_size: usize,
        plan: Option<Arc<FaultPlan>>,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Sync,
    {
        assert!(world_size >= 1, "world must have at least one rank");
        let mut results: Vec<Option<T>> = (0..world_size).map(|_| None).collect();
        crossbeam::scope(|s| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let crash = plan
                        .as_ref()
                        .and_then(|p| p.crash_point(rank))
                        .map(|pt| RankCrashState::new(rank, pt, engine.health.clone()));
                    let comm = Communicator::new(engine.clone(), rank, crash);
                    let f = &f;
                    s.builder()
                        .name(format!("mpi-rank-{rank}"))
                        .spawn(move |_| {
                            *slot = Some(f(comm));
                        })
                        // xtask: allow(unwrap) — OS thread spawn only fails
                        // on resource exhaustion, which is unrecoverable for
                        // an in-process MPI world.
                        .expect("spawn rank thread")
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                if let Err(e) = h.join() {
                    std::panic::resume_unwind(Box::new(format!("rank {rank} panicked: {e:?}")));
                }
            }
        })
        // xtask: allow(unwrap) — every child is joined (and its panic
        // re-raised) inside the scope, so the scope itself cannot fail.
        .expect("mpi world scope");
        results
            .into_iter()
            // xtask: allow(unwrap) — each rank thread wrote its slot
            // before exiting, and all of them were joined above.
            .map(|r| r.expect("every rank produced a result"))
            .collect()
    }
}
