//! Deterministic fault & straggler injection for the simulated MPI runtime.
//!
//! The paper's correctness claims (the epoch-gap bound of Section IV-C, the
//! ε/δ guarantee of the stopping rule) must hold for *adversarial* timing,
//! not just the ideal schedules the engine produces by default. This module
//! describes perturbed schedules as data: a [`FaultPlan`] is a seeded recipe
//! the engine consults at its join/retire points.
//!
//! # The logical clock
//!
//! Real-time delays would make perturbed runs unreproducible (the container
//! has one core and a preemptive scheduler). Instead, every injected delay
//! is measured on the **logical clock** the algorithms already advance: the
//! per-rank poll counter of a non-blocking [`Request`](crate::Request) (one
//! tick per `test()` call, i.e. one tick per overlapped sample in the
//! paper's `while IREDUCE(...) is not done` loops) and the per-communicator
//! operation sequence number. A delay of `k` polls means: rank `r` observes
//! completion of operation `seq` only on its `k`-th poll — and because `k`
//! is a pure hash of `(plan seed, communicator salt, rank, seq)`, the number
//! of overlapped samples each rank takes is a function of the plan alone,
//! never of OS scheduling. Once its injected polls are exhausted, a request
//! *blocks* until the collective genuinely completes, so fault injection
//! perturbs schedules without ever violating collective semantics.
//!
//! Every run under a plan (including the zero-delay [`FaultPlan::ideal`]
//! plan) is therefore exactly reproducible from `(plan, seed)`; chaos-test
//! failures print both so any perturbed run can be replayed bit-for-bit.

use std::fmt;

/// SplitMix64 finalizer: the pure hash behind every injected quantity.
///
/// Statistically well-mixed, dependency-free, and stable across platforms —
/// the properties the logical clock needs (this is *schedule derivation*,
/// not cryptography).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines hash inputs without losing entropy to XOR cancellation.
#[inline]
fn mix2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

/// Derives the plan-hash salt of a communicator created by `split` so that
/// delay streams of parent and child communicators (and of sibling colors)
/// are independent. Deterministic: all member ranks derive the same salt
/// from the same `(parent_salt, seq, color)`.
pub(crate) fn derive_salt(parent_salt: u64, seq: u64, color: u32) -> u64 {
    mix2(mix2(parent_salt, seq), color as u64)
}

/// Hash-stream tags keeping the independent injection channels apart.
const TAG_COLLECTIVE: u64 = 0x01;
const TAG_P2P: u64 = 0x02;
const TAG_QUOTA: u64 = 0x03;
const TAG_OVERLAP: u64 = 0x04;
const TAG_CRASH: u64 = 0x05;
const TAG_JOIN: u64 = 0x06;

/// When a scheduled rank join (elastic grow) fires, on the drivers' shared
/// global round counter — the coordinate every member advances in lockstep,
/// so all living ranks consult the plan at the same boundary and call
/// [`crate::Communicator::grow`] collectively. Like [`CrashPoint`], join
/// points are plain data: a grown run replays bit-for-bit from
/// `(plan, seed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPoint {
    /// Global adaptive round at whose *start* the join fires (0-based; the
    /// grow happens before the round's sample batch).
    pub round: u64,
    /// Number of standby ranks admitted at this point (clamped by the
    /// runtime to the standbys actually registered).
    pub ranks: usize,
}

/// When a scheduled rank crash fires, on the rank's own logical clock (see
/// the module docs) — so crashes are exactly reproducible from
/// `(plan, seed)` like every other injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The rank dies *instead of joining* its `s`-th collective call
    /// (0-based), counted across every communicator it owns — world and
    /// `split` children alike ([`crate::Communicator::shrink`] is the
    /// recovery path and carries no crash checkpoint).
    AtCollective(u64),
    /// The rank dies on its `k`-th cumulative unsuccessful request poll
    /// (1-based) — i.e. mid-overlap, typically with a reduction in flight,
    /// which is how the chaos suite exercises crash-during-reduction.
    AfterPolls(u64),
}

/// A deterministic fault & straggler plan for one simulated MPI world.
///
/// All fields are plain data so a failing chaos test can print the plan and
/// the failure can be replayed exactly (see the module docs). Construct via
/// [`FaultPlan::ideal`] or [`FaultPlan::from_seed`] and refine with the
/// builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed of every hash stream.
    pub seed: u64,
    /// Inclusive `(min, max)` completion-observation delay of a non-blocking
    /// collective, in polls of the observing rank's request (the logical
    /// clock — see the module docs). `(0, 0)` injects nothing.
    pub collective_delay_polls: (u64, u64),
    /// Rank-scoped latency scale: `(world rank, factor)` pairs multiplying
    /// every injected collective delay observed by that rank. A straggler is
    /// simply a rank with a large factor ([`FaultPlan::with_straggler`]).
    pub rank_factors: Vec<(usize, u64)>,
    /// Maximum displacement of a point-to-point message's delivery slot
    /// within its `(src, dst, tag)` stream. `0` preserves MPI's
    /// non-overtaking order; `k > 0` lets a message overtake up to `k`
    /// logically-earlier messages (deterministically per message index).
    pub p2p_jitter: u64,
    /// `(rank, thread)` pairs whose per-epoch sampling quota is divided by
    /// [`FaultPlan::slow_thread_factor`] — the "slow thread" knob of the
    /// epoch framework: a slow thread contributes fewer samples per epoch.
    pub slow_threads: Vec<(usize, usize)>,
    /// Quota divisor for [`FaultPlan::slow_threads`] (≥ 1).
    pub slow_thread_factor: u64,
    /// Percentage jitter (`0..=90`) applied to worker per-epoch quotas, so
    /// epoch lengths are skewed across threads even without slow threads.
    pub quota_jitter_pct: u64,
    /// Scheduled rank crashes: `(world rank, crash point)` pairs. At most
    /// the first entry per rank applies. Empty in [`FaultPlan::ideal`] and
    /// [`FaultPlan::from_seed`] plans; use the `with_crash_*` builders or
    /// [`FaultPlan::from_seed_with_crashes`].
    pub crashes: Vec<(usize, CrashPoint)>,
    /// Scheduled rank joins (elastic grows): at the start of each listed
    /// round, the drivers admit the given number of standby ranks. Empty in
    /// [`FaultPlan::ideal`] and [`FaultPlan::from_seed`] plans; use
    /// [`FaultPlan::with_join`] or [`FaultPlan::from_seed_with_grows`].
    pub joins: Vec<JoinPoint>,
}

impl FaultPlan {
    /// The ideal (zero-perturbation) plan: no delays, FIFO p2p, uniform
    /// quotas. Running under it still switches the runtime into the
    /// deterministic-schedule regime, which is what the seed-matrix
    /// determinism tests pin down.
    pub fn ideal(seed: u64) -> Self {
        FaultPlan {
            seed,
            collective_delay_polls: (0, 0),
            rank_factors: Vec::new(),
            p2p_jitter: 0,
            slow_threads: Vec::new(),
            slow_thread_factor: 1,
            quota_jitter_pct: 0,
            crashes: Vec::new(),
            joins: Vec::new(),
        }
    }

    /// Derives a small randomized plan from `seed` — the chaos corpus
    /// generator. Knob magnitudes are bounded so a corpus run stays fast;
    /// roughly half the seeds get a straggler rank and a slow thread.
    pub fn from_seed(seed: u64) -> Self {
        let h = |k: u64| mix2(seed, k);
        let lo = h(1) % 4;
        let hi = lo + 1 + h(2) % 24;
        let mut plan = FaultPlan {
            seed,
            collective_delay_polls: (lo, hi),
            rank_factors: Vec::new(),
            p2p_jitter: h(3) % 4,
            slow_threads: Vec::new(),
            slow_thread_factor: 1,
            quota_jitter_pct: h(4) % 60,
            crashes: Vec::new(),
            joins: Vec::new(),
        };
        if h(5) % 2 == 0 {
            // One straggler rank among the first 8 (clamped later by use).
            plan = plan.with_straggler(usize::try_from(h(6) % 8).unwrap_or(0), 4 + h(7) % 12);
        }
        if h(8) % 2 == 0 {
            plan = plan.with_slow_thread(
                usize::try_from(h(9) % 8).unwrap_or(0),
                usize::try_from(h(10) % 4).unwrap_or(0),
                2 + h(11) % 6,
            );
        }
        plan
    }

    /// A [`FaultPlan::from_seed`] corpus plan with one scheduled rank crash
    /// on top — the crash-chaos corpus generator (`cargo xtask chaos
    /// --crashes N`). The victim rank and crash point are hashed from the
    /// seed; collectives are scheduled past the setup phase (diameter
    /// broadcast, calibration all-reduce, hierarchy splits) so the crash
    /// lands mid-adaptive-sampling, where ledger-based recovery applies.
    /// With `world_size <= 1` no crash is added (a sole rank cannot shrink).
    pub fn from_seed_with_crashes(seed: u64, world_size: usize) -> Self {
        let mut plan = Self::from_seed(seed);
        if world_size > 1 {
            let h = |k: u64| mix2(mix2(seed, TAG_CRASH), k);
            let rank = usize::try_from(h(1) % world_size as u64).unwrap_or(0);
            plan = if h(2) % 2 == 0 {
                plan.with_crash_at_collective(rank, 5 + h(3) % 10)
            } else {
                // Guarantee polls actually occur so the crash can fire.
                if plan.collective_delay_polls.1 < 4 {
                    plan.collective_delay_polls.1 = 4;
                }
                plan.with_crash_after_polls(rank, 8 + h(4) % 48)
            };
        }
        plan
    }

    /// A [`FaultPlan::from_seed`] corpus plan with one scheduled rank join
    /// on top — the grow-chaos corpus generator (`cargo xtask chaos
    /// --grows N`). The join round and admitted count are hashed from the
    /// seed; rounds start past the first stopping-condition check so the
    /// grow lands mid-adaptive-phase, where ledger rebalancing applies.
    /// With `standby == 0` no join is added (nothing to admit).
    pub fn from_seed_with_grows(seed: u64, standby: usize) -> Self {
        let mut plan = Self::from_seed(seed);
        if standby > 0 {
            let h = |k: u64| mix2(mix2(seed, TAG_JOIN), k);
            let round = 1 + h(1) % 4;
            let ranks = usize::try_from(1 + h(2) % standby as u64).unwrap_or(1);
            plan = plan.with_join(round, ranks);
        }
        plan
    }

    /// Marks `rank` as a straggler: all its injected collective delays are
    /// multiplied by `factor`.
    pub fn with_straggler(mut self, rank: usize, factor: u64) -> Self {
        self.rank_factors.push((rank, factor.max(1)));
        self
    }

    /// Sets the p2p delivery-slot jitter (see [`FaultPlan::p2p_jitter`]).
    pub fn with_p2p_jitter(mut self, jitter: u64) -> Self {
        self.p2p_jitter = jitter;
        self
    }

    /// Marks `(rank, thread)` as slow, dividing its per-epoch quota by
    /// `factor`.
    pub fn with_slow_thread(mut self, rank: usize, thread: usize, factor: u64) -> Self {
        self.slow_threads.push((rank, thread));
        self.slow_thread_factor = factor.max(1);
        self
    }

    /// Sets the base completion-delay range in polls.
    pub fn with_collective_delay(mut self, min: u64, max: u64) -> Self {
        assert!(min <= max, "delay range reversed");
        self.collective_delay_polls = (min, max);
        self
    }

    /// Schedules world rank `rank` to die instead of joining its `s`-th
    /// collective call (0-based, counted across all its communicators).
    pub fn with_crash_at_collective(mut self, rank: usize, s: u64) -> Self {
        self.crashes.push((rank, CrashPoint::AtCollective(s)));
        self
    }

    /// Schedules world rank `rank` to die on its `k`-th cumulative
    /// unsuccessful request poll (1-based) — mid-overlap, with whatever
    /// collective it was polling still in flight.
    pub fn with_crash_after_polls(mut self, rank: usize, k: u64) -> Self {
        self.crashes.push((rank, CrashPoint::AfterPolls(k.max(1))));
        self
    }

    /// Schedules `ranks` standby ranks to join at the start of global round
    /// `round` (see [`JoinPoint`]).
    pub fn with_join(mut self, round: u64, ranks: usize) -> Self {
        self.joins.push(JoinPoint { round, ranks });
        self
    }

    /// Derives the plan for refinement `round` of a long-lived serving run:
    /// same perturbation knobs (delays, stragglers, jitter, slow threads) but
    /// a round-specific seed, and — crucially — **no crash schedule**. A
    /// resident sampler pool survives a crash by shrinking once; replaying
    /// the same crash point every subsequent round would kill the rebuilt
    /// pool again, so rounds after the first derive their schedules from the
    /// original plan without inheriting its crashes. Round 0 returns the plan
    /// unchanged (crashes included), keeping `(plan, seed)` the complete
    /// replay handle.
    pub fn reseeded(&self, round: u64) -> Self {
        if round == 0 {
            return self.clone();
        }
        let mut plan = self.clone();
        plan.seed = mix2(self.seed, mix2(TAG_CRASH ^ TAG_OVERLAP, round));
        plan.crashes.clear();
        // Joins are one-shot membership changes like crashes: a resident
        // pool that grew once must not re-admit the same standbys every
        // refinement round.
        plan.joins.clear();
        plan
    }

    /// The crash scheduled for world rank `rank`, if any (first entry wins).
    pub fn crash_point(&self, rank: usize) -> Option<CrashPoint> {
        self.crashes.iter().find(|(r, _)| *r == rank).map(|(_, p)| *p)
    }

    /// Standby ranks scheduled to join at the start of global round `round`
    /// (the sum over matching [`JoinPoint`]s; 0 when none fire there).
    pub fn join_at_round(&self, round: u64) -> usize {
        self.joins.iter().filter(|j| j.round == round).map(|j| j.ranks).sum()
    }

    /// Total standby ranks the plan ever admits, across all join points.
    pub fn total_joiners(&self) -> usize {
        self.joins.iter().map(|j| j.ranks).sum()
    }

    /// The latency scale of `rank` (1 unless rank-scoped factors apply).
    pub fn rank_factor(&self, rank: usize) -> u64 {
        self.rank_factors
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, f)| *f)
            .product::<u64>()
            .max(1)
    }

    /// Uniform draw in `lo..=hi` from the hash stream keyed by `key`.
    fn uniform(&self, key: u64, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + mix2(self.seed, key) % (hi - lo + 1)
    }

    /// Completion-observation delay, in polls, injected for `rank`'s view of
    /// collective `seq` on the communicator with hash salt `salt`.
    pub fn collective_delay(&self, salt: u64, rank: usize, seq: u64) -> u64 {
        let (lo, hi) = self.collective_delay_polls;
        let key = mix2(mix2(salt, TAG_COLLECTIVE), mix2(rank as u64, seq));
        self.uniform(key, lo, hi).saturating_mul(self.rank_factor(rank))
    }

    /// Number of samples thread 0 of `rank` overlaps with an epoch-framework
    /// transition wait in `epoch` (the framework has no [`crate::Request`]
    /// to count polls on, so the plan supplies the count directly).
    pub fn transition_overlap(&self, rank: usize, epoch: u32) -> u64 {
        let (lo, hi) = self.collective_delay_polls;
        let key = mix2(mix2(rank as u64, TAG_OVERLAP), epoch as u64);
        self.uniform(key, lo, hi).saturating_mul(self.rank_factor(rank))
    }

    /// Per-epoch sampling quota of worker `thread` on `rank`, given thread
    /// 0's epoch length `base` (`n0`): jittered by
    /// [`FaultPlan::quota_jitter_pct`], divided by the slow-thread factor,
    /// floored at 1 so every worker keeps contributing.
    pub fn worker_quota(&self, rank: usize, thread: usize, epoch: u32, base: u64) -> u64 {
        let pct = self.quota_jitter_pct.min(90);
        let key = mix2(mix2(rank as u64, TAG_QUOTA), mix2(thread as u64, epoch as u64));
        // base scaled into [100-pct, 100+pct] percent.
        let scale = self.uniform(key, 100 - pct, 100 + pct);
        let mut q = base.max(1).saturating_mul(scale) / 100;
        if self.slow_threads.contains(&(rank, thread)) {
            q /= self.slow_thread_factor.max(1);
        }
        q.max(1)
    }

    /// Delivery slot of message `idx` in the `(src, dst, tag)` stream of the
    /// communicator with hash salt `salt`. Messages are delivered in slot
    /// order (ties broken by send index), so a slot displaced by up to
    /// [`FaultPlan::p2p_jitter`] models delayed/overtaken delivery while
    /// remaining deterministic and starvation-free.
    pub fn p2p_slot(&self, salt: u64, src: usize, dst: usize, tag: u64, idx: u64) -> u64 {
        if self.p2p_jitter == 0 {
            return idx;
        }
        let key = mix2(mix2(salt, TAG_P2P), mix2(mix2(src as u64, dst as u64), mix2(tag, idx)));
        idx + self.uniform(key, 0, self.p2p_jitter)
    }

    /// Upper bound on any single injected collective delay, in polls.
    pub fn max_delay_polls(&self) -> u64 {
        let max_factor = self.rank_factors.iter().map(|(_, f)| *f).max().unwrap_or(1).max(1);
        self.collective_delay_polls.1.saturating_mul(max_factor)
    }

    /// Factor by which the engine scales its deadlock timeout: a straggler
    /// legitimately keeps its peers waiting for its injected polls, and each
    /// poll is one real sample, so the 60 s ideal-schedule budget must grow
    /// with the plan's worst injected latency. One poll is conservatively
    /// budgeted at ~100 ms of real time; capped at 64× so a buggy plan still
    /// fails within minutes rather than hanging CI.
    pub fn timeout_scale(&self) -> u32 {
        let extra = self.max_delay_polls() / 600; // ≈ polls per extra minute
        u32::try_from(extra.min(63)).unwrap_or(63) + 1
    }

    /// One-line reproduction handle printed by chaos tests: rebuild the plan
    /// from this summary (or from `{:?}`) to replay a failure.
    pub fn summary(&self) -> String {
        format!(
            "FaultPlan {{ seed: {}, delay: {:?}, rank_factors: {:?}, p2p_jitter: {}, \
             slow_threads: {:?}/{}, quota_jitter: {}%, crashes: {:?}, joins: {:?} }}",
            self.seed,
            self.collective_delay_polls,
            self.rank_factors,
            self.p2p_jitter,
            self.slow_threads,
            self.slow_thread_factor,
            self.quota_jitter_pct,
            self.crashes,
            self.joins
        )
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_plan_injects_nothing() {
        let p = FaultPlan::ideal(7);
        for rank in 0..4 {
            for seq in 0..20 {
                assert_eq!(p.collective_delay(0, rank, seq), 0);
            }
        }
        assert_eq!(p.p2p_slot(0, 0, 1, 9, 5), 5);
        assert_eq!(p.transition_overlap(2, 3), 0);
        assert_eq!(p.timeout_scale(), 1);
    }

    #[test]
    fn delays_are_deterministic_and_rank_seq_sensitive() {
        let p = FaultPlan::ideal(99).with_collective_delay(1, 1000);
        let a = p.collective_delay(0, 1, 5);
        assert_eq!(a, p.collective_delay(0, 1, 5), "same inputs, same delay");
        // Across many (rank, seq) pairs the stream must not be constant.
        let mut distinct = std::collections::HashSet::new();
        for rank in 0..4 {
            for seq in 0..16 {
                distinct.insert(p.collective_delay(0, rank, seq));
            }
        }
        assert!(distinct.len() > 8, "delay stream looks degenerate: {distinct:?}");
    }

    #[test]
    fn delays_respect_the_configured_range() {
        let p = FaultPlan::ideal(3).with_collective_delay(2, 9);
        for seq in 0..200 {
            let d = p.collective_delay(17, 0, seq);
            assert!((2..=9).contains(&d), "delay {d} outside [2, 9]");
        }
    }

    #[test]
    fn straggler_scales_delays_and_timeout() {
        let base = FaultPlan::ideal(5).with_collective_delay(1, 4);
        let strag = base.clone().with_straggler(2, 100);
        for seq in 0..50 {
            assert_eq!(strag.collective_delay(0, 2, seq), base.collective_delay(0, 2, seq) * 100);
            // Other ranks are untouched.
            assert_eq!(strag.collective_delay(0, 1, seq), base.collective_delay(0, 1, seq));
        }
        assert_eq!(base.max_delay_polls(), 4);
        assert_eq!(strag.max_delay_polls(), 400);
        assert_eq!(base.timeout_scale(), 1);
        assert!(strag.timeout_scale() >= 1);
        let huge = base.clone().with_straggler(0, 1_000_000);
        assert_eq!(huge.timeout_scale(), 64, "timeout scale must cap");
        assert!(huge.timeout_scale() > strag.timeout_scale());
    }

    #[test]
    fn worker_quota_is_jittered_bounded_and_slowable() {
        let p = FaultPlan { quota_jitter_pct: 50, ..FaultPlan::ideal(11) };
        for t in 0..8 {
            for e in 0..8 {
                let q = p.worker_quota(1, t, e, 100);
                assert!((50..=150).contains(&q), "quota {q} outside ±50% of 100");
            }
        }
        let slow = p.clone().with_slow_thread(1, 3, 10);
        for e in 0..8 {
            assert_eq!(slow.worker_quota(1, 3, e, 100), p.worker_quota(1, 3, e, 100) / 10);
        }
        // Quota never reaches zero.
        assert_eq!(FaultPlan::ideal(0).with_slow_thread(0, 0, 1000).worker_quota(0, 0, 0, 1), 1);
    }

    #[test]
    fn p2p_slots_shift_within_jitter_and_stay_deterministic() {
        let p = FaultPlan::ideal(8).with_p2p_jitter(3);
        for idx in 0..100 {
            let s = p.p2p_slot(1, 0, 1, 7, idx);
            assert!(s >= idx && s <= idx + 3);
            assert_eq!(s, p.p2p_slot(1, 0, 1, 7, idx));
        }
        // Jitter actually reorders something over a long stream.
        let slots: Vec<u64> = (0..100).map(|i| p.p2p_slot(1, 0, 1, 7, i)).collect();
        assert!(slots.windows(2).any(|w| w[0] > w[1]), "no inversion in {slots:?}");
    }

    #[test]
    fn derived_salts_separate_communicators_and_colors() {
        let s1 = derive_salt(0, 4, 0);
        let s2 = derive_salt(0, 4, 1);
        let s3 = derive_salt(0, 5, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        let p = FaultPlan::ideal(21).with_collective_delay(0, 1000);
        assert_ne!(p.collective_delay(s1, 0, 0), p.collective_delay(s2, 0, 0));
    }

    #[test]
    fn corpus_plans_are_reproducible_and_bounded() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed);
            assert_eq!(a, FaultPlan::from_seed(seed));
            assert!(a.collective_delay_polls.1 <= 28);
            assert!(a.p2p_jitter <= 3);
            assert!(a.quota_jitter_pct <= 90);
            assert!(a.timeout_scale() >= 1);
            assert!(a.crashes.is_empty(), "plain corpus plans must stay crash-free");
            assert!(a.joins.is_empty(), "plain corpus plans must stay join-free");
        }
    }

    #[test]
    fn crash_schedule_is_plain_data_and_reproducible() {
        let p = FaultPlan::ideal(4).with_crash_at_collective(2, 7).with_crash_after_polls(1, 16);
        assert_eq!(p.crash_point(2), Some(CrashPoint::AtCollective(7)));
        assert_eq!(p.crash_point(1), Some(CrashPoint::AfterPolls(16)));
        assert_eq!(p.crash_point(0), None);
        // First entry per rank wins.
        let q = p.clone().with_crash_after_polls(2, 3);
        assert_eq!(q.crash_point(2), Some(CrashPoint::AtCollective(7)));
        // The summary (the replay handle) carries the crash schedule.
        assert!(p.summary().contains("AtCollective(7)"), "{}", p.summary());
        assert_eq!(p, p.clone());
    }

    #[test]
    fn reseeded_rounds_keep_knobs_and_drop_crashes() {
        let p = FaultPlan::from_seed(9)
            .with_straggler(1, 6)
            .with_crash_at_collective(2, 7)
            .with_p2p_jitter(2);
        assert_eq!(p.reseeded(0), p, "round 0 is the original plan, crash included");
        let r1 = p.reseeded(1);
        assert_ne!(r1.seed, p.seed, "rounds draw from distinct hash streams");
        assert!(r1.crashes.is_empty(), "a crash must not replay after recovery");
        assert!(
            p.clone().with_join(2, 1).reseeded(1).joins.is_empty(),
            "a join must not replay after the pool grew"
        );
        assert_eq!(r1.rank_factors, p.rank_factors);
        assert_eq!(r1.p2p_jitter, p.p2p_jitter);
        assert_eq!(r1.collective_delay_polls, p.collective_delay_polls);
        assert_eq!(r1, p.reseeded(1), "round derivation is deterministic");
        assert_ne!(p.reseeded(1).seed, p.reseeded(2).seed);
    }

    #[test]
    fn crash_corpus_is_reproducible_bounded_and_past_setup() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed_with_crashes(seed, 4);
            assert_eq!(a, FaultPlan::from_seed_with_crashes(seed, 4));
            assert_eq!(a.crashes.len(), 1, "exactly one crash per corpus plan");
            let (rank, point) = a.crashes[0];
            assert!(rank < 4);
            match point {
                // Past the setup phase of both drivers (see generator docs).
                CrashPoint::AtCollective(s) => assert!((5..15).contains(&s)),
                CrashPoint::AfterPolls(k) => {
                    assert!((8..56).contains(&k));
                    assert!(a.collective_delay_polls.1 >= 4, "polls must be able to occur");
                }
            }
        }
        // A single-rank world never gets a crash scheduled.
        assert!(FaultPlan::from_seed_with_crashes(11, 1).crashes.is_empty());
    }

    #[test]
    fn join_schedule_is_plain_data_and_reproducible() {
        let p = FaultPlan::ideal(4).with_join(3, 2).with_join(3, 1).with_join(7, 1);
        assert_eq!(p.join_at_round(3), 3, "joins at the same round accumulate");
        assert_eq!(p.join_at_round(7), 1);
        assert_eq!(p.join_at_round(0), 0);
        assert_eq!(p.total_joiners(), 4);
        // The summary (the replay handle) carries the join schedule.
        assert!(p.summary().contains("round: 3"), "{}", p.summary());
        assert_eq!(p, p.clone());
    }

    #[test]
    fn grow_corpus_is_reproducible_bounded_and_past_setup() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed_with_grows(seed, 3);
            assert_eq!(a, FaultPlan::from_seed_with_grows(seed, 3));
            assert_eq!(a.joins.len(), 1, "exactly one join point per corpus plan");
            let j = a.joins[0];
            assert!((1..5).contains(&j.round), "join must land mid-adaptive-phase");
            assert!((1..=3).contains(&j.ranks));
            assert!(a.crashes.is_empty(), "grow corpus plans stay crash-free");
        }
        // A world with no standbys never gets a join scheduled.
        assert!(FaultPlan::from_seed_with_grows(11, 0).joins.is_empty());
    }
}
