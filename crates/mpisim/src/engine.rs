//! The collective-operation engine shared by all ranks of a communicator.
//!
//! Every collective call is assigned a per-rank sequence number; calls with
//! the same sequence number across ranks form one *operation instance*. An
//! instance lives in a slot map until all ranks have both **joined**
//! (contributed their input) and **retired** (observed completion) it.

use crate::fault::FaultPlan;
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use kadabra_telemetry::{CounterId, EventWriter, MarkId};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking wait may stall before the runtime assumes a deadlock
/// (collective order mismatch in the algorithm under test) and panics.
/// Under a fault plan this base budget is scaled by
/// [`FaultPlan::timeout_scale`], because an injected straggler legitimately
/// keeps its peers waiting (see [`Engine::deadlock_timeout`]).
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Operation kinds, used both for dispatch and for mismatch detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Barrier,
    Reduce { root: usize },
    Bcast { root: usize },
    Allreduce,
    Split,
}

/// One collective instance.
pub(crate) struct OpSlot {
    pub kind: OpKind,
    /// Ranks that have joined so far.
    pub arrived: usize,
    /// Ranks that have observed completion.
    pub retired: usize,
    /// Operation-specific accumulator (reduction value, bcast payload,
    /// split submissions / results...).
    pub acc: Option<Box<dyn Any + Send>>,
}

/// Engine state shared by all ranks of one communicator.
pub(crate) struct Engine {
    pub size: usize,
    slots: Mutex<HashMap<u64, OpSlot>>,
    cv: Condvar,
    bytes: AtomicU64,
    /// Set when any rank detects protocol misuse; wakes and fails all
    /// waiters instead of letting them run into the deadlock timeout.
    poisoned: AtomicBool,
    /// Point-to-point mailbox shared by the communicator's ranks.
    pub(crate) mailbox: Arc<crate::p2p::Mailbox>,
    /// Fault plan this communicator runs under (None = free-running).
    pub(crate) plan: Option<Arc<FaultPlan>>,
    /// Per-communicator hash salt separating the plan's delay streams of
    /// parent, child, and sibling communicators (see `fault::derive_salt`).
    pub(crate) salt: u64,
}

impl Engine {
    pub fn new(size: usize) -> Arc<Self> {
        Engine::with_plan(size, None, 0)
    }

    /// An engine whose collectives consult `plan` (hash-salted by `salt`).
    pub fn with_plan(size: usize, plan: Option<Arc<FaultPlan>>, salt: u64) -> Arc<Self> {
        let timeout = match &plan {
            Some(p) => DEADLOCK_TIMEOUT * p.timeout_scale(),
            None => DEADLOCK_TIMEOUT,
        };
        Arc::new(Engine {
            size,
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            bytes: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            mailbox: crate::p2p::Mailbox::new(plan.clone(), salt, timeout),
            plan,
            salt,
        })
    }

    /// The deadlock budget of this communicator's blocking waits: the 60 s
    /// ideal-schedule constant, scaled by the plan's worst injected latency
    /// so a straggler's deliberate lateness is not misdiagnosed as a hang.
    pub(crate) fn deadlock_timeout(&self) -> Duration {
        match &self.plan {
            Some(p) => DEADLOCK_TIMEOUT * p.timeout_scale(),
            None => DEADLOCK_TIMEOUT,
        }
    }

    /// Marks the communicator broken and wakes all waiters, then panics with
    /// the given message.
    fn poison(&self, msg: String) -> ! {
        // Release pairs with the Acquire loads in `check_poison`/waiters: a
        // rank that observes the flag also observes everything the poisoning
        // rank did first. No stronger ordering is needed — there is no
        // multi-flag consensus here, just one one-way latch.
        self.poisoned.store(true, Ordering::Release);
        self.cv.notify_all();
        panic!("{msg}");
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::Acquire) {
            panic!("communicator poisoned by a collective mismatch in another rank");
        }
    }

    /// Total payload bytes contributed to collectives so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn add_bytes(&self, b: u64) {
        self.bytes.fetch_add(b, Ordering::Relaxed);
    }

    /// Joins operation `seq` of kind `kind`, contributing via `deposit`,
    /// which receives the accumulator slot (None on first arrival).
    /// `finalize` runs exactly once, when the last rank arrives.
    pub fn join(
        &self,
        seq: u64,
        kind: OpKind,
        deposit: impl FnOnce(&mut Option<Box<dyn Any + Send>>),
        finalize: impl FnOnce(&mut Option<Box<dyn Any + Send>>),
    ) {
        self.check_poison();
        let mut slots = self.slots.lock();
        let slot =
            slots.entry(seq).or_insert_with(|| OpSlot { kind, arrived: 0, retired: 0, acc: None });
        if slot.kind != kind {
            let msg = format!(
                "collective mismatch at seq {seq}: one rank called {:?}, another {kind:?}",
                slot.kind
            );
            drop(slots);
            self.poison(msg);
        }
        deposit(&mut slot.acc);
        slot.arrived += 1;
        assert!(slot.arrived <= self.size, "more joins than communicator size at seq {seq}");
        if slot.arrived == self.size {
            finalize(&mut slot.acc);
            self.cv.notify_all();
        }
    }

    /// Non-blocking check whether all ranks have joined op `seq`.
    pub fn is_complete(&self, seq: u64) -> bool {
        let slots = self.slots.lock();
        slots
            .get(&seq)
            // xtask: allow(unwrap) — `seq` comes from a Request this engine
            // issued, and slots are only freed after the last retirement.
            .expect("is_complete on unknown op")
            .arrived
            == self.size
    }

    /// Completion collection; must only be called once [`Self::is_complete`]
    /// returned `true` (asserted). `collect` extracts this rank's result from
    /// the accumulator and the op is retired for this rank (slot freed after
    /// the last retirement).
    pub fn try_complete<T>(
        &self,
        seq: u64,
        collect: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> T,
    ) -> T {
        let mut slots = self.slots.lock();
        // xtask: allow(unwrap) — `seq` comes from a Request this engine
        // issued, and this rank has not retired it yet.
        let slot = slots.get_mut(&seq).expect("try_complete on unknown op");
        assert!(slot.arrived == self.size, "try_complete before completion");
        let out = collect(&mut slot.acc);
        slot.retired += 1;
        if slot.retired == self.size {
            slots.remove(&seq);
        }
        out
    }

    /// Blocking completion: waits until all ranks joined, then collects.
    pub fn wait_complete<T>(
        &self,
        seq: u64,
        collect: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> T,
    ) -> T {
        let mut slots = self.slots.lock();
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                panic!("communicator poisoned by a collective mismatch in another rank");
            }
            {
                // xtask: allow(unwrap) — `seq` comes from a Request this
                // engine issued, and this rank has not retired it yet.
                let slot = slots.get_mut(&seq).expect("wait_complete on unknown op");
                if slot.arrived == self.size {
                    let out = collect(&mut slot.acc);
                    slot.retired += 1;
                    if slot.retired == self.size {
                        slots.remove(&seq);
                    }
                    return out;
                }
            }
            let timeout = self.deadlock_timeout();
            if self.cv.wait_for(&mut slots, timeout).timed_out() {
                let slot = &slots[&seq];
                panic!(
                    "collective deadlock: op seq {seq} ({:?}) stuck with {}/{} ranks after {:?}",
                    slot.kind, slot.arrived, self.size, timeout
                );
            }
        }
    }
}

/// Handle for a non-blocking collective. Obtain the result with
/// [`Request::wait`], or poll with [`Request::test`] and keep computing — the
/// overlap pattern of the paper's Algorithms 1 and 2.
pub struct Request<T> {
    engine: Arc<Engine>,
    seq: u64,
    /// Extractor for this rank's result; consumed on completion.
    collect: Option<Collector<T>>,
    result: Option<T>,
    /// Remaining injected polls before this rank may observe completion
    /// (the fault plan's logical clock; 0 when running without a plan).
    delay: u64,
    /// Telemetry writer of the owning rank thread: each unsuccessful
    /// `test()` ticks its logical clock (one overlapped unit of work) and
    /// completion records a `CollectiveComplete` marker.
    tracer: Option<EventWriter>,
}

/// Extractor applied to the op's accumulator once a collective completes.
type Collector<T> = Box<dyn FnOnce(&mut Option<Box<dyn Any + Send>>) -> T + Send>;

impl<T> Request<T> {
    pub(crate) fn new(
        engine: Arc<Engine>,
        seq: u64,
        delay: u64,
        collect: Collector<T>,
        tracer: Option<EventWriter>,
    ) -> Self {
        Request { engine, seq, collect: Some(collect), result: None, delay, tracer }
    }

    /// One overlapped (unsuccessful) poll: tick the logical clock and the
    /// overlap counter.
    fn trace_poll(&self) {
        if let Some(w) = &self.tracer {
            w.tick(1);
            w.count(CounterId::OverlapPolls, 1);
        }
    }

    /// The collective resolved at this rank.
    fn trace_complete(&self) {
        if let Some(w) = &self.tracer {
            w.mark(MarkId::CollectiveComplete, self.seq);
        }
    }

    /// Polls for completion without blocking. Returns `true` once the
    /// operation is complete (after which [`Request::into_result`] /
    /// [`Request::wait`] yield the value). Subsequent calls keep returning
    /// `true`.
    ///
    /// Under a fault plan the poll sequence is *deterministic*: the request
    /// returns `false` exactly as many times as the plan injected for this
    /// `(communicator, rank, seq)` — each `false` is one tick of the logical
    /// clock, i.e. one overlapped sample in the paper's algorithms — and the
    /// next call blocks until the collective genuinely completes, then
    /// returns `true`. The number of overlapped iterations thus depends only
    /// on `(plan, seed)`, never on OS scheduling, which is what makes
    /// perturbed runs bit-reproducible.
    pub fn test(&mut self) -> bool {
        if self.result.is_some() || self.collect.is_none() {
            return true;
        }
        if self.delay > 0 {
            self.delay -= 1;
            self.trace_poll();
            return false;
        }
        if self.engine.plan.is_some() {
            // Deterministic regime: injected polls exhausted — resolve now,
            // blocking if peers are still on their way (the wait respects
            // the plan-scaled deadlock budget).
            // xtask: allow(unwrap) — `collect` is consumed exactly once:
            // here or below, both guarded by the early return above.
            let collect = self.collect.take().unwrap();
            self.result = Some(self.engine.wait_complete(self.seq, collect));
            self.trace_complete();
            return true;
        }
        if !self.engine.is_complete(self.seq) {
            self.trace_poll();
            return false;
        }
        // Completion is monotone and this rank has not retired yet, so the
        // slot is guaranteed to still exist for the collection step.
        // xtask: allow(unwrap) — `collect` is consumed exactly once: here on
        // the first successful test(), guarded by the early return above.
        let collect = self.collect.take().unwrap();
        self.result = Some(self.engine.try_complete(self.seq, collect));
        self.trace_complete();
        true
    }

    /// Blocks until completion and returns the result.
    pub fn wait(mut self) -> T {
        if let Some(v) = self.result.take() {
            return v;
        }
        // xtask: allow(unwrap) — wait() takes self; if test() already
        // collected, the result.take() above returned early.
        let collect = self.collect.take().expect("request already consumed");
        let out = self.engine.wait_complete(self.seq, collect);
        self.trace_complete();
        out
    }

    /// Returns the result if `test()` previously succeeded.
    pub fn into_result(mut self) -> Option<T> {
        self.result.take()
    }
}
