//! The collective-operation engine shared by all ranks of a communicator.
//!
//! Every collective call is assigned a per-rank sequence number; calls with
//! the same sequence number across ranks form one *operation instance*. An
//! instance lives in a slot map until all ranks have both **joined**
//! (contributed their input) and **retired** (observed completion) it.
//!
//! # Failure semantics
//!
//! Completion of an instance is, and stays, "all members joined" — latched
//! at the last join, so whether an op completes is a pure function of each
//! member's sequential program (and therefore of `(plan, seed)` under fault
//! injection). The crash-fault layer never revokes a completed op; it only
//! lets waiters escape ops that *provably cannot* complete: a member that
//! has joined neither the op nor (state-wise) the living — it is dead or in
//! shrink recovery — will never arrive, so after a bounded
//! confirm-and-backoff the wait fails with
//! [`CommError::RankFailed`](crate::CommError::RankFailed). Deadlock
//! timeouts and poison (protocol misuse) likewise surface as typed
//! [`CommError`]s carrying the `(plan, seed)` replay pair; the engine has no
//! panicking failure path.

use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::health::{RankCrashState, WorldHealth};
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use kadabra_telemetry::{CounterId, EventWriter, MarkId};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How long a blocking wait may stall before the runtime assumes a deadlock
/// (collective order mismatch in the algorithm under test) and fails with
/// [`CommError::Timeout`](crate::CommError::Timeout). Under a fault plan
/// this base budget is scaled by [`FaultPlan::timeout_scale`], because an
/// injected straggler legitimately keeps its peers waiting (see
/// [`Engine::deadlock_timeout`]).
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Granularity of a blocking wait: waiters re-check completion, poison and
/// member health every slice, so a death needs no cross-engine wakeup
/// plumbing to be noticed promptly.
const WAIT_SLICE: Duration = Duration::from_millis(5);

/// A stuck member must be re-confirmed this many times — with doubling
/// backoff slices between checks — before the wait fails. The backoff is
/// observation-only (completion is latched by joins), so it cannot change a
/// run's outcome; it only lets concurrent deaths settle so the reported
/// rank is usually the smallest stuck member.
const FAILURE_CONFIRM_RETRIES: u32 = 3;

/// Reserved key space for shrink generations in the slot map: ordinary op
/// sequence numbers are small, so `SHRINK_KEY_BASE | generation` can never
/// collide with them (or with the salts `split` derives from real seqs).
const SHRINK_KEY_BASE: u64 = 1 << 62;

/// Reserved key space for grow generations, disjoint from both ordinary op
/// sequence numbers and [`SHRINK_KEY_BASE`], so a communicator that both
/// shrinks and grows keeps the two generation streams apart.
const GROW_KEY_BASE: u64 = 1 << 61;

/// Operation kinds, used both for dispatch and for mismatch detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    Barrier,
    Reduce { root: usize },
    Bcast { root: usize },
    Allreduce,
    Split,
    Shrink,
    Grow,
}

/// One collective instance.
pub(crate) struct OpSlot {
    pub kind: OpKind,
    /// Ranks that have joined so far.
    pub arrived: usize,
    /// Per-rank join flags (indexed by communicator rank), for stuck-member
    /// detection against [`WorldHealth`].
    pub joined: Vec<bool>,
    /// Ranks that have observed completion.
    pub retired: usize,
    /// Operation-specific accumulator (reduction value, bcast payload,
    /// split submissions / results...).
    pub acc: Option<Box<dyn Any + Send>>,
}

impl OpSlot {
    fn new(kind: OpKind, size: usize) -> Self {
        OpSlot { kind, arrived: 0, joined: vec![false; size], retired: 0, acc: None }
    }
}

/// Result of a completed shrink generation, shared by all survivors.
struct ShrinkAcc {
    /// Child engine plus the surviving ranks *of the parent communicator*,
    /// in ascending order (position = new rank).
    child: (Arc<Engine>, Vec<usize>),
}

/// Accumulator of a grow generation.
struct GrowAcc {
    /// Standby count requested by the first joiner; later joiners must
    /// request the same count (poison on mismatch, like any collective
    /// argument disagreement).
    extra: usize,
    /// Once built by the first completion observer: the child engine, the
    /// joining parent ranks (position = new rank), and how many standbys
    /// were actually admitted.
    child: Option<(Arc<Engine>, Vec<usize>, usize)>,
}

/// Engine state shared by all ranks of one communicator.
pub(crate) struct Engine {
    pub size: usize,
    /// World rank of each member, indexed by communicator rank. The world
    /// engine's members are `0..size`; `split`/`shrink` children carry the
    /// mapping through, so failures are always reported in world ranks.
    pub(crate) members: Vec<usize>,
    slots: Mutex<HashMap<u64, OpSlot>>,
    cv: Condvar,
    bytes: AtomicU64,
    /// Set when any rank detects protocol misuse; wakes and fails all
    /// waiters instead of letting them run into the deadlock timeout.
    poisoned: AtomicBool,
    /// Diagnostic written by the poisoning rank before the flag is set.
    poison_msg: Mutex<String>,
    /// Point-to-point mailbox shared by the communicator's ranks.
    pub(crate) mailbox: Arc<crate::p2p::Mailbox>,
    /// Fault plan this communicator runs under (None = free-running).
    pub(crate) plan: Option<Arc<FaultPlan>>,
    /// Per-communicator hash salt separating the plan's delay streams of
    /// parent, child, and sibling communicators (see `fault::derive_salt`).
    pub(crate) salt: u64,
    /// Liveness registry shared by every communicator of the world.
    pub(crate) health: Arc<WorldHealth>,
}

impl Engine {
    pub fn new(size: usize) -> Arc<Self> {
        Engine::with_plan(size, None, 0)
    }

    /// A *world* engine whose collectives consult `plan` (hash-salted by
    /// `salt`): members are `0..size` and the health registry is fresh.
    pub fn with_plan(size: usize, plan: Option<Arc<FaultPlan>>, salt: u64) -> Arc<Self> {
        Engine::for_members((0..size).collect(), plan, salt, WorldHealth::new(), 0)
    }

    /// A derived engine (`split` color group or `shrink` survivor set):
    /// `members` maps its ranks to world ranks, `health` is shared with the
    /// parent, and `carried_bytes` seeds the byte counter (shrink children
    /// carry the parent's tally so per-run communication volume survives
    /// recovery).
    pub(crate) fn for_members(
        members: Vec<usize>,
        plan: Option<Arc<FaultPlan>>,
        salt: u64,
        health: Arc<WorldHealth>,
        carried_bytes: u64,
    ) -> Arc<Self> {
        let timeout = match &plan {
            Some(p) => DEADLOCK_TIMEOUT * p.timeout_scale(),
            None => DEADLOCK_TIMEOUT,
        };
        Arc::new(Engine {
            size: members.len(),
            mailbox: crate::p2p::Mailbox::new(
                plan.clone(),
                salt,
                timeout,
                members.clone(),
                health.clone(),
            ),
            members,
            slots: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            bytes: AtomicU64::new(carried_bytes),
            poisoned: AtomicBool::new(false),
            poison_msg: Mutex::new(String::new()),
            plan,
            salt,
            health,
        })
    }

    /// The deadlock budget of this communicator's blocking waits: the 60 s
    /// ideal-schedule constant, scaled by the plan's worst injected latency
    /// so a straggler's deliberate lateness is not misdiagnosed as a hang.
    pub(crate) fn deadlock_timeout(&self) -> Duration {
        match &self.plan {
            Some(p) => DEADLOCK_TIMEOUT * p.timeout_scale(),
            None => DEADLOCK_TIMEOUT,
        }
    }

    /// The `(plan, seed)` replay pair every `Timeout`/`Poisoned` diagnostic
    /// carries (satisfying "replay any failure from its message alone").
    pub(crate) fn replay(&self) -> String {
        match &self.plan {
            Some(p) => p.summary(),
            None => "plan: none (free-running)".to_string(),
        }
    }

    /// Marks the communicator broken, wakes all waiters, and returns the
    /// typed error for the detecting rank.
    ///
    /// Release pairs with the Acquire loads in `check_poison`/waiters: a
    /// rank that observes the flag also observes the diagnostic written
    /// first. No stronger ordering is needed — there is no multi-flag
    /// consensus here, just one one-way latch.
    fn poison(&self, msg: String) -> CommError {
        *self.poison_msg.lock() = msg.clone();
        self.poisoned.store(true, Ordering::Release);
        self.cv.notify_all();
        CommError::Poisoned { detail: msg, replay: self.replay() }
    }

    fn poisoned_error(&self) -> CommError {
        let detail = self.poison_msg.lock().clone();
        CommError::Poisoned { detail, replay: self.replay() }
    }

    fn check_poison(&self) -> Result<(), CommError> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(self.poisoned_error())
        } else {
            Ok(())
        }
    }

    /// Total payload bytes contributed to collectives so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn add_bytes(&self, b: u64) {
        self.bytes.fetch_add(b, Ordering::Relaxed);
    }

    /// Joins operation `seq` of kind `kind` as communicator rank `rank`,
    /// contributing via `deposit`, which receives the accumulator slot
    /// (None on first arrival). `finalize` runs exactly once, when the last
    /// rank arrives.
    pub fn join(
        &self,
        rank: usize,
        seq: u64,
        kind: OpKind,
        deposit: impl FnOnce(&mut Option<Box<dyn Any + Send>>),
        finalize: impl FnOnce(&mut Option<Box<dyn Any + Send>>),
    ) -> Result<(), CommError> {
        self.check_poison()?;
        let mut slots = self.slots.lock();
        let slot = slots.entry(seq).or_insert_with(|| OpSlot::new(kind, self.size));
        if slot.kind != kind {
            let msg = format!(
                "collective mismatch at seq {seq}: one rank called {:?}, another {kind:?}",
                slot.kind
            );
            drop(slots);
            return Err(self.poison(msg));
        }
        deposit(&mut slot.acc);
        assert!(!slot.joined[rank], "rank {rank} joined op seq {seq} twice");
        slot.joined[rank] = true;
        slot.arrived += 1;
        assert!(slot.arrived <= self.size, "more joins than communicator size at seq {seq}");
        if slot.arrived == self.size {
            finalize(&mut slot.acc);
            self.cv.notify_all();
        }
        Ok(())
    }

    /// Non-blocking check whether all ranks have joined op `seq`.
    pub fn is_complete(&self, seq: u64) -> bool {
        let slots = self.slots.lock();
        slots
            .get(&seq)
            // xtask: allow(unwrap) — `seq` comes from a Request this engine
            // issued, and slots are only freed after the last retirement.
            .expect("is_complete on unknown op")
            .arrived
            == self.size
    }

    /// Completion collection; must only be called once [`Self::is_complete`]
    /// returned `true` (asserted). `collect` extracts this rank's result from
    /// the accumulator and the op is retired for this rank (slot freed after
    /// the last retirement).
    pub fn try_complete<T>(
        &self,
        seq: u64,
        collect: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> T,
    ) -> T {
        let mut slots = self.slots.lock();
        // xtask: allow(unwrap) — `seq` comes from a Request this engine
        // issued, and this rank has not retired it yet.
        let slot = slots.get_mut(&seq).expect("try_complete on unknown op");
        assert!(slot.arrived == self.size, "try_complete before completion");
        let out = collect(&mut slot.acc);
        slot.retired += 1;
        if slot.retired == self.size {
            slots.remove(&seq);
        }
        out
    }

    /// Blocking completion: waits until all ranks joined, then collects.
    ///
    /// Fails fast with [`CommError::RankFailed`] once a member that has not
    /// joined is confirmed dead or recovering (after
    /// [`FAILURE_CONFIRM_RETRIES`] backoff re-checks), with
    /// [`CommError::Poisoned`] on protocol misuse elsewhere, and with
    /// [`CommError::Timeout`] when the plan-scaled deadlock budget runs out.
    pub fn wait_complete<T>(
        &self,
        seq: u64,
        collect: impl FnOnce(&mut Option<Box<dyn Any + Send>>) -> T,
    ) -> Result<T, CommError> {
        let mut slots = self.slots.lock();
        let budget = self.deadlock_timeout();
        let mut waited = Duration::ZERO;
        let mut stuck_checks = 0u32;
        let mut slice = WAIT_SLICE;
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(self.poisoned_error());
            }
            let (kind, arrived, stuck) = {
                // xtask: allow(unwrap) — `seq` comes from a Request this
                // engine issued, and this rank has not retired it yet.
                let slot = slots.get_mut(&seq).expect("wait_complete on unknown op");
                if slot.arrived == self.size {
                    let out = collect(&mut slot.acc);
                    slot.retired += 1;
                    if slot.retired == self.size {
                        slots.remove(&seq);
                    }
                    return Ok(out);
                }
                let stuck = self.health.first_stuck_member(&self.members, &slot.joined);
                (slot.kind, slot.arrived, stuck)
            };
            if let Some(world_rank) = stuck {
                stuck_checks += 1;
                if stuck_checks > FAILURE_CONFIRM_RETRIES {
                    return Err(CommError::RankFailed { rank: world_rank });
                }
                slice = slice.saturating_mul(2); // confirm with backoff
            } else {
                stuck_checks = 0;
                slice = WAIT_SLICE;
            }
            if self.cv.wait_for(&mut slots, slice).timed_out() {
                waited += slice;
                if waited >= budget {
                    return Err(CommError::Timeout {
                        op: format!(
                            "op seq {seq} ({kind:?}) stuck with {arrived}/{} ranks \
                             after {budget:?}",
                            self.size
                        ),
                        replay: self.replay(),
                    });
                }
            }
        }
    }

    /// One generation of the shrink protocol (`MPI_Comm_shrink` in ULFM
    /// terms): every *living* member must call this with the same
    /// `generation`; the generation completes once each member has either
    /// joined it or been declared dead. The first rank to observe
    /// completion builds the child engine — survivors are exactly the
    /// joiners, in parent-rank order — and all survivors receive the same
    /// child. Returns the child engine plus this rank's new rank.
    ///
    /// The child's plan-hash salt is derived from the *generation key*, not
    /// from the op-sequence counter (survivors' seq counters legitimately
    /// diverge before a failure is noticed), which also guarantees the salt
    /// stream is independent of every `split` child and of other shrink
    /// generations.
    pub(crate) fn shrink(
        &self,
        rank: usize,
        generation: u64,
    ) -> Result<(Arc<Engine>, usize), CommError> {
        let key = SHRINK_KEY_BASE | generation;
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| OpSlot::new(OpKind::Shrink, self.size));
        assert!(slot.kind == OpKind::Shrink, "reserved shrink key collided with an op");
        assert!(!slot.joined[rank], "rank {rank} joined shrink generation {generation} twice");
        slot.joined[rank] = true;
        slot.arrived += 1;
        self.cv.notify_all();
        let budget = self.deadlock_timeout();
        let mut waited = Duration::ZERO;
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(self.poisoned_error());
            }
            {
                // xtask: allow(unwrap) — the slot is freed only after the
                // last survivor retires, and this rank has not retired yet.
                let slot = slots.get_mut(&key).expect("shrink generation slot present");
                let done =
                    slot.acc.is_some() || self.health.shrink_complete(&self.members, &slot.joined);
                if done {
                    if slot.acc.is_none() {
                        // First observer: survivors = the joiners, in parent
                        // rank order (deterministic — a member dead at this
                        // point never joins this generation later).
                        let survivors: Vec<usize> =
                            (0..self.size).filter(|&r| slot.joined[r]).collect();
                        let world: Vec<usize> =
                            survivors.iter().map(|&r| self.members[r]).collect();
                        let salt = crate::fault::derive_salt(self.salt, key, 0);
                        let child = Engine::for_members(
                            world.clone(),
                            self.plan.clone(),
                            salt,
                            self.health.clone(),
                            self.bytes_transferred(),
                        );
                        self.health.end_recovery(&world);
                        slot.acc = Some(Box::new(ShrinkAcc { child: (child, survivors) }));
                        self.cv.notify_all();
                    }
                    let acc = slot
                        .acc
                        .as_ref()
                        .and_then(|a| a.downcast_ref::<ShrinkAcc>())
                        // xtask: allow(unwrap) — just stored/observed above,
                        // and the reserved key space pins the type.
                        .expect("shrink accumulator");
                    let (child, survivors) = (acc.child.0.clone(), acc.child.1.clone());
                    let new_rank = survivors
                        .iter()
                        .position(|&r| r == rank)
                        // xtask: allow(unwrap) — this rank joined, so it is
                        // among the survivors by construction.
                        .expect("own rank among shrink survivors");
                    slot.retired += 1;
                    if slot.retired == survivors.len() {
                        slots.remove(&key);
                    }
                    return Ok((child, new_rank));
                }
            }
            if self.cv.wait_for(&mut slots, WAIT_SLICE).timed_out() {
                waited += WAIT_SLICE;
                if waited >= budget {
                    return Err(CommError::Timeout {
                        op: format!("shrink generation {generation} incomplete after {budget:?}"),
                        replay: self.replay(),
                    });
                }
            }
        }
    }

    /// Collective grow: every live member joins generation `generation`
    /// requesting `extra` additional ranks; completion builds the child
    /// engine — the joiners in parent-rank order, followed by up to `extra`
    /// standbys admitted from the world's standby pool (smallest world rank
    /// first) — and delivers each admitted standby its (engine, rank)
    /// ticket through [`WorldHealth::deliver_admission`]. Returns the child
    /// engine, this rank's new rank, and the number of standbys actually
    /// admitted (fewer than `extra` when the pool runs dry).
    ///
    /// Members dead at completion time are excused, exactly as in `shrink`,
    /// so a grow racing a crash still terminates. The child's plan-hash
    /// salt is derived from the *grow generation key* with color 1 —
    /// disjoint from the op-seq salts of `split` children (small seqs,
    /// their own colors) and from shrink generations (`SHRINK_KEY_BASE`
    /// keys, color 0) — so grown comms never alias any other hash stream.
    pub(crate) fn grow(
        &self,
        rank: usize,
        generation: u64,
        extra: usize,
    ) -> Result<(Arc<Engine>, usize, usize), CommError> {
        let key = GROW_KEY_BASE | generation;
        let mut slots = self.slots.lock();
        let slot = slots.entry(key).or_insert_with(|| {
            let mut s = OpSlot::new(OpKind::Grow, self.size);
            s.acc = Some(Box::new(GrowAcc { extra, child: None }));
            s
        });
        assert!(slot.kind == OpKind::Grow, "reserved grow key collided with an op");
        assert!(!slot.joined[rank], "rank {rank} joined grow generation {generation} twice");
        {
            let acc = slot
                .acc
                .as_mut()
                .and_then(|a| a.downcast_mut::<GrowAcc>())
                // xtask: allow(unwrap) — deposited unconditionally at slot
                // creation above; the reserved key space pins the type.
                .expect("grow accumulator");
            if acc.extra != extra {
                let msg = format!(
                    "grow mismatch: rank {rank} requested {extra} extra ranks in generation \
                     {generation}, first joiner requested {}",
                    acc.extra
                );
                drop(slots);
                return Err(self.poison(msg));
            }
        }
        slot.joined[rank] = true;
        slot.arrived += 1;
        self.cv.notify_all();
        let budget = self.deadlock_timeout();
        let mut waited = Duration::ZERO;
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(self.poisoned_error());
            }
            {
                // xtask: allow(unwrap) — the slot is freed only after the
                // last joiner retires, and this rank has not retired yet.
                let slot = slots.get_mut(&key).expect("grow generation slot present");
                let acc = slot
                    .acc
                    .as_mut()
                    .and_then(|a| a.downcast_mut::<GrowAcc>())
                    // xtask: allow(unwrap) — see above; type pinned by key space.
                    .expect("grow accumulator");
                let done =
                    acc.child.is_some() || self.health.shrink_complete(&self.members, &slot.joined);
                if done {
                    if acc.child.is_none() {
                        // First observer: joiners in parent rank order keep
                        // their relative order; admitted standbys append
                        // after them (deterministic — the pool hands out
                        // smallest world ranks first).
                        let joiners: Vec<usize> =
                            (0..self.size).filter(|&r| slot.joined[r]).collect();
                        let mut world: Vec<usize> =
                            joiners.iter().map(|&r| self.members[r]).collect();
                        let admitted = self.health.take_standbys(extra);
                        // xtask: allow(determinism) — a Vec drained from a
                        // BTreeSet: smallest world ranks first, no hash order.
                        world.extend(admitted.iter().copied());
                        let salt = crate::fault::derive_salt(self.salt, key, 1);
                        let child = Engine::for_members(
                            world,
                            self.plan.clone(),
                            salt,
                            self.health.clone(),
                            self.bytes_transferred(),
                        );
                        // xtask: allow(determinism) — same sorted Vec as above.
                        for (i, &wr) in admitted.iter().enumerate() {
                            self.health.deliver_admission(wr, child.clone(), joiners.len() + i);
                        }
                        acc.child = Some((child, joiners, admitted.len()));
                        self.cv.notify_all();
                    }
                    let (child, joiners, admitted) =
                        // xtask: allow(unwrap) — just stored/observed above.
                        acc.child.as_ref().expect("grow child").clone();
                    let new_rank = joiners
                        .iter()
                        .position(|&r| r == rank)
                        // xtask: allow(unwrap) — this rank joined, so it is
                        // among the joiners by construction.
                        .expect("own rank among grow joiners");
                    slot.retired += 1;
                    if slot.retired == joiners.len() {
                        slots.remove(&key);
                    }
                    return Ok((child, new_rank, admitted));
                }
            }
            if self.cv.wait_for(&mut slots, WAIT_SLICE).timed_out() {
                waited += WAIT_SLICE;
                if waited >= budget {
                    return Err(CommError::Timeout {
                        op: format!("grow generation {generation} incomplete after {budget:?}"),
                        replay: self.replay(),
                    });
                }
            }
        }
    }
}

/// Handle for a non-blocking collective. Obtain the result with
/// [`Request::wait`], or poll with [`Request::test`] and keep computing — the
/// overlap pattern of the paper's Algorithms 1 and 2.
pub struct Request<T> {
    engine: Arc<Engine>,
    seq: u64,
    /// Extractor for this rank's result; consumed on completion.
    collect: Option<Collector<T>>,
    result: Option<T>,
    /// Sticky failure: once an error is observed the request keeps
    /// reporting it.
    failed: Option<CommError>,
    /// Remaining injected polls before this rank may observe completion
    /// (the fault plan's logical clock; 0 when running without a plan).
    delay: u64,
    /// Crash schedule of the owning rank: each unsuccessful poll is one
    /// logical-clock tick of its `AfterPolls` fuse.
    crash: Option<Arc<RankCrashState>>,
    /// Telemetry writer of the owning rank thread: each unsuccessful
    /// `test()` ticks its logical clock (one overlapped unit of work) and
    /// completion records a `CollectiveComplete` marker.
    tracer: Option<EventWriter>,
}

/// Extractor applied to the op's accumulator once a collective completes.
type Collector<T> = Box<dyn FnOnce(&mut Option<Box<dyn Any + Send>>) -> T + Send>;

impl<T> Request<T> {
    pub(crate) fn new(
        engine: Arc<Engine>,
        seq: u64,
        delay: u64,
        collect: Collector<T>,
        crash: Option<Arc<RankCrashState>>,
        tracer: Option<EventWriter>,
    ) -> Self {
        Request {
            engine,
            seq,
            collect: Some(collect),
            result: None,
            failed: None,
            delay,
            crash,
            tracer,
        }
    }

    /// One overlapped (unsuccessful) poll: tick the logical clock, the
    /// overlap counter, and the owning rank's crash fuse.
    fn trace_poll(&mut self) -> Result<(), CommError> {
        if let Some(w) = &self.tracer {
            w.tick(1);
            w.count(CounterId::OverlapPolls, 1);
        }
        if let Some(c) = &self.crash {
            if let Err(e) = c.on_poll() {
                self.failed = Some(e.clone());
                return Err(e);
            }
        }
        Ok(())
    }

    /// The collective resolved at this rank.
    fn trace_complete(&self) {
        if let Some(w) = &self.tracer {
            w.mark(MarkId::CollectiveComplete, self.seq);
        }
    }

    /// Polls for completion without blocking. Returns `Ok(true)` once the
    /// operation is complete (after which [`Request::into_result`] /
    /// [`Request::wait`] yield the value). Subsequent calls keep returning
    /// `Ok(true)`; a failed request keeps returning its error.
    ///
    /// Under a fault plan the poll sequence is *deterministic*: the request
    /// returns `Ok(false)` exactly as many times as the plan injected for
    /// this `(communicator, rank, seq)` — each `false` is one tick of the
    /// logical clock, i.e. one overlapped sample in the paper's algorithms —
    /// and the next call blocks until the collective genuinely completes,
    /// then returns `Ok(true)`. The number of overlapped iterations thus
    /// depends only on `(plan, seed)`, never on OS scheduling, which is what
    /// makes perturbed runs bit-reproducible.
    pub fn test(&mut self) -> Result<bool, CommError> {
        if let Some(e) = &self.failed {
            return Err(e.clone());
        }
        if self.result.is_some() || self.collect.is_none() {
            return Ok(true);
        }
        if self.delay > 0 {
            self.delay -= 1;
            self.trace_poll()?;
            return Ok(false);
        }
        if self.engine.plan.is_some() {
            // Deterministic regime: injected polls exhausted — resolve now,
            // blocking if peers are still on their way (the wait respects
            // the plan-scaled deadlock budget).
            // xtask: allow(unwrap) — `collect` is consumed exactly once:
            // here or below, both guarded by the early return above.
            let collect = self.collect.take().unwrap();
            match self.engine.wait_complete(self.seq, collect) {
                Ok(v) => {
                    self.result = Some(v);
                    self.trace_complete();
                    return Ok(true);
                }
                Err(e) => {
                    self.failed = Some(e.clone());
                    return Err(e);
                }
            }
        }
        if !self.engine.is_complete(self.seq) {
            self.trace_poll()?;
            return Ok(false);
        }
        // Completion is monotone and this rank has not retired yet, so the
        // slot is guaranteed to still exist for the collection step.
        // xtask: allow(unwrap) — `collect` is consumed exactly once: here on
        // the first successful test(), guarded by the early return above.
        let collect = self.collect.take().unwrap();
        self.result = Some(self.engine.try_complete(self.seq, collect));
        self.trace_complete();
        Ok(true)
    }

    /// Blocks until completion and returns the result.
    pub fn wait(mut self) -> Result<T, CommError> {
        if let Some(e) = self.failed.take() {
            return Err(e);
        }
        if let Some(v) = self.result.take() {
            return Ok(v);
        }
        // xtask: allow(unwrap) — wait() takes self; if test() already
        // collected, the result.take() above returned early.
        let collect = self.collect.take().expect("request already consumed");
        let out = self.engine.wait_complete(self.seq, collect)?;
        self.trace_complete();
        Ok(out)
    }

    /// Returns the result if `test()` previously succeeded.
    pub fn into_result(mut self) -> Option<T> {
        self.result.take()
    }
}
