//! Communicators and typed collective operations.
//!
//! Every collective returns a `Result`: the error side is a typed
//! [`CommError`](crate::CommError), never a panic. A
//! [`CommError::RankFailed`](crate::CommError::RankFailed) marks a dead
//! member and is recoverable via [`Communicator::shrink`] —
//! shrink-and-continue in the ULFM sense; `Timeout`/`Poisoned` indicate an
//! algorithm bug and carry the `(plan, seed)` replay pair.

use crate::engine::{Engine, OpKind, Request};
use crate::error::CommError;
use crate::health::RankCrashState;
use kadabra_telemetry::{CounterId, EventWriter, MarkId};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Accumulator downcast helpers
// ---------------------------------------------------------------------------
//
// The engine keys op instances by sequence number and `OpKind` and poisons
// the communicator on kind mismatches, so by the time a deposit or collect
// closure runs, the accumulator's concrete type is pinned by the collective
// that created it. A failed downcast (or absent accumulator where the
// protocol guarantees one) is therefore an engine bug, not recoverable
// state; concentrating the panics here keeps the call sites honest.

/// Views a deposited accumulator as its concrete type.
fn acc_mut<T: 'static>(boxed: &mut Box<dyn Any + Send>) -> &mut T {
    // xtask: allow(unwrap) — type pinned by (seq, OpKind); see module note.
    boxed.downcast_mut::<T>().expect("collective accumulator type")
}

/// Views the (guaranteed-present) accumulator slot as its concrete type.
fn acc_slot_mut<T: 'static>(acc: &mut Option<Box<dyn Any + Send>>) -> &mut T {
    // xtask: allow(unwrap) — first join deposits before finalize/collect run.
    acc_mut(acc.as_mut().expect("collective accumulator present"))
}

/// Reads the (guaranteed-present) accumulator slot as its concrete type.
fn acc_slot_ref<T: 'static>(acc: &Option<Box<dyn Any + Send>>) -> &T {
    acc.as_ref()
        // xtask: allow(unwrap) — first join deposits before collect runs.
        .expect("collective accumulator present")
        .downcast_ref::<T>()
        // xtask: allow(unwrap) — type pinned by (seq, OpKind); see module note.
        .expect("collective accumulator type")
}

/// Takes the accumulator out of the slot (single-consumer collectives).
fn acc_take<T: 'static>(acc: &mut Option<Box<dyn Any + Send>>) -> T {
    // xtask: allow(unwrap) — the engine hands each op's slot to exactly one
    // taker (the root), and the deposit precedes any collect.
    let boxed = acc.take().expect("collective accumulator present");
    // xtask: allow(unwrap) — type pinned by (seq, OpKind); see module note.
    *boxed.downcast::<T>().expect("collective accumulator type")
}

/// Reduction operators for scalar reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise / scalar sum.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    fn apply(self, acc: u64, x: u64) -> u64 {
        match self {
            ReduceOp::Sum => acc + x,
            ReduceOp::Min => acc.min(x),
            ReduceOp::Max => acc.max(x),
        }
    }
}

/// A simulated MPI communicator: a rank number plus a handle on the shared
/// collective engine. Cloneable only via [`Communicator::split`] /
/// [`Communicator::shrink`] (each rank must own exactly one handle per
/// communicator, mirroring MPI).
pub struct Communicator {
    engine: Arc<Engine>,
    rank: usize,
    seq: Cell<u64>,
    /// Next shrink generation of this communicator (advanced on success, so
    /// repeated failures shrink through distinct generations).
    shrink_gen: Cell<u64>,
    /// Next grow generation (a separate stream from `shrink_gen`: the two
    /// use disjoint reserved key spaces in the engine's slot map).
    grow_gen: Cell<u64>,
    /// Crash schedule of the OS thread driving this rank (shared across all
    /// of the rank's communicators; None without a scheduled crash).
    crash: Option<Arc<RankCrashState>>,
    /// Telemetry writer of the thread driving this rank (None = untraced).
    /// `RefCell`, not a lock: the communicator is single-threaded by
    /// construction (`!Sync` via `seq`), mirroring MPI's one-handle-per-rank
    /// ownership.
    tracer: RefCell<Option<EventWriter>>,
}

/// color -> (engine, member parent ranks in communicator order).
type SplitGroups = HashMap<u32, (Arc<Engine>, Vec<usize>)>;

/// Accumulator for `Split` collectives: submissions, then per-color results.
struct SplitAcc {
    submissions: Vec<(usize, u32, i64)>, // (parent rank, color, key)
    groups: Option<SplitGroups>,
}

impl Communicator {
    pub(crate) fn new(
        engine: Arc<Engine>,
        rank: usize,
        crash: Option<Arc<RankCrashState>>,
    ) -> Self {
        Communicator {
            engine,
            rank,
            seq: Cell::new(0),
            shrink_gen: Cell::new(0),
            grow_gen: Cell::new(0),
            crash,
            tracer: RefCell::new(None),
        }
    }

    /// Attaches the telemetry writer of the thread driving this rank. Every
    /// collective then records `CollectiveStart`/`CollectiveComplete`
    /// markers, overlapped polls tick the writer's logical clock, and p2p
    /// receives record delivery slots. Derived communicators
    /// ([`Communicator::split`], [`Communicator::shrink`]) inherit the
    /// tracer.
    pub fn set_tracer(&self, writer: EventWriter) {
        *self.tracer.borrow_mut() = Some(writer);
    }

    /// This rank joined collective `seq`.
    fn trace_join(&self, seq: u64) {
        if let Some(w) = self.tracer.borrow().as_ref() {
            w.mark(MarkId::CollectiveStart, seq);
            w.count(CounterId::Collectives, 1);
        }
    }

    /// A blocking collective resolved at this rank (non-blocking requests
    /// record their own completion).
    fn trace_complete(&self, seq: u64) {
        if let Some(w) = self.tracer.borrow().as_ref() {
            w.mark(MarkId::CollectiveComplete, seq);
        }
    }

    /// Tracer handle for a [`Request`] (same thread, so cloning is safe).
    fn tracer_clone(&self) -> Option<EventWriter> {
        self.tracer.borrow().clone()
    }

    /// A p2p message from `src` was delivered out of delivery slot `slot`
    /// (see `p2p.rs`; slot != send index only under fault-plan jitter).
    pub(crate) fn trace_p2p(&self, src: usize, slot: u64) {
        if let Some(w) = self.tracer.borrow().as_ref() {
            w.mark(MarkId::P2pDeliver, ((src as u64) << 32) | (slot & 0xffff_ffff));
            w.count(CounterId::P2pDelivered, 1);
        }
    }

    /// Crash checkpoint before a collective join: a rank whose fault plan
    /// schedules a crash here dies *instead of* joining (its peers then see
    /// [`CommError::RankFailed`] on the op).
    fn crash_checkpoint(&self) -> Result<(), CommError> {
        match &self.crash {
            Some(c) => c.on_collective(),
            None => Ok(()),
        }
    }

    /// This process's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.engine.size
    }

    /// This process's rank in the original world communicator (stable across
    /// [`Communicator::split`] and [`Communicator::shrink`] — the identity
    /// that [`CommError::RankFailed`] reports).
    pub fn world_rank(&self) -> usize {
        self.engine.members[self.rank]
    }

    /// World ranks of the communicator's members, in rank order.
    pub fn members(&self) -> &[usize] {
        &self.engine.members
    }

    /// Total payload bytes contributed to this communicator's collectives by
    /// all ranks so far (a shrunk communicator carries its parent's tally).
    pub fn bytes_transferred(&self) -> u64 {
        self.engine.bytes_transferred()
    }

    /// Internal accessors for the point-to-point layer (`p2p.rs`).
    pub(crate) fn mailbox(&self) -> &crate::p2p::Mailbox {
        &self.engine.mailbox
    }

    pub(crate) fn engine_add_bytes(&self, bytes: u64) {
        self.engine.add_bytes(bytes);
    }

    /// Plan-hash salt of the underlying engine (test hook for the salt
    /// independence regression in `tests.rs`).
    #[cfg(test)]
    pub(crate) fn salt(&self) -> u64 {
        self.engine.salt
    }

    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }

    /// Completion-observation delay (in polls of the request's logical
    /// clock) the fault plan injects for this rank's view of op `seq`;
    /// 0 without a plan.
    fn injected_delay(&self, seq: u64) -> u64 {
        match &self.engine.plan {
            Some(p) => p.collective_delay(self.engine.salt, self.rank, seq),
            None => 0,
        }
    }

    /// The [`crate::FaultPlan`] this communicator runs under, if any.
    pub fn fault_plan(&self) -> Option<&crate::FaultPlan> {
        self.engine.plan.as_deref()
    }

    // ------------------------------------------------------------------
    // Barrier
    // ------------------------------------------------------------------

    /// Blocking barrier (`MPI_Barrier`).
    pub fn barrier(&self) -> Result<(), CommError> {
        self.ibarrier()?.wait()
    }

    /// Non-blocking barrier (`MPI_Ibarrier`). The paper's final
    /// implementation (Section IV-F) pairs this with a blocking reduce.
    pub fn ibarrier(&self) -> Result<Request<()>, CommError> {
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.join(self.rank, seq, OpKind::Barrier, |_acc| {}, |_acc| {})?;
        self.trace_join(seq);
        Ok(Request::new(
            self.engine.clone(),
            seq,
            self.injected_delay(seq),
            Box::new(|_acc| {}),
            self.crash.clone(),
            self.tracer_clone(),
        ))
    }

    // ------------------------------------------------------------------
    // Reduce
    // ------------------------------------------------------------------

    /// Blocking element-wise sum reduction of `u64` vectors to `root`
    /// (`MPI_Reduce` with `MPI_SUM`). Returns `Some(total)` at the root,
    /// `None` elsewhere. All ranks must pass vectors of equal length.
    pub fn reduce_sum_u64(&self, root: usize, data: &[u64]) -> Result<Option<Vec<u64>>, CommError> {
        self.ireduce_sum_u64(root, data)?.wait()
    }

    /// Non-blocking element-wise sum reduction (`MPI_Ireduce`). Completion
    /// (even at non-roots) requires all ranks to have joined — the
    /// "non-blocking barrier" property of Section IV-C.
    pub fn ireduce_sum_u64(
        &self,
        root: usize,
        data: &[u64],
    ) -> Result<Request<Option<Vec<u64>>>, CommError> {
        assert!(root < self.size(), "root out of range");
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.add_bytes(data.len() as u64 * 8);
        let expected_len = data.len();
        self.engine.join(
            self.rank,
            seq,
            OpKind::Reduce { root },
            |acc| match acc {
                None => *acc = Some(Box::new(data.to_vec())),
                Some(boxed) => {
                    let v = acc_mut::<Vec<u64>>(boxed);
                    assert_eq!(v.len(), expected_len, "reduce length mismatch across ranks");
                    for (a, &x) in v.iter_mut().zip(data) {
                        *a += x;
                    }
                }
            },
            |_acc| {},
        )?;
        self.trace_join(seq);
        let is_root = self.rank == root;
        Ok(Request::new(
            self.engine.clone(),
            seq,
            self.injected_delay(seq),
            Box::new(
                move |acc: &mut Option<Box<dyn Any + Send>>| {
                    if is_root {
                        Some(acc_take::<Vec<u64>>(acc))
                    } else {
                        None
                    }
                },
            ),
            self.crash.clone(),
            self.tracer_clone(),
        ))
    }

    /// Blocking scalar reduction to `root`.
    pub fn reduce_scalar_u64(
        &self,
        root: usize,
        op: ReduceOp,
        value: u64,
    ) -> Result<Option<u64>, CommError> {
        assert!(root < self.size(), "root out of range");
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.add_bytes(8);
        self.engine.join(
            self.rank,
            seq,
            OpKind::Reduce { root },
            |acc| match acc {
                None => *acc = Some(Box::new((op, value))),
                Some(boxed) => {
                    let (stored_op, v) = acc_mut::<(ReduceOp, u64)>(boxed);
                    assert_eq!(*stored_op, op, "reduce op mismatch across ranks");
                    *v = op.apply(*v, value);
                }
            },
            |_acc| {},
        )?;
        self.trace_join(seq);
        let is_root = self.rank == root;
        let out = self.engine.wait_complete(seq, move |acc| {
            if is_root {
                Some(acc_take::<(ReduceOp, u64)>(acc).1)
            } else {
                None
            }
        })?;
        self.trace_complete(seq);
        Ok(out)
    }

    /// Blocking element-wise sum all-reduce of `u64` vectors: every rank
    /// receives the total. Used for the calibration phase, where every rank
    /// derives the per-vertex failure probabilities from the same aggregated
    /// counts, and by recovery to rebuild the global state from survivor
    /// ledgers.
    pub fn allreduce_sum_u64(&self, data: &[u64]) -> Result<Vec<u64>, CommError> {
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.add_bytes(data.len() as u64 * 8);
        let expected_len = data.len();
        self.engine.join(
            self.rank,
            seq,
            OpKind::Allreduce,
            |acc| match acc {
                None => *acc = Some(Box::new(data.to_vec())),
                Some(boxed) => {
                    let v = acc_mut::<Vec<u64>>(boxed);
                    assert_eq!(v.len(), expected_len, "allreduce length mismatch across ranks");
                    for (a, &x) in v.iter_mut().zip(data) {
                        *a += x;
                    }
                }
            },
            |_acc| {},
        )?;
        self.trace_join(seq);
        let out = self.engine.wait_complete(seq, |acc| acc_slot_ref::<Vec<u64>>(acc).clone())?;
        self.trace_complete(seq);
        Ok(out)
    }

    /// Blocking all-reduce (scalar): every rank receives the reduction.
    pub fn allreduce_scalar_u64(&self, op: ReduceOp, value: u64) -> Result<u64, CommError> {
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.add_bytes(8);
        self.engine.join(
            self.rank,
            seq,
            OpKind::Allreduce,
            |acc| match acc {
                None => *acc = Some(Box::new((op, value))),
                Some(boxed) => {
                    let (stored_op, v) = acc_mut::<(ReduceOp, u64)>(boxed);
                    assert_eq!(*stored_op, op, "allreduce op mismatch across ranks");
                    *v = op.apply(*v, value);
                }
            },
            |_acc| {},
        )?;
        self.trace_join(seq);
        let out = self.engine.wait_complete(seq, |acc| acc_slot_ref::<(ReduceOp, u64)>(acc).1)?;
        self.trace_complete(seq);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Broadcast
    // ------------------------------------------------------------------

    /// Blocking broadcast of one `u64` from `root`; the root passes
    /// `Some(value)`, everyone else `None`; all ranks receive the value.
    pub fn bcast_u64(&self, root: usize, value: Option<u64>) -> Result<u64, CommError> {
        self.ibcast_u64(root, value)?.wait()
    }

    /// Non-blocking broadcast of one `u64` (`MPI_Ibcast`). Used to propagate
    /// the termination flag while overlapping sampling (Algorithm 1 line 16).
    pub fn ibcast_u64(&self, root: usize, value: Option<u64>) -> Result<Request<u64>, CommError> {
        assert!(root < self.size(), "root out of range");
        assert_eq!(
            value.is_some(),
            self.rank == root,
            "exactly the root must supply the broadcast value"
        );
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        self.engine.add_bytes(8);
        self.engine.join(
            self.rank,
            seq,
            OpKind::Bcast { root },
            |acc| {
                if let Some(v) = value {
                    assert!(acc.is_none(), "two ranks claimed broadcast root");
                    *acc = Some(Box::new(v));
                }
            },
            |_acc| {},
        )?;
        self.trace_join(seq);
        Ok(Request::new(
            self.engine.clone(),
            seq,
            self.injected_delay(seq),
            Box::new(|acc: &mut Option<Box<dyn Any + Send>>| *acc_slot_ref::<u64>(acc)),
            self.crash.clone(),
            self.tracer_clone(),
        ))
    }

    /// Broadcast of a boolean (the termination flag `d` of the paper's
    /// algorithms), encoded over [`Self::ibcast_u64`].
    pub fn ibcast_bool(&self, root: usize, value: Option<bool>) -> Result<Request<u64>, CommError> {
        self.ibcast_u64(root, value.map(u64::from))
    }

    // ------------------------------------------------------------------
    // Split
    // ------------------------------------------------------------------

    /// Splits the communicator (`MPI_Comm_split`): ranks with equal `color`
    /// form a new communicator; ranks within it are ordered by `(key, rank)`.
    ///
    /// Section IV-E of the paper builds two derived communicators this way:
    /// a node-local one (all ranks on one compute node) and a global one
    /// (the first rank of each node).
    pub fn split(&self, color: u32, key: i64) -> Result<Communicator, CommError> {
        self.crash_checkpoint()?;
        let seq = self.next_seq();
        let my = (self.rank, color, key);
        // Every rank captures identical (plan, salt, members, health);
        // whichever arrives last runs `finalize`, so child engines are
        // identical regardless of arrival order. Each color derives its own
        // salt so sibling communicators draw from independent delay streams.
        let plan = self.engine.plan.clone();
        let parent_salt = self.engine.salt;
        let parent_members = self.engine.members.clone();
        let health = self.engine.health.clone();
        self.engine.join(
            self.rank,
            seq,
            OpKind::Split,
            |acc| match acc {
                None => {
                    *acc = Some(Box::new(SplitAcc { submissions: vec![my], groups: None }));
                }
                Some(boxed) => {
                    acc_mut::<SplitAcc>(boxed).submissions.push(my);
                }
            },
            |acc| {
                // Last arrival: build one engine per color.
                let sp = acc_slot_mut::<SplitAcc>(acc);
                let mut by_color: HashMap<u32, Vec<(i64, usize)>> = HashMap::new();
                for &(rank, c, k) in &sp.submissions {
                    by_color.entry(c).or_default().push((k, rank));
                }
                let mut groups = HashMap::new();
                // Per-color engines must be built in a deterministic order:
                // construction touches the shared health ledger, and hash
                // order would make that sequence differ run to run.
                // xtask: allow(determinism) — hash order is drained into a
                // Vec here and sorted by color on the next line.
                let mut colors: Vec<(u32, Vec<(i64, usize)>)> = by_color.into_iter().collect();
                colors.sort_unstable_by_key(|&(c, _)| c);
                for (c, mut members) in colors {
                    members.sort_unstable();
                    let ranks: Vec<usize> = members.into_iter().map(|(_, r)| r).collect();
                    let world: Vec<usize> = ranks.iter().map(|&r| parent_members[r]).collect();
                    let salt = crate::fault::derive_salt(parent_salt, seq, c);
                    let engine = Engine::for_members(world, plan.clone(), salt, health.clone(), 0);
                    groups.insert(c, (engine, ranks));
                }
                sp.groups = Some(groups);
            },
        )?;
        self.trace_join(seq);
        let my_rank = self.rank;
        let my_crash = self.crash.clone();
        let child = self.engine.wait_complete(seq, move |acc| {
            let sp = acc_slot_ref::<SplitAcc>(acc);
            // xtask: allow(unwrap) — finalize ran before any wait_complete
            // returns, so the per-color groups exist.
            let (engine, ranks) = &sp.groups.as_ref().expect("groups built")[&color];
            let new_rank = ranks
                .iter()
                .position(|&r| r == my_rank)
                // xtask: allow(unwrap) — this rank's own submission is in
                // exactly one color group.
                .expect("own rank in group");
            Communicator::new(engine.clone(), new_rank, my_crash)
        })?;
        self.trace_complete(seq);
        // Derived communicators report into the same per-thread recorder, so
        // the phase summary covers local and leader traffic alike.
        if let Some(w) = self.tracer_clone() {
            child.set_tracer(w);
        }
        Ok(child)
    }

    // ------------------------------------------------------------------
    // Shrink
    // ------------------------------------------------------------------

    /// Shrinks the communicator after a member failure (ULFM's
    /// `MPI_Comm_shrink`): every *living* member calls this; the result is a
    /// new, smaller communicator over exactly the survivors, ordered by
    /// parent rank. Dead members are excluded; a member that died between
    /// the failure and its own shrink call is excluded too (survivorship is
    /// decided by the shared health registry, so all survivors agree on the
    /// membership).
    ///
    /// Entering shrink abandons every in-flight operation on *all* of this
    /// rank's communicators: waiters elsewhere observe the abandonment as
    /// [`CommError::RankFailed`] and are expected to join the recovery
    /// themselves (the shrink-and-continue protocol of the drivers in
    /// `kadabra-core`). The child draws injected-fault streams from a salt
    /// derived from the shrink *generation*, independent of every `split`
    /// sibling and of the parent — survivors' op-sequence counters may have
    /// diverged at the failure point, so the generation (not the seq) is the
    /// coordinate all survivors share.
    pub fn shrink(&self) -> Result<Communicator, CommError> {
        // Deliberately no crash checkpoint: shrink is the recovery path.
        // A rank whose own crash already fired cannot get here (every
        // checkpoint after `die()` keeps failing), so survivors-only is
        // preserved without consuming a logical-clock tick.
        self.engine.health.begin_recovery(self.world_rank());
        let generation = self.shrink_gen.get();
        let (engine, new_rank) = self.engine.shrink(self.rank, generation)?;
        self.shrink_gen.set(generation + 1);
        let child = Communicator::new(engine, new_rank, self.crash.clone());
        if let Some(w) = self.tracer_clone() {
            child.set_tracer(w);
        }
        Ok(child)
    }

    // ------------------------------------------------------------------
    // Grow
    // ------------------------------------------------------------------

    /// Grows the communicator by admitting up to `extra` standby ranks at a
    /// collective boundary — the mirror of [`Communicator::shrink`]. Every
    /// live member calls this with the same `extra`; the result is a new,
    /// larger communicator whose members are the callers in parent-rank
    /// order followed by the admitted standbys (smallest world rank first).
    /// Admitted standbys receive their own handle on the same child through
    /// [`crate::StandbyRank::wait_admission`], already ranked after the
    /// incumbents. Returns the incumbent's handle on the child.
    ///
    /// Unlike shrink, grow is *not* a recovery path: the crash checkpoint
    /// applies, so a rank whose fault plan schedules a crash here dies
    /// instead of joining. Members that die while the grow is in flight are
    /// excused (the collective still completes over the survivors). The
    /// child's plan-hash salt is derived from the grow *generation* key with
    /// its own color, so grown communicators never alias the parent's hash
    /// stream, any `split` child's, or any shrink generation's.
    pub fn grow(&self, extra: usize) -> Result<Communicator, CommError> {
        self.crash_checkpoint()?;
        let generation = self.grow_gen.get();
        let (engine, new_rank, admitted) = self.engine.grow(self.rank, generation, extra)?;
        self.grow_gen.set(generation + 1);
        let child = Communicator::new(engine, new_rank, self.crash.clone());
        if let Some(w) = self.tracer_clone() {
            w.count(CounterId::RanksJoined, admitted as u64);
            child.set_tracer(w);
        }
        Ok(child)
    }
}
