//! An in-process **simulated MPI runtime**.
//!
//! The paper's algorithms run on MPICH over Intel Omni-Path; this container
//! has a single CPU and no interconnect, so we reproduce the *semantics* of
//! the MPI machinery the paper uses — communicators, `MPI_Comm_split`,
//! blocking and non-blocking collectives (`Barrier`/`Ibarrier`,
//! `Reduce`/`Ireduce`, `Bcast`/`Ibcast`, `Allreduce`) — as an in-process
//! runtime where every MPI *process* is an OS thread (see DESIGN.md §3 for
//! why this substitution is sound; performance modelling lives in
//! `kadabra-cluster`).
//!
//! Semantics notes:
//!
//! * Collectives must be called by **all ranks of a communicator in the same
//!   order** — exactly MPI's rule. The runtime detects violations (mismatched
//!   operation kinds for the same sequence number), poisons the communicator,
//!   and every waiter fails with a typed [`CommError::Poisoned`] instead of
//!   deadlocking or panicking.
//! * Non-blocking operations return a [`Request`]; `test()` polls without
//!   blocking (the caller can keep sampling — this is what Algorithms 1 and 2
//!   of the paper do in their `while IREDUCE(...) is not done` loops),
//!   `wait()` blocks.
//! * A non-blocking collective completes at a rank only once **all** ranks
//!   have joined it. For `Ibarrier` this is MPI semantics; for
//!   `Ireduce`/`Ibcast` real MPI makes weaker local guarantees, but the
//!   stronger barrier-like completion is precisely the property the paper
//!   relies on ("because the MPI reduction acts as a non-blocking barrier,
//!   the epoch numbers in different processes cannot differ by more than
//!   one", Section IV-C).
//! * Every payload byte is counted per communicator; the experiment
//!   harness reads [`Communicator::bytes_transferred`] to reproduce the
//!   communication-volume column of Table II.
//!
//! Besides the collectives the paper's algorithms use, the runtime provides
//! tagged point-to-point messaging (buffered `send`, blocking `recv`,
//! `probe`) and a rank-ordered `gather` built on it — see [`Communicator`].
//!
//! **Fault tolerance** (DESIGN.md §10): every communicator operation returns
//! a `Result` whose error side is a typed [`CommError`] — never a panic. A
//! [`FaultPlan`] can schedule deterministic rank crashes ([`CrashPoint`]);
//! survivors observe [`CommError::RankFailed`] and recover with
//! [`Communicator::shrink`], the ULFM-style shrink-and-continue protocol the
//! `kadabra-core` drivers build on.
//!
//! **Elasticity** (DESIGN.md §15): capacity also turns *up* —
//! [`Universe::run_elastic`] launches standby ranks that
//! [`Communicator::grow`] admits at a collective boundary (scheduled by the
//! plan's [`JoinPoint`]s), and a deterministic work-stealing handshake
//! ([`Communicator::steal_claim`] / [`Communicator::steal_grant`])
//! redistributes sample quota away from plan-marked stragglers.

mod comm;
mod engine;
mod error;
mod fault;
mod health;
mod p2p;
mod steal;
mod sync;
mod universe;

pub use comm::{Communicator, ReduceOp};
pub use engine::Request;
pub use error::CommError;
pub use fault::{CrashPoint, FaultPlan, JoinPoint};
pub use steal::{STEAL_CLAIM_TAG, STEAL_GRANT_TAG};
pub use universe::{ElasticRank, StandbyRank, Universe};

#[cfg(test)]
mod tests;
