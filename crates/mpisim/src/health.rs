//! World-health bookkeeping for the crash-fault layer.
//!
//! One [`WorldHealth`] is shared by every communicator of a simulated MPI
//! world (the world engine and all of its `split`/`shrink` descendants), so
//! a rank declared dead on any communicator is visible to waiters on all of
//! them — the property that keeps the hierarchical drivers deadlock-free
//! when a failure is first observed on a sibling communicator.
//!
//! Two member states matter to a waiter:
//!
//! * **dead** — the rank hit its plan-scheduled crash point and will never
//!   join another operation;
//! * **recovering** — the rank abandoned its current program point to enter
//!   [`crate::Communicator::shrink`] and will never join *old* (pre-shrink)
//!   operations, though it is still alive.
//!
//! An operation wait fails (with [`crate::CommError::RankFailed`]) exactly
//! when some member has joined neither state-wise nor literally: a member in
//! `dead ∪ recovering` that has not joined the op never will, so the op can
//! never complete. Completion itself remains "all members joined" — failure
//! detection only short-circuits waits that are provably stuck, which is
//! what keeps perturbed-run outcomes a pure function of `(plan, seed)`.

use crate::error::CommError;
use crate::fault::CrashPoint;
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Liveness registry shared by all communicators of one world.
pub(crate) struct WorldHealth {
    state: Mutex<HealthState>,
}

#[derive(Default)]
struct HealthState {
    dead: BTreeSet<usize>,
    recovering: BTreeSet<usize>,
}

impl WorldHealth {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WorldHealth { state: Mutex::new(HealthState::default()) })
    }

    /// Declares `world_rank` dead (idempotent, never reversed).
    pub(crate) fn mark_dead(&self, world_rank: usize) {
        self.state.lock().dead.insert(world_rank);
    }

    pub(crate) fn is_dead(&self, world_rank: usize) -> bool {
        self.state.lock().dead.contains(&world_rank)
    }

    /// Marks `world_rank` as having abandoned pre-shrink operations.
    pub(crate) fn begin_recovery(&self, world_rank: usize) {
        self.state.lock().recovering.insert(world_rank);
    }

    /// Clears the recovering flag of every shrink survivor (they have all
    /// joined the shrink generation, so no waiter can still be blocked on an
    /// operation they abandoned).
    pub(crate) fn end_recovery(&self, survivors: &[usize]) {
        let mut st = self.state.lock();
        for r in survivors {
            st.recovering.remove(r);
        }
    }

    /// The smallest world rank in `members` that has not joined (per
    /// `joined`, indexed like `members`) and never will — i.e. is dead or
    /// recovering. `None` means every absent member may still arrive.
    pub(crate) fn first_stuck_member(&self, members: &[usize], joined: &[bool]) -> Option<usize> {
        let st = self.state.lock();
        members
            .iter()
            .zip(joined)
            .filter(|&(wr, &j)| !j && (st.dead.contains(wr) || st.recovering.contains(wr)))
            .map(|(&wr, _)| wr)
            .min()
    }

    /// Whether every member either joined or is dead (the completion rule of
    /// a shrink generation, which excuses only the genuinely dead — a
    /// recovering member is en route to this very shrink and must join it).
    pub(crate) fn shrink_complete(&self, members: &[usize], joined: &[bool]) -> bool {
        let st = self.state.lock();
        members.iter().zip(joined).all(|(wr, &j)| j || st.dead.contains(wr))
    }
}

/// Per-rank crash schedule derived from the [`crate::FaultPlan`]: a logical
/// clock of collective joins and unsuccessful polls, shared (via `Arc`) by
/// every communicator and request the rank owns, so the crash fires at the
/// plan's exact program point regardless of which communicator the rank is
/// using. Created by [`crate::Universe`]; absent without a scheduled crash.
pub(crate) struct RankCrashState {
    world_rank: usize,
    point: CrashPoint,
    health: Arc<WorldHealth>,
    joins: AtomicU64,
    polls: AtomicU64,
    fired: AtomicBool,
}

impl RankCrashState {
    pub(crate) fn new(world_rank: usize, point: CrashPoint, health: Arc<WorldHealth>) -> Arc<Self> {
        Arc::new(RankCrashState {
            world_rank,
            point,
            health,
            joins: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    fn die(&self) -> CommError {
        self.fired.store(true, Ordering::Relaxed);
        self.health.mark_dead(self.world_rank);
        CommError::RankFailed { rank: self.world_rank }
    }

    /// Called before each collective join (shrink excluded). The rank dies
    /// *instead of* joining its scheduled collective, counted across every
    /// communicator it owns.
    pub(crate) fn on_collective(&self) -> Result<(), CommError> {
        if self.fired.load(Ordering::Relaxed) {
            return Err(CommError::RankFailed { rank: self.world_rank });
        }
        let nth = self.joins.fetch_add(1, Ordering::Relaxed);
        match self.point {
            CrashPoint::AtCollective(s) if nth >= s => Err(self.die()),
            _ => Ok(()),
        }
    }

    /// Called on each unsuccessful request poll (one logical-clock tick).
    /// Under a plan the cumulative poll count at any program point is a pure
    /// function of the plan's injected delays, so an `AfterPolls` crash
    /// lands mid-overlap (e.g. during an in-flight reduction) and is still
    /// exactly reproducible.
    pub(crate) fn on_poll(&self) -> Result<(), CommError> {
        if self.fired.load(Ordering::Relaxed) {
            return Err(CommError::RankFailed { rank: self.world_rank });
        }
        let n = self.polls.fetch_add(1, Ordering::Relaxed) + 1;
        match self.point {
            CrashPoint::AfterPolls(k) if n >= k => Err(self.die()),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_at_the_scheduled_collective_and_marks_dead() {
        let health = WorldHealth::new();
        let cs = RankCrashState::new(2, CrashPoint::AtCollective(3), health.clone());
        for _ in 0..3 {
            assert!(cs.on_collective().is_ok());
        }
        assert!(!health.is_dead(2));
        assert_eq!(cs.on_collective(), Err(CommError::RankFailed { rank: 2 }));
        assert!(health.is_dead(2));
        // Once fired, every further checkpoint keeps failing.
        assert!(cs.on_poll().is_err());
        assert!(cs.on_collective().is_err());
    }

    #[test]
    fn poll_crash_counts_cumulatively() {
        let health = WorldHealth::new();
        let cs = RankCrashState::new(0, CrashPoint::AfterPolls(5), health.clone());
        for _ in 0..4 {
            assert!(cs.on_poll().is_ok());
        }
        assert_eq!(cs.on_poll(), Err(CommError::RankFailed { rank: 0 }));
        assert!(health.is_dead(0));
    }

    #[test]
    fn stuck_member_detection_respects_join_state() {
        let health = WorldHealth::new();
        let members = [0usize, 3, 5];
        // Nobody dead: absent members may still arrive.
        assert_eq!(health.first_stuck_member(&members, &[false, false, false]), None);
        health.mark_dead(5);
        // Dead but already joined: the op can still complete.
        assert_eq!(health.first_stuck_member(&members, &[false, false, true]), None);
        // Dead and not joined: provably stuck.
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(5));
        health.begin_recovery(3);
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(3));
        health.end_recovery(&[3]);
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(5));
    }

    #[test]
    fn shrink_completion_excuses_only_the_dead() {
        let health = WorldHealth::new();
        let members = [0usize, 1, 2];
        assert!(!health.shrink_complete(&members, &[true, false, true]));
        health.begin_recovery(1); // recovering must still join
        assert!(!health.shrink_complete(&members, &[true, false, true]));
        health.mark_dead(1);
        assert!(health.shrink_complete(&members, &[true, false, true]));
    }
}
