//! World-health bookkeeping for the crash-fault layer.
//!
//! One [`WorldHealth`] is shared by every communicator of a simulated MPI
//! world (the world engine and all of its `split`/`shrink` descendants), so
//! a rank declared dead on any communicator is visible to waiters on all of
//! them — the property that keeps the hierarchical drivers deadlock-free
//! when a failure is first observed on a sibling communicator.
//!
//! Two member states matter to a waiter:
//!
//! * **dead** — the rank hit its plan-scheduled crash point and will never
//!   join another operation;
//! * **recovering** — the rank abandoned its current program point to enter
//!   [`crate::Communicator::shrink`] and will never join *old* (pre-shrink)
//!   operations, though it is still alive.
//!
//! An operation wait fails (with [`crate::CommError::RankFailed`]) exactly
//! when some member has joined neither state-wise nor literally: a member in
//! `dead ∪ recovering` that has not joined the op never will, so the op can
//! never complete. Completion itself remains "all members joined" — failure
//! detection only short-circuits waits that are provably stuck, which is
//! what keeps perturbed-run outcomes a pure function of `(plan, seed)`.
//!
//! # The join gate (elastic grow)
//!
//! The registry also carries the world's **join gate** — the handshake
//! between standby ranks (spawned by [`crate::Universe::run_elastic`] but
//! not yet members of any communicator) and a grow generation admitting
//! them. Three standby states matter:
//!
//! * **standby** — registered at launch, waiting for admission. Which ranks
//!   a grow admits is decided from this registry (the `k` smallest standby
//!   world ranks), *not* from thread arrival order, so admission is a pure
//!   function of `(plan, seed)`;
//! * **joining** — admitted by a grow generation that published the rank's
//!   ticket (child engine + new rank) but not yet confirmed; a waiter that
//!   sees a joining member absent from an op keeps waiting (it is alive and
//!   en route), which is automatic since joining ranks are neither dead nor
//!   recovering;
//! * **confirmed** — the standby picked up its ticket and owns a
//!   communicator handle; the gate forgets it.
//!
//! Closing the gate (end of run) releases every never-admitted standby with
//! a typed error instead of leaving it blocked forever.

use crate::engine::Engine;
use crate::error::CommError;
use crate::fault::CrashPoint;
use crate::sync::{AtomicBool, AtomicU64, Ordering};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Re-check period of a blocked admission wait (matches the engine's wait
/// slice).
const JOIN_WAIT_SLICE: Duration = Duration::from_millis(5);

/// Liveness registry shared by all communicators of one world.
pub(crate) struct WorldHealth {
    state: Mutex<HealthState>,
    /// Wakes standby ranks blocked in [`WorldHealth::wait_admission`] when a
    /// ticket is delivered or the gate closes.
    join_cv: Condvar,
}

#[derive(Default)]
struct HealthState {
    dead: BTreeSet<usize>,
    recovering: BTreeSet<usize>,
    /// Registered standby world ranks not yet taken by any grow.
    standby: BTreeSet<usize>,
    /// Admitted-but-unconfirmed world ranks (between grow and ticket pickup).
    joining: BTreeSet<usize>,
    /// Admission tickets: world rank → (child engine, rank within it).
    admitted: HashMap<usize, (Arc<Engine>, usize)>,
    /// Latched once the run ends; never-admitted standbys are released.
    gate_closed: bool,
}

impl WorldHealth {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(WorldHealth { state: Mutex::new(HealthState::default()), join_cv: Condvar::new() })
    }

    /// Declares `world_rank` dead (idempotent, never reversed).
    pub(crate) fn mark_dead(&self, world_rank: usize) {
        self.state.lock().dead.insert(world_rank);
    }

    pub(crate) fn is_dead(&self, world_rank: usize) -> bool {
        self.state.lock().dead.contains(&world_rank)
    }

    /// Marks `world_rank` as having abandoned pre-shrink operations.
    pub(crate) fn begin_recovery(&self, world_rank: usize) {
        self.state.lock().recovering.insert(world_rank);
    }

    /// Clears the recovering flag of every shrink survivor (they have all
    /// joined the shrink generation, so no waiter can still be blocked on an
    /// operation they abandoned).
    pub(crate) fn end_recovery(&self, survivors: &[usize]) {
        let mut st = self.state.lock();
        for r in survivors {
            st.recovering.remove(r);
        }
    }

    /// The smallest world rank in `members` that has not joined (per
    /// `joined`, indexed like `members`) and never will — i.e. is dead or
    /// recovering. `None` means every absent member may still arrive.
    pub(crate) fn first_stuck_member(&self, members: &[usize], joined: &[bool]) -> Option<usize> {
        let st = self.state.lock();
        members
            .iter()
            .zip(joined)
            .filter(|&(wr, &j)| !j && (st.dead.contains(wr) || st.recovering.contains(wr)))
            .map(|(&wr, _)| wr)
            .min()
    }

    /// Whether every member either joined or is dead (the completion rule of
    /// a shrink generation, which excuses only the genuinely dead — a
    /// recovering member is en route to this very shrink and must join it).
    pub(crate) fn shrink_complete(&self, members: &[usize], joined: &[bool]) -> bool {
        let st = self.state.lock();
        members.iter().zip(joined).all(|(wr, &j)| j || st.dead.contains(wr))
    }

    // ------------------------------------------------------------------
    // Join gate
    // ------------------------------------------------------------------

    /// Registers `world_rank` as a standby available for admission. Called
    /// by the universe at launch, before any rank thread runs, so the
    /// standby pool is fixed before the first grow could consult it.
    pub(crate) fn register_standby(&self, world_rank: usize) {
        self.state.lock().standby.insert(world_rank);
    }

    /// Takes up to `k` standbys for admission — always the smallest
    /// registered world ranks, so the admitted set is deterministic. The
    /// taken ranks move to the *joining* state until they confirm.
    pub(crate) fn take_standbys(&self, k: usize) -> Vec<usize> {
        let mut st = self.state.lock();
        let picked: Vec<usize> = st.standby.iter().take(k).copied().collect();
        for &wr in &picked {
            st.standby.remove(&wr);
            st.joining.insert(wr);
        }
        picked
    }

    /// Publishes the admission ticket of `world_rank`: the grown child
    /// engine and the rank's position within it. Wakes the standby's
    /// [`WorldHealth::wait_admission`].
    pub(crate) fn deliver_admission(&self, world_rank: usize, engine: Arc<Engine>, rank: usize) {
        self.state.lock().admitted.insert(world_rank, (engine, rank));
        self.join_cv.notify_all();
    }

    /// Latches the gate shut (idempotent): every standby still waiting
    /// without a ticket is released with an error. Called by the universe
    /// once all founding ranks have returned — no further grow can happen.
    pub(crate) fn close_join_gate(&self) {
        self.state.lock().gate_closed = true;
        self.join_cv.notify_all();
    }

    /// Blocks until `world_rank`'s admission ticket arrives (confirming the
    /// handshake and returning the ticket) or the gate closes without one
    /// (`None`). Undelivered tickets win over a closed gate: a standby
    /// admitted by the run's last grow still gets its communicator.
    pub(crate) fn wait_admission(&self, world_rank: usize) -> Option<(Arc<Engine>, usize)> {
        let mut st = self.state.lock();
        loop {
            if let Some(ticket) = st.admitted.remove(&world_rank) {
                st.joining.remove(&world_rank); // confirm: the handshake is done
                return Some(ticket);
            }
            if st.gate_closed {
                st.standby.remove(&world_rank);
                return None;
            }
            self.join_cv.wait_for(&mut st, JOIN_WAIT_SLICE);
        }
    }
}

/// Per-rank crash schedule derived from the [`crate::FaultPlan`]: a logical
/// clock of collective joins and unsuccessful polls, shared (via `Arc`) by
/// every communicator and request the rank owns, so the crash fires at the
/// plan's exact program point regardless of which communicator the rank is
/// using. Created by [`crate::Universe`]; absent without a scheduled crash.
pub(crate) struct RankCrashState {
    world_rank: usize,
    point: CrashPoint,
    health: Arc<WorldHealth>,
    joins: AtomicU64,
    polls: AtomicU64,
    fired: AtomicBool,
}

impl RankCrashState {
    pub(crate) fn new(world_rank: usize, point: CrashPoint, health: Arc<WorldHealth>) -> Arc<Self> {
        Arc::new(RankCrashState {
            world_rank,
            point,
            health,
            joins: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            fired: AtomicBool::new(false),
        })
    }

    fn die(&self) -> CommError {
        self.fired.store(true, Ordering::Relaxed);
        self.health.mark_dead(self.world_rank);
        CommError::RankFailed { rank: self.world_rank }
    }

    /// Called before each collective join (shrink excluded). The rank dies
    /// *instead of* joining its scheduled collective, counted across every
    /// communicator it owns.
    pub(crate) fn on_collective(&self) -> Result<(), CommError> {
        if self.fired.load(Ordering::Relaxed) {
            return Err(CommError::RankFailed { rank: self.world_rank });
        }
        let nth = self.joins.fetch_add(1, Ordering::Relaxed);
        match self.point {
            CrashPoint::AtCollective(s) if nth >= s => Err(self.die()),
            _ => Ok(()),
        }
    }

    /// Called on each unsuccessful request poll (one logical-clock tick).
    /// Under a plan the cumulative poll count at any program point is a pure
    /// function of the plan's injected delays, so an `AfterPolls` crash
    /// lands mid-overlap (e.g. during an in-flight reduction) and is still
    /// exactly reproducible.
    pub(crate) fn on_poll(&self) -> Result<(), CommError> {
        if self.fired.load(Ordering::Relaxed) {
            return Err(CommError::RankFailed { rank: self.world_rank });
        }
        let n = self.polls.fetch_add(1, Ordering::Relaxed) + 1;
        match self.point {
            CrashPoint::AfterPolls(k) if n >= k => Err(self.die()),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_fires_at_the_scheduled_collective_and_marks_dead() {
        let health = WorldHealth::new();
        let cs = RankCrashState::new(2, CrashPoint::AtCollective(3), health.clone());
        for _ in 0..3 {
            assert!(cs.on_collective().is_ok());
        }
        assert!(!health.is_dead(2));
        assert_eq!(cs.on_collective(), Err(CommError::RankFailed { rank: 2 }));
        assert!(health.is_dead(2));
        // Once fired, every further checkpoint keeps failing.
        assert!(cs.on_poll().is_err());
        assert!(cs.on_collective().is_err());
    }

    #[test]
    fn poll_crash_counts_cumulatively() {
        let health = WorldHealth::new();
        let cs = RankCrashState::new(0, CrashPoint::AfterPolls(5), health.clone());
        for _ in 0..4 {
            assert!(cs.on_poll().is_ok());
        }
        assert_eq!(cs.on_poll(), Err(CommError::RankFailed { rank: 0 }));
        assert!(health.is_dead(0));
    }

    #[test]
    fn stuck_member_detection_respects_join_state() {
        let health = WorldHealth::new();
        let members = [0usize, 3, 5];
        // Nobody dead: absent members may still arrive.
        assert_eq!(health.first_stuck_member(&members, &[false, false, false]), None);
        health.mark_dead(5);
        // Dead but already joined: the op can still complete.
        assert_eq!(health.first_stuck_member(&members, &[false, false, true]), None);
        // Dead and not joined: provably stuck.
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(5));
        health.begin_recovery(3);
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(3));
        health.end_recovery(&[3]);
        assert_eq!(health.first_stuck_member(&members, &[true, false, false]), Some(5));
    }

    #[test]
    fn standbys_are_taken_smallest_first_and_deterministically() {
        let health = WorldHealth::new();
        for wr in [7usize, 4, 9, 5] {
            health.register_standby(wr);
        }
        assert_eq!(health.take_standbys(2), vec![4, 5]);
        assert_eq!(health.take_standbys(5), vec![7, 9], "pool exhausts without panicking");
        assert_eq!(health.take_standbys(1), Vec::<usize>::new());
    }

    #[test]
    fn closed_gate_releases_unadmitted_standbys() {
        let health = WorldHealth::new();
        health.register_standby(3);
        health.close_join_gate();
        assert!(health.wait_admission(3).is_none());
        // Idempotent.
        health.close_join_gate();
        assert!(health.wait_admission(3).is_none());
    }

    #[test]
    fn delivered_ticket_wins_over_a_closed_gate() {
        let health = WorldHealth::new();
        health.register_standby(2);
        assert_eq!(health.take_standbys(1), vec![2]);
        let engine = Engine::new(1);
        health.deliver_admission(2, engine, 1);
        health.close_join_gate();
        let (_, rank) = health.wait_admission(2).expect("ticket delivered before close");
        assert_eq!(rank, 1);
    }

    #[test]
    fn shrink_completion_excuses_only_the_dead() {
        let health = WorldHealth::new();
        let members = [0usize, 1, 2];
        assert!(!health.shrink_complete(&members, &[true, false, true]));
        health.begin_recovery(1); // recovering must still join
        assert!(!health.shrink_complete(&members, &[true, false, true]));
        health.mark_dead(1);
        assert!(health.shrink_complete(&members, &[true, false, true]));
    }
}
