//! Tracer wiring of the simulated MPI runtime: collectives, overlapped
//! polls, and p2p deliveries all show up in the telemetry summary, and the
//! recorded event stream is deterministic under a fault plan.

use kadabra_mpisim::{FaultPlan, Universe};
use kadabra_telemetry::{CounterId, Event, MarkId, Telemetry};
use std::sync::Arc;

#[test]
fn collectives_and_p2p_are_traced() {
    let tel = Arc::new(Telemetry::tracing());
    Universe::run(2, |comm| {
        let w = tel.writer(comm.rank() as u32, 0);
        comm.set_tracer(w);
        // One non-blocking barrier polled to completion...
        let mut req = comm.ibarrier().unwrap();
        while !req.test().unwrap() {}
        // ...one blocking allreduce...
        let total = comm.allreduce_scalar_u64(kadabra_mpisim::ReduceOp::Sum, 1).unwrap();
        assert_eq!(total, 2);
        // ...and one p2p exchange.
        if comm.rank() == 0 {
            comm.send_u64s(1, 3, &[7]);
        } else {
            assert_eq!(comm.recv_u64s(0, 3).unwrap(), vec![7]);
        }
    });
    let s = tel.summary();
    assert_eq!(s.producers, 2);
    // Each rank joined 2 collectives (ibarrier + allreduce).
    assert_eq!(s.counter(CounterId::Collectives), 4);
    assert_eq!(s.counter(CounterId::P2pDelivered), 1);
    let events = tel.events();
    let marks = |id: MarkId| events.iter().filter(|e| e.id == id as u8).count();
    assert_eq!(marks(MarkId::CollectiveStart), 4);
    // Every collective also resolved at every rank.
    assert_eq!(marks(MarkId::CollectiveComplete), 4);
    assert_eq!(marks(MarkId::P2pDeliver), 1);
}

#[test]
fn split_children_inherit_the_tracer() {
    let tel = Arc::new(Telemetry::stats_only());
    Universe::run(4, |comm| {
        comm.set_tracer(tel.writer(comm.rank() as u32, 0));
        let sub = comm.split(u32::try_from(comm.rank() % 2).unwrap_or(0), 0).unwrap();
        sub.barrier().unwrap();
    });
    // 4 splits + 4 child barriers, all attributed to the same recorders.
    assert_eq!(tel.summary().counter(CounterId::Collectives), 8);
    assert_eq!(tel.summary().producers, 4);
}

#[test]
fn plan_runs_trace_deterministically() {
    let run = || -> Vec<Event> {
        let tel = Arc::new(Telemetry::deterministic(1024));
        let plan = FaultPlan::ideal(11).with_collective_delay(1, 5);
        Universe::run_with_plan(2, plan, |comm| {
            comm.set_tracer(tel.writer(comm.rank() as u32, 0));
            let mut req = comm.ireduce_sum_u64(0, &[comm.rank() as u64 + 1]).unwrap();
            let mut polls = 0u64;
            while !req.test().unwrap() {
                polls += 1;
            }
            if comm.rank() == 0 {
                assert_eq!(req.into_result().flatten(), Some(vec![3]));
            }
            polls
        });
        tel.events()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "telemetry events must be a pure function of (plan, seed)");
    // Deterministic mode: wall clocks suppressed; the injected delays ticked
    // the logical clock before the completion marker was recorded.
    assert!(a.iter().all(|e| e.wall_ns == 0));
    assert!(a.iter().filter(|e| e.id == MarkId::CollectiveComplete as u8).any(|e| e.logical > 0));
}
