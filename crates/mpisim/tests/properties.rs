//! Property-based tests of the simulated MPI runtime's collectives.

use kadabra_mpisim::{ReduceOp, Universe};
use proptest::prelude::*;

proptest! {
    // Each case spins up real threads; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vector sum-reduce computes the exact element-wise sum for arbitrary
    /// payloads and any root.
    #[test]
    fn reduce_sum_is_exact(
        ranks in 1usize..6,
        len in 0usize..64,
        root_pick in 0usize..6,
        base in proptest::collection::vec(0u64..1_000_000, 0..64),
    ) {
        let root = root_pick % ranks;
        let out = Universe::run(ranks, |comm| {
            let data: Vec<u64> = (0..len)
                .map(|i| base.get(i).copied().unwrap_or(7) + comm.rank() as u64 * 13)
                .collect();
            comm.reduce_sum_u64(root, &data).unwrap()
        });
        for (rank, res) in out.iter().enumerate() {
            if rank == root {
                let got = res.as_ref().unwrap();
                prop_assert_eq!(got.len(), len);
                for (i, &x) in got.iter().enumerate() {
                    let expect: u64 = (0..ranks)
                        .map(|r| base.get(i).copied().unwrap_or(7) + r as u64 * 13)
                        .sum();
                    prop_assert_eq!(x, expect);
                }
            } else {
                prop_assert!(res.is_none());
            }
        }
    }

    /// Scalar all-reduce agrees with the sequential fold for all operators.
    #[test]
    fn allreduce_scalar_matches_fold(
        ranks in 1usize..6,
        values in proptest::collection::vec(0u64..1_000_000, 6),
    ) {
        for (op, fold) in [
            (ReduceOp::Sum, Box::new(|a: u64, b: u64| a + b) as Box<dyn Fn(u64, u64) -> u64>),
            (ReduceOp::Min, Box::new(u64::min)),
            (ReduceOp::Max, Box::new(u64::max)),
        ] {
            let vals = values.clone();
            let out = Universe::run(ranks, |comm| {
                comm.allreduce_scalar_u64(op, vals[comm.rank()]).unwrap()
            });
            let expect = values[1..ranks].iter().fold(values[0], |a, &b| fold(a, b));
            prop_assert!(out.iter().all(|&x| x == expect), "{op:?}");
        }
    }

    /// Broadcast delivers the root's value to every rank.
    #[test]
    fn broadcast_delivers(ranks in 1usize..6, root_pick in 0usize..6, value in any::<u64>()) {
        let root = root_pick % ranks;
        let out = Universe::run(ranks, |comm| {
            comm.bcast_u64(root, (comm.rank() == root).then_some(value)).unwrap()
        });
        prop_assert!(out.iter().all(|&x| x == value));
    }

    /// Split partitions ranks by color, ordered by key, and the sub-
    /// communicators work.
    #[test]
    fn split_partitions(ranks in 2usize..7, colors in proptest::collection::vec(0u32..3, 7)) {
        let colors_for = colors.clone();
        let out = Universe::run(ranks, |comm| {
            let color = colors_for[comm.rank()];
            let sub = comm.split(color, comm.rank() as i64).unwrap();
            let members = comm.size(); // keep comm alive; use world size too
            (color, sub.rank(), sub.size(), members)
        });
        for (rank, &(color, sub_rank, sub_size, _)) in out.iter().enumerate() {
            let same: Vec<usize> = (0..ranks).filter(|&r| colors[r] == color).collect();
            prop_assert_eq!(sub_size, same.len());
            let expect_rank = same.iter().position(|&r| r == rank).unwrap();
            prop_assert_eq!(sub_rank, expect_rank);
        }
    }
}
