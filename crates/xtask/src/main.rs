//! Workspace automation, invoked as `cargo xtask <command>` (see
//! `.cargo/config.toml` for the alias).
//!
//! # `cargo xtask lint`
//!
//! Workspace static analysis over `crates/` and the root `src/`, `tests/`,
//! `examples/` trees, enforcing rules that clippy cannot express. The
//! default engine is the `kadabra-lint` AST framework (DESIGN.md §12): a
//! hand-rolled lexer and item-level parser drive a registry of passes, each
//! reporting precise `(line, col)` spans; `--legacy` runs the original
//! line-lexer rules of this file instead as an independent cross-check
//! (both engines honour the same waiver syntax). `--json PATH` writes the
//! machine-readable `kadabra-lint/v1` report (schema-validated before the
//! command exits, and written even when findings fail the run so CI can
//! upload it as an artifact). `--write-baseline` accepts all current
//! findings into `lint-baseline.json`, which future runs subtract; the file
//! being absent means an empty baseline.
//!
//! The token-level rules, identical across both engines:
//!
//! * **seqcst** — `Ordering::SeqCst` is banned everywhere. Every atomic in
//!   this workspace has an explicit pairing argument (Release publish /
//!   Acquire consume, or Relaxed where a lock or collective provides the
//!   ordering); `SeqCst` would paper over a missing argument rather than
//!   supply one, and the loom scenarios in `crates/epoch/tests/loom.rs`
//!   verify the weaker orderings are actually sufficient.
//! * **direct-atomics** — atomic types must be imported from a crate's
//!   `sync.rs` indirection module (which swaps in the loom model checker
//!   under `--features loom`), never from `std::sync::atomic` directly.
//!   Files named `sync.rs` and test code are exempt.
//! * **nondeterminism** — `thread_rng` is banned workspace-wide (all
//!   randomness flows from seeded `StdRng`s so every run is reproducible),
//!   and wall-clock reads (`Instant::now`, `SystemTime::now`) are banned in
//!   the deterministic simulation paths (`crates/mpisim/src`,
//!   `crates/cluster/src` except `calibrate.rs`, which exists precisely to
//!   measure real time).
//! * **unwrap** — `.unwrap()` / `.expect(` are banned in library non-test
//!   code; recover, propagate, or document the invariant with a waiver.
//! * **wallclock** — raw wall-clock reads (`Instant::now`,
//!   `SystemTime::now`) are banned under `crates/core/src` and
//!   `crates/graph/src`: the algorithm drivers and the traversal kernel
//!   must take time through `kadabra-telemetry` spans (or its `Stopwatch`)
//!   so there is exactly one timing code path (DESIGN.md §9, §11).
//! * **comm-panic** — `panic!` / `todo!` / `unimplemented!` are banned in
//!   `crates/mpisim/src`: communicator error paths must surface typed
//!   `CommError`s so the fault-tolerance layer can shrink and continue
//!   (DESIGN.md §10). A panicking rank would take the whole simulated
//!   cluster down instead of exercising recovery.
//!
//! The AST engine adds four semantic passes on top (see
//! `crates/lint/src/passes/` for the full rationale of each):
//!
//! * **comm-error-flow** — call sites of the communicator API (harvested
//!   from `pub fn … -> Result<_, CommError>` signatures in
//!   `crates/mpisim/src`) must not swallow the error: `.ok()`,
//!   `.unwrap_or*(…)`, `let _ =`, and bare-statement drops are flagged;
//!   `?`, `match`, and named bindings pass.
//! * **atomic-protocol** — a workspace-wide inventory of atomic operations
//!   per `(crate, field)`: Release stores with no Acquire consumer,
//!   Acquire loads with no Release publisher, and Relaxed operations on
//!   fields that participate in a Release/Acquire protocol are flagged.
//! * **determinism** — name-based taint from hash-ordered containers
//!   (`HashMap`/`HashSet`, through type aliases and struct fields) to
//!   order-sensitive sinks: `for … in`, iteration adaptors, and float
//!   accumulation over hash order; plus `len() as u32`-style truncating
//!   casts in the reproducible crates.
//! * **hot-loop-hygiene** — no allocation, locking, cloning, formatting,
//!   or collectives inside per-sample code: `sample_batch` consume
//!   closures and the named hot functions of `crates/core`/`crates/graph`.
//!
//! Any rule can be waived for one line with a trailing or preceding comment
//! `// xtask: allow(<rule>) — <why this occurrence is sound>`. Waivers are
//! part of the diff and hence of code review.
//!
//! Both engines lex rather than grep: comments, string literals, and
//! `#[cfg(test)]` modules are stripped or marked before matching, so prose
//! *about* `SeqCst` or an error message containing ".unwrap()" never trips
//! a rule. `shims/` is deliberately out of scope — those crates reproduce
//! third-party APIs (including their `SeqCst` surface) and are not governed
//! by this workspace's concurrency discipline; `fixtures` directories are
//! skipped too, since they exist to violate the rules on purpose.
//!
//! # `cargo xtask deny`
//!
//! Supply-chain gate: runs `cargo deny check` against the root `deny.toml`
//! (RustSec advisories, license allow-list, duplicate major versions,
//! source pinning). The cargo-deny binary is not vendored; where it is
//! missing the command prints the install line and exits 2, and CI runs it
//! as an advisory job.
//!
//! # `cargo xtask loom` / `tsan` / `miri`
//!
//! Drivers for the three verification backends. `loom` runs on stable;
//! `tsan` and `miri` need nightly components that may be absent in an
//! offline container, in which case they print exactly what is missing and
//! exit with code 2 (CI marks those jobs allowed-to-fail).
//!
//! # `cargo xtask bench --smoke`
//!
//! Runs the `bench_smoke` binary (a tiny instance through the sequential,
//! flat-MPI and epoch-MPI drivers), the `bench_server` binary (the
//! resident service's query path, which self-gates ≥ 1k queries/s and an
//! allocation-free cache read path), and the `bench_dynamic` binary (the
//! streaming-update path, which self-gates update-and-reconverge work
//! under 25% of a from-scratch run and ε-accuracy against the Brandes
//! oracle), and the `bench_elastic` binary (the elastic scale-out path,
//! which self-gates a ≥ 1.2× mid-run-grow speedup over the static
//! continuation and steal decoupling round latency from the straggler
//! factor), writing `BENCH_smoke.json`, `BENCH_server.json`,
//! `BENCH_dynamic.json`, and `BENCH_elastic.json` to the repo root, then
//! validates the artifacts
//! against the `kadabra-bench/v1` schema — including the value-range
//! checks (nonzero samples/sec, reduction-overlap fraction in [0, 1]). A
//! required CI job, so schema drift fails the PR that causes it, not a
//! plotting script later.
//!
//! # `cargo xtask bench --kernel [--check]`
//!
//! The sampling-kernel perf-regression gate (DESIGN.md §11). Without
//! `--check`, runs the `bench_kernel` binary and records `BENCH_kernel.json`
//! at the repo root — the committed baseline. With `--check`, measures into
//! `target/bench-kernel/` instead and fails when the fresh `kernel` row
//! (relabeled production layout) falls more than 15% below the committed
//! baseline's `samples_per_sec` (`KADABRA_KERNEL_TOLERANCE` overrides the
//! fraction) or reports a nonzero `allocs_per_sample`.
//!
//! # `cargo xtask chaos`
//!
//! Runs the chaos conformance suite (DESIGN.md §8) in release mode: the
//! fault-injection unit tests of `kadabra-mpisim` and `kadabra-epoch`, the
//! fault-plan corpus sweeps of `tests/chaos.rs`, and the seed-matrix
//! determinism regression of `tests/determinism_matrix.rs`. `--plans N` (or
//! `KADABRA_CHAOS_PLANS`) sizes the straggler corpus, `--crashes N` (or
//! `KADABRA_CHAOS_CRASHES`) the rank-crash corpus, and `--grows N` (or
//! `KADABRA_CHAOS_GROWS`) the elastic-join corpus; the defaults of 4 keep
//! the required CI job around two minutes, the nightly advisory job raises
//! them.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("deny") => cmd_deny(),
        Some("loom") => cmd_loom(),
        Some("tsan") => cmd_tsan(),
        Some("miri") => cmd_miri(),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <command>\n\n\
                 commands:\n  \
                 lint   AST-based semantic lint passes (stable)\n         \
                 [--json PATH] write + validate the kadabra-lint/v1 report\n         \
                 [--write-baseline] accept current findings into lint-baseline.json\n         \
                 [--legacy] run the original line-lexer rules instead\n  \
                 deny   supply-chain gate via cargo-deny, config in deny.toml (skips if absent)\n  \
                 loom   model-check the epoch protocol + telemetry recorder + server cache (stable)\n  \
                 tsan   run concurrency tests under ThreadSanitizer (nightly + rust-src)\n  \
                 miri   run epoch tests under Miri (nightly + miri component)\n  \
                 chaos  run the chaos conformance suite [--plans N] [--crashes N] [--grows N] (stable)\n  \
                 bench  --smoke: emit and schema-validate BENCH_smoke.json + BENCH_server.json (stable)\n         \
                 --kernel [--check]: sampling-kernel perf baseline / regression gate"
            );
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------------------
// lint
// ---------------------------------------------------------------------------

/// One lint rule: an identifying slug plus a human-facing rationale shown
/// with every diagnostic.
struct Rule {
    name: &'static str,
    hint: &'static str,
}

const SEQCST: Rule = Rule {
    name: "seqcst",
    hint: "SeqCst is banned: state the actual pairing with Release/Acquire (or Relaxed + a lock), \
           and let the loom tests prove it sufficient",
};
const DIRECT_ATOMICS: Rule = Rule {
    name: "direct-atomics",
    hint: "import atomics from the crate's sync.rs indirection module so the loom feature can \
           model-check them",
};
const NONDETERMINISM: Rule = Rule {
    name: "nondeterminism",
    hint: "deterministic paths must not read entropy or the wall clock; thread seeded StdRngs / \
           logical time through instead",
};
const UNWRAP: Rule = Rule {
    name: "unwrap",
    hint: "library code must not panic on Option/Result; recover, propagate, or document the \
           invariant with `// xtask: allow(unwrap) — <why>`",
};
const WALLCLOCK: Rule = Rule {
    name: "wallclock",
    hint: "crates/core takes time through kadabra-telemetry (spans or Stopwatch) so there is \
           exactly one timing code path; do not read Instant/SystemTime directly",
};
const COMM_PANIC: Rule = Rule {
    name: "comm-panic",
    hint: "communicator code must surface typed CommErrors (RankFailed/Timeout/Poisoned) so \
           shrink-and-continue recovery can run; a panic here kills the whole simulated cluster",
};

struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    excerpt: String,
    hint: &'static str,
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut legacy = false;
    let mut write_baseline = false;
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--legacy" => legacy = true,
            "--write-baseline" => write_baseline = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask lint: --json needs a path argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    if legacy {
        if write_baseline || json_path.is_some() {
            eprintln!("xtask lint: --legacy does not support --json / --write-baseline");
            return ExitCode::from(2);
        }
        return cmd_lint_legacy();
    }
    cmd_lint_ast(json_path, write_baseline)
}

/// The AST lint engine (`kadabra-lint`): parses the workspace, runs every
/// registered pass, applies inline waivers and the `lint-baseline.json`
/// suppression set, and fails on any active finding. `--json PATH` also
/// writes (and schema-validates) the `kadabra-lint/v1` report for CI to
/// upload; `--write-baseline` accepts the current active findings into the
/// baseline instead of failing.
fn cmd_lint_ast(json_path: Option<PathBuf>, write_baseline: bool) -> ExitCode {
    let root = workspace_root();
    let ws = match kadabra_lint::Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("xtask lint: failed to read the workspace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let passes = kadabra_lint::passes::all();
    let pass_refs: Vec<&dyn kadabra_lint::Pass> = passes.iter().map(AsRef::as_ref).collect();
    let baseline_path = root.join("lint-baseline.json");
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match kadabra_lint::report::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xtask lint: invalid {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => kadabra_lint::report::Baseline::empty(),
    };
    let report = ws.run(&pass_refs, &baseline);

    if write_baseline {
        let rendered = kadabra_lint::report::Baseline::render(&report);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("xtask lint: failed to write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        let (_, active, _, _) = report.counts();
        println!(
            "xtask lint: accepted {active} finding(s) into {} — each entry is tracked debt, \
             not a licence",
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    for f in report.active() {
        println!(
            "{}:{}:{}: [{}] {}\n    `{}`\n    hint: {}",
            f.file, f.line, f.col, f.pass, f.message, f.excerpt, f.hint
        );
    }

    if let Some(path) = &json_path {
        let json = report.to_json();
        if let Err(e) = kadabra_lint::report::validate_report(&json) {
            eprintln!("xtask lint: generated report failed schema validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("xtask lint: failed to write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: wrote {} (schema {})",
            path.display(),
            kadabra_lint::report::LINT_SCHEMA
        );
    }

    let (total, active, waived, baselined) = report.counts();
    if active == 0 {
        println!(
            "xtask lint: {} files clean across {} passes ({} waived, {} baselined)",
            report.files_scanned,
            report.passes.len(),
            waived,
            baselined
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "\nxtask lint: {active} active finding(s) ({total} total, {waived} waived, {baselined} \
         baselined) in {} file(s); waive a line with `// xtask: allow(<pass>) — <reason>` if \
         the occurrence is deliberate",
        report.files_scanned
    );
    ExitCode::FAILURE
}

/// The original line-lexer rules, kept as a fallback engine
/// (`cargo xtask lint --legacy`) and as a cross-check on the AST engine's
/// token stream.
fn cmd_lint_legacy() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests", "examples"] {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for file in &files {
        let Ok(raw) = std::fs::read_to_string(file) else {
            eprintln!("warning: unreadable file {}", file.display());
            continue;
        };
        let rel = file.strip_prefix(&root).unwrap_or(file);
        lint_file(rel, &raw, &mut violations);
    }

    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!(
            "{}:{}: [{}] `{}`\n    hint: {}",
            v.file.display(),
            v.line,
            v.rule,
            v.excerpt,
            v.hint
        );
    }
    println!(
        "\nxtask lint: {} violation(s) in {} file(s) scanned; waive a line with \
         `// xtask: allow(<rule>) — <reason>` if the occurrence is deliberate",
        violations.len(),
        files.len()
    );
    ExitCode::FAILURE
}

/// True for paths whose code is test-/binary-only and therefore exempt from
/// the library-hygiene rules (`unwrap`, `direct-atomics`).
fn is_test_or_bin_path(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    let parts: Vec<&str> = s.split('/').collect();
    // `tests/`, `benches/`, `examples/` as any path segment (crate-level or
    // workspace-level), plus bin targets.
    parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples" | "bin"))
        || s.ends_with("main.rs")
        || s.ends_with("tests.rs")
        || s.ends_with("build.rs")
}

/// True for files inside the deterministic-simulation subtrees where wall
/// clock reads are banned.
fn is_deterministic_path(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    (s.starts_with("crates/mpisim/src") || s.starts_with("crates/cluster/src"))
        && !s.ends_with("calibrate.rs")
}

/// True for files under `crates/core/src` and `crates/graph/src`, where the
/// `wallclock` rule funnels all timing through the telemetry crate. The
/// graph crate joined the scope with the sampling hot-path overhaul
/// (DESIGN.md §11): the traversal kernel is the innermost code in the
/// workspace, and an ad-hoc `Instant::now` there would both perturb the
/// perf-regression gate and bypass the deterministic clock.
fn is_core_library_path(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    s.starts_with("crates/core/src") || s.starts_with("crates/graph/src")
}

/// True for files under `crates/mpisim/src`, where the `comm-panic` rule
/// bans panicking macros on communicator error paths.
fn is_comm_path(rel: &Path) -> bool {
    rel.to_string_lossy().starts_with("crates/mpisim/src")
}

fn lint_file(rel: &Path, raw: &str, out: &mut Vec<Violation>) {
    let sf = ScannedFile::new(raw);
    let test_path = is_test_or_bin_path(rel);
    let is_sync_module = rel.file_name().is_some_and(|f| f == "sync.rs");
    let deterministic = is_deterministic_path(rel);
    let core_library = is_core_library_path(rel);
    let comm_library = is_comm_path(rel) && !test_path;
    // xtask lints itself; its own source names the banned tokens only in
    // strings and comments, which the scanner strips.

    for (idx, code) in sf.code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let in_test_mod = sf.test_mask[idx];
        let mut report = |rule: &Rule, excerpt: &str| {
            if !sf.waived(idx, rule.name) {
                out.push(Violation {
                    file: rel.to_path_buf(),
                    line: lineno,
                    rule: rule.name,
                    excerpt: excerpt.trim().to_string(),
                    hint: rule.hint,
                });
            }
        };

        if code.contains("SeqCst") {
            report(&SEQCST, code);
        }
        if !test_path
            && !in_test_mod
            && !is_sync_module
            && (code.contains("std::sync::atomic") || code.contains("core::sync::atomic"))
        {
            report(&DIRECT_ATOMICS, code);
        }
        if code.contains("thread_rng") {
            report(&NONDETERMINISM, code);
        }
        if deterministic && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            report(&NONDETERMINISM, code);
        }
        if core_library && (code.contains("Instant::now") || code.contains("SystemTime::now")) {
            report(&WALLCLOCK, code);
        }
        if !test_path && !in_test_mod && (code.contains(".unwrap()") || code.contains(".expect(")) {
            report(&UNWRAP, code);
        }
        if comm_library
            && !in_test_mod
            && (code.contains("panic!(")
                || code.contains("todo!(")
                || code.contains("unimplemented!("))
        {
            report(&COMM_PANIC, code);
        }
    }
}

/// A source file with comments/strings blanked out of `code_lines`, raw
/// lines retained for waiver comments, and `#[cfg(test)] mod` bodies marked
/// in `test_mask`.
struct ScannedFile {
    code_lines: Vec<String>,
    raw_lines: Vec<String>,
    test_mask: Vec<bool>,
}

impl ScannedFile {
    fn new(raw: &str) -> Self {
        let code = blank_comments_and_strings(raw);
        let code_lines: Vec<String> = code.split('\n').map(str::to_string).collect();
        let raw_lines: Vec<String> = raw.split('\n').map(str::to_string).collect();
        let test_mask = cfg_test_mask(&code_lines);
        ScannedFile { code_lines, raw_lines, test_mask }
    }

    /// A rule is waived on a line if that line carries an
    /// `xtask: allow(<rule>)` comment, or the contiguous block of
    /// comment-only lines directly above it does (so multi-line
    /// justifications work, but a trailing waiver never leaks onto the
    /// statement below it).
    fn waived(&self, idx: usize, rule: &str) -> bool {
        let tag = format!("xtask: allow({rule})");
        if self.raw_lines.get(idx).is_some_and(|l| l.contains(&tag)) {
            return true;
        }
        let mut i = idx;
        while i > 0 {
            i -= 1;
            let l = self.raw_lines[i].trim_start();
            if !l.starts_with("//") {
                return false;
            }
            if l.contains(&tag) {
                return true;
            }
        }
        false
    }
}

/// Replaces the contents of comments, string literals, and char literals
/// with spaces (newlines preserved), so pattern checks only see real code.
fn blank_comments_and_strings(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' if (next == Some('"') || next == Some('#'))
                    && !(i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')) =>
                {
                    // Possible raw string: r"..." or r#"..."# (any # count).
                    // The opener must be identifier-atomic: in `bar"x"` the
                    // trailing `r` of `bar` is part of the identifier, not a
                    // raw-string prefix — treating it as one used to truncate
                    // the identifier and desynchronize the scan.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                        && b.get(i + 2) != Some(&'\'');
                    if is_lifetime {
                        out.push(c);
                    } else {
                        st = St::Char;
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(d) => {
                if c == '*' && next == Some('/') {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Str => match c {
                '\\' => {
                    // An escape consumes two characters, but `\<newline>`
                    // (line continuation) must still emit the newline:
                    // swallowing it used to shift every later line number,
                    // misaligning waivers and the cfg(test) mask.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && b.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        for _ in i..j {
                            out.push(' ');
                        }
                        i = j;
                        continue;
                    }
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => match c {
                '\\' => {
                    // Same newline-preservation as the string arm.
                    out.push(' ');
                    out.push(if next == Some('\n') { '\n' } else { ' ' });
                    i += 2;
                    continue;
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Marks every line inside a `#[cfg(test)] mod <name> { ... }` body, by
/// brace matching on comment-free code.
fn cfg_test_mask(code_lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if code_lines[i].contains("#[cfg(test)]") {
            // Find the `mod` item this attribute is attached to (skip other
            // attributes/blank lines in between), bounded to a few lines.
            let mut j = i;
            let mut found_mod = false;
            while j < code_lines.len() && j <= i + 4 {
                let l = code_lines[j].trim_start();
                if l.starts_with("mod ") || l.starts_with("pub mod ") {
                    found_mod = true;
                    break;
                }
                j += 1;
            }
            if found_mod {
                // Walk braces from the mod line until depth returns to zero.
                let mut depth = 0i64;
                let mut opened = false;
                let mut k = j;
                while k < code_lines.len() {
                    for ch in code_lines[k].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    mask[k] = true;
                    if opened && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            // `fixtures/` holds the deliberately-violating lint corpus of
            // crates/lint/tests — exercised by its own tests, never scanned.
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn workspace_root() -> PathBuf {
    // Under `cargo run -p xtask` the manifest dir is crates/xtask; the
    // workspace root is two levels up. Fall back to CWD for direct
    // invocation of the built binary.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => {
            let p = PathBuf::from(dir);
            match p.parent().and_then(Path::parent) {
                Some(root) => root.to_path_buf(),
                None => p,
            }
        }
        Err(_) => PathBuf::from("."),
    }
}

// ---------------------------------------------------------------------------
// supply-chain gate
// ---------------------------------------------------------------------------

/// `cargo xtask deny`: the supply-chain gate. Runs `cargo deny check`
/// against the committed `deny.toml` (advisories, license allow-list,
/// duplicate-major bans, registry sources). The cargo-deny binary is not
/// baked into the offline container, so — like `tsan`/`miri` — the command
/// reports exactly what is missing and exits 2 when it cannot run; CI runs
/// it as an advisory job.
fn cmd_deny() -> ExitCode {
    let root = workspace_root();
    if !root.join("deny.toml").exists() {
        eprintln!("xtask deny: deny.toml not found at the workspace root");
        return ExitCode::FAILURE;
    }
    let available = Command::new("cargo")
        .args(["deny", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        return missing_toolchain(
            "deny",
            "the cargo-deny binary",
            "cargo install cargo-deny --locked && cargo xtask deny",
        );
    }
    println!("xtask deny: cargo deny check (advisories, licenses, bans, sources)");
    run_stream(Command::new("cargo").args(["deny", "check"]).current_dir(root))
}

// ---------------------------------------------------------------------------
// verification-backend drivers
// ---------------------------------------------------------------------------

/// Runs the chaos conformance suite in release mode: the fault-plan corpus
/// sweeps (`tests/chaos.rs`), the seed-matrix determinism regression
/// (`tests/determinism_matrix.rs`) and the in-crate fault/chaos unit tests.
///
/// `--plans N` (or the `KADABRA_CHAOS_PLANS` environment variable) sets the
/// straggler-corpus size per sweep, `--crashes N` (or
/// `KADABRA_CHAOS_CRASHES`) the rank-crash corpus size, and `--grows N` (or
/// `KADABRA_CHAOS_GROWS`) the elastic-join corpus size; CI uses small
/// bounded corpora on every push and larger ones nightly.
fn cmd_chaos(args: &[String]) -> ExitCode {
    let mut plans: Option<String> = std::env::var("KADABRA_CHAOS_PLANS").ok();
    let mut crashes: Option<String> = std::env::var("KADABRA_CHAOS_CRASHES").ok();
    let mut grows: Option<String> = std::env::var("KADABRA_CHAOS_GROWS").ok();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plans" => match it.next() {
                Some(n) if n.parse::<u64>().is_ok() => plans = Some(n.clone()),
                _ => {
                    eprintln!("xtask chaos: --plans needs an integer argument");
                    return ExitCode::from(2);
                }
            },
            "--crashes" => match it.next() {
                Some(n) if n.parse::<u64>().is_ok() => crashes = Some(n.clone()),
                _ => {
                    eprintln!("xtask chaos: --crashes needs an integer argument");
                    return ExitCode::from(2);
                }
            },
            "--grows" => match it.next() {
                Some(n) if n.parse::<u64>().is_ok() => grows = Some(n.clone()),
                _ => {
                    eprintln!("xtask chaos: --grows needs an integer argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask chaos: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let plans = plans.unwrap_or_else(|| "4".to_string());
    let crashes = crashes.unwrap_or_else(|| "4".to_string());
    let grows = grows.unwrap_or_else(|| "4".to_string());
    println!(
        "xtask chaos: corpus of {plans} fault plans / {crashes} crash plans / {grows} grow \
         plans per sweep (release mode)"
    );
    let root = workspace_root();
    // Fault-layer unit tests first (fast, precise diagnostics), then the
    // cross-crate conformance sweeps.
    if !run_ok(
        Command::new("cargo")
            .args(["test", "--release", "-p", "kadabra-mpisim", "-p", "kadabra-epoch", "--lib"])
            .env("KADABRA_CHAOS_PLANS", &plans)
            .env("KADABRA_CHAOS_CRASHES", &crashes)
            .env("KADABRA_CHAOS_GROWS", &grows)
            .current_dir(&root),
    ) {
        return ExitCode::FAILURE;
    }
    run_stream(
        Command::new("cargo")
            .args(["test", "--release", "--test", "chaos", "--test", "determinism_matrix"])
            .env("KADABRA_CHAOS_PLANS", &plans)
            .env("KADABRA_CHAOS_CRASHES", &crashes)
            .env("KADABRA_CHAOS_GROWS", &grows)
            .current_dir(&root),
    )
}

fn cmd_loom() -> ExitCode {
    println!(
        "xtask loom: model-checking the epoch protocol, the telemetry recorder, and the \
         server's estimate-cache seqlock (stable toolchain)"
    );
    let root = workspace_root();
    if !run_ok(
        Command::new("cargo")
            .args(["test", "-p", "kadabra-epoch", "--features", "loom", "--test", "loom"])
            .current_dir(&root),
    ) {
        return ExitCode::FAILURE;
    }
    if !run_ok(
        Command::new("cargo")
            .args(["test", "-p", "kadabra-telemetry", "--features", "loom", "--test", "loom"])
            .current_dir(&root),
    ) {
        return ExitCode::FAILURE;
    }
    run_stream(
        Command::new("cargo")
            .args(["test", "-p", "kadabra-server", "--features", "loom", "--test", "loom"])
            .current_dir(root),
    )
}

/// `cargo xtask bench --smoke`: emits and schema-validates `BENCH_smoke.json`
/// in the repo root. The run itself lives in the `bench_smoke` binary of
/// `kadabra-bench`; this wrapper owns the pass/fail decision.
fn cmd_bench(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("--smoke") if args.len() == 1 => cmd_bench_smoke(),
        Some("--kernel") => {
            let check = match &args[1..] {
                [] => false,
                [flag] if flag == "--check" => true,
                _ => {
                    eprintln!("xtask bench: usage: cargo xtask bench --kernel [--check]");
                    return ExitCode::from(2);
                }
            };
            cmd_bench_kernel(check)
        }
        _ => {
            eprintln!(
                "xtask bench: supported modes:\n  \
                 cargo xtask bench --smoke             emit and validate BENCH_smoke.json\n  \
                 cargo xtask bench --kernel            re-record the BENCH_kernel.json baseline\n  \
                 cargo xtask bench --kernel --check    gate against the committed baseline"
            );
            ExitCode::from(2)
        }
    }
}

fn cmd_bench_smoke() -> ExitCode {
    let root = workspace_root();
    // `bench_server` additionally self-gates its acceptance numbers (≥ 1k
    // queries/s, zero cache-read allocations), `bench_dynamic` gates the
    // incremental-update path (update-and-reconverge under 25% of a
    // from-scratch run, within ε of the oracle), and `bench_elastic` gates
    // the elastic scale-out path (mid-run grow ≥ 1.2× over the static
    // continuation, steal decoupling round latency from the straggler
    // factor), so a degraded build fails the run before validation starts.
    for bin in ["bench_smoke", "bench_server", "bench_dynamic", "bench_elastic"] {
        println!("xtask bench: running the {bin} benchmark (release mode)");
        if !run_ok(
            Command::new("cargo")
                .args(["run", "--release", "-p", "kadabra-bench", "--bin", bin])
                .env("KADABRA_RESULTS_DIR", &root)
                .current_dir(&root),
        ) {
            return ExitCode::FAILURE;
        }
    }
    for artifact in
        ["BENCH_smoke.json", "BENCH_server.json", "BENCH_dynamic.json", "BENCH_elastic.json"]
    {
        let path = root.join(artifact);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask bench: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        match kadabra_telemetry::validate_json(&text) {
            Ok(name) => {
                println!(
                    "xtask bench: {} is schema-valid ({}, artifact `{name}`)",
                    path.display(),
                    kadabra_telemetry::BENCH_SCHEMA
                );
            }
            Err(e) => {
                eprintln!("xtask bench: {} violates the schema: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Throughput the `--check` gate tolerates losing relative to the committed
/// baseline before failing, as a fraction. `KADABRA_KERNEL_TOLERANCE`
/// overrides it (e.g. `0.30` on a noisy shared runner).
const KERNEL_TOLERANCE_DEFAULT: f64 = 0.15;

/// One parsed row of a `BENCH_kernel.json` artifact.
struct KernelRow {
    samples_per_sec: f64,
    allocs_per_sample: f64,
}

/// Extracts the gated `kernel` row (the relabeled production layout) from a
/// serialized artifact.
fn kernel_row(text: &str, what: &str) -> Result<KernelRow, String> {
    kadabra_telemetry::validate_json(text).map_err(|e| format!("{what}: schema violation: {e}"))?;
    let doc = kadabra_telemetry::json::Json::parse(text)
        .map_err(|e| format!("{what}: invalid JSON: {e}"))?;
    let runs = doc
        .get("runs")
        .and_then(kadabra_telemetry::json::Json::as_array)
        .ok_or_else(|| format!("{what}: no runs array"))?;
    for run in runs {
        if run.get("mode").and_then(kadabra_telemetry::json::Json::as_str) == Some("kernel") {
            let field = |key: &str| {
                run.get(key)
                    .and_then(kadabra_telemetry::json::Json::as_f64)
                    .ok_or_else(|| format!("{what}: kernel row lacks numeric `{key}`"))
            };
            return Ok(KernelRow {
                samples_per_sec: field("samples_per_sec")?,
                allocs_per_sample: field("allocs_per_sample")?,
            });
        }
    }
    Err(format!("{what}: no run with mode \"kernel\""))
}

/// `cargo xtask bench --kernel [--check]`.
///
/// Record mode runs the `bench_kernel` binary with the repo root as results
/// directory, refreshing the committed `BENCH_kernel.json` baseline. Check
/// mode leaves the committed baseline untouched: it runs a fresh measurement
/// into `target/bench-kernel/` and fails if the fresh `kernel` row's
/// throughput drops more than the tolerance below the baseline, or if the
/// hot path allocated.
fn cmd_bench_kernel(check: bool) -> ExitCode {
    let root = workspace_root();
    let baseline_path = root.join("BENCH_kernel.json");
    let results_dir = if check { root.join("target").join("bench-kernel") } else { root.clone() };

    println!(
        "xtask bench: running the sampling-kernel benchmark (release mode, {})",
        if check { "check against committed baseline" } else { "recording baseline" }
    );
    if !run_ok(
        Command::new("cargo")
            .args(["run", "--release", "-p", "kadabra-bench", "--bin", "bench_kernel"])
            .env("KADABRA_RESULTS_DIR", &results_dir)
            .current_dir(&root),
    ) {
        return ExitCode::FAILURE;
    }

    let fresh_path = results_dir.join("BENCH_kernel.json");
    let fresh = match std::fs::read_to_string(&fresh_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask bench: cannot read {}: {e}", fresh_path.display());
            return ExitCode::FAILURE;
        }
    };
    let fresh_row = match kernel_row(&fresh, "fresh artifact") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !check {
        println!(
            "xtask bench: recorded {} ({:.0} samples/s, {} allocs/sample)",
            baseline_path.display(),
            fresh_row.samples_per_sec,
            fresh_row.allocs_per_sample
        );
        return ExitCode::SUCCESS;
    }

    if fresh_row.allocs_per_sample > 0.0 {
        eprintln!(
            "xtask bench: FAIL: sampling hot path allocated ({} allocs/sample); \
             sample_batch must be allocation-free after warm-up (DESIGN.md §11)",
            fresh_row.allocs_per_sample
        );
        return ExitCode::FAILURE;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "xtask bench: cannot read committed baseline {}: {e}\n  \
                 record one with `cargo xtask bench --kernel` and commit it",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline_row = match kernel_row(&baseline, "committed baseline") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let tolerance = match std::env::var("KADABRA_KERNEL_TOLERANCE") {
        Ok(s) => match s.parse::<f64>() {
            Ok(v) if (0.0..1.0).contains(&v) => v,
            _ => {
                eprintln!(
                    "xtask bench: ignoring invalid KADABRA_KERNEL_TOLERANCE={s:?}; \
                     using {KERNEL_TOLERANCE_DEFAULT}"
                );
                KERNEL_TOLERANCE_DEFAULT
            }
        },
        Err(_) => KERNEL_TOLERANCE_DEFAULT,
    };
    let floor = baseline_row.samples_per_sec * (1.0 - tolerance);
    let ratio = fresh_row.samples_per_sec / baseline_row.samples_per_sec;
    if fresh_row.samples_per_sec < floor {
        eprintln!(
            "xtask bench: FAIL: kernel throughput regressed: {:.0} samples/s vs baseline \
             {:.0} ({:.1}% of baseline; floor is {:.1}% => {:.0} samples/s)\n  \
             if the slowdown is intended, re-record with `cargo xtask bench --kernel` \
             and commit BENCH_kernel.json with a justification",
            fresh_row.samples_per_sec,
            baseline_row.samples_per_sec,
            ratio * 100.0,
            (1.0 - tolerance) * 100.0,
            floor
        );
        return ExitCode::FAILURE;
    }
    println!(
        "xtask bench: kernel OK: {:.0} samples/s ({:.1}% of baseline {:.0}), 0 allocs/sample",
        fresh_row.samples_per_sec,
        ratio * 100.0,
        baseline_row.samples_per_sec
    );
    ExitCode::SUCCESS
}

fn cmd_tsan() -> ExitCode {
    let root = workspace_root();
    // ThreadSanitizer needs -Zsanitizer=thread (nightly) and an
    // instrumented std (-Zbuild-std, which needs the rust-src component).
    if !nightly_available() {
        return missing_toolchain(
            "tsan",
            "a nightly toolchain",
            "rustup toolchain install nightly",
        );
    }
    if !nightly_component_installed("rust-src") {
        return missing_toolchain(
            "tsan",
            "the nightly rust-src component (for -Zbuild-std)",
            "rustup component add rust-src --toolchain nightly",
        );
    }
    let Some(triple) = host_triple() else {
        eprintln!("xtask tsan: could not determine the host target triple from `rustc -vV`");
        return ExitCode::from(2);
    };
    println!("xtask tsan: running concurrency tests under ThreadSanitizer ({triple})");
    let supp = root.join("ci/tsan-suppressions.txt");
    run_stream(
        Command::new("cargo")
            .args([
                "+nightly",
                "test",
                "-Zbuild-std",
                "--target",
                &triple,
                "-p",
                "kadabra-epoch",
                "-p",
                "kadabra-mpisim",
            ])
            .env("RUSTFLAGS", "-Zsanitizer=thread")
            .env("TSAN_OPTIONS", format!("suppressions={}", supp.display()))
            .current_dir(root),
    )
}

fn cmd_miri() -> ExitCode {
    let root = workspace_root();
    if !nightly_available() {
        return missing_toolchain(
            "miri",
            "a nightly toolchain",
            "rustup toolchain install nightly",
        );
    }
    if !nightly_component_installed("miri") {
        return missing_toolchain(
            "miri",
            "the nightly miri component",
            "rustup component add miri --toolchain nightly",
        );
    }
    println!("xtask miri: running epoch tests under Miri");
    // Leak checking is off: the test harness keeps thread-locals alive past
    // the interpreted program's exit, which Miri reports as leaks.
    run_stream(
        Command::new("cargo")
            .args(["+nightly", "miri", "test", "-p", "kadabra-epoch"])
            .env("MIRIFLAGS", "-Zmiri-ignore-leaks")
            .current_dir(root),
    )
}

fn missing_toolchain(cmd: &str, what: &str, fix: &str) -> ExitCode {
    eprintln!(
        "xtask {cmd}: skipped — this environment lacks {what}.\n\
         To run it locally:  {fix}\n\
         (CI runs this job as allowed-to-fail on nightly; the stable gates are \
         `cargo xtask lint` and `cargo xtask loom`.)"
    );
    ExitCode::from(2)
}

fn nightly_available() -> bool {
    Command::new("cargo")
        .args(["+nightly", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn nightly_component_installed(component: &str) -> bool {
    let Ok(out) =
        Command::new("rustup").args(["component", "list", "--toolchain", "nightly"]).output()
    else {
        return false;
    };
    if !out.status.success() {
        return false;
    }
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .any(|l| l.starts_with(component) && l.contains("(installed)"))
}

fn host_triple() -> Option<String> {
    let out = Command::new("rustc").arg("-vV").output().ok()?;
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
}

/// Runs a command with inherited stdio, mapping its exit status to ours.
/// Like [`run_stream`] but reports success as a `bool`, for commands that
/// chain several subprocesses.
fn run_ok(cmd: &mut Command) -> bool {
    match cmd.status() {
        Ok(s) => s.success(),
        Err(e) => {
            eprintln!("xtask: failed to spawn {cmd:?}: {e}");
            false
        }
    }
}

fn run_stream(cmd: &mut Command) -> ExitCode {
    match cmd.status() {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask: failed to spawn {cmd:?}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_strings() {
        let code = blank_comments_and_strings("let x = \"SeqCst\"; // mentions SeqCst\nlet y = 1;");
        assert!(!code.contains("SeqCst"));
        assert!(code.contains("let y = 1;"));
    }

    #[test]
    fn keeps_code_tokens() {
        let code = blank_comments_and_strings("a.store(true, Ordering::SeqCst);");
        assert!(code.contains("SeqCst"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let code = blank_comments_and_strings("let s = r#\"SeqCst\"#; let c = 'S'; let l: &'a u8;");
        assert!(!code.contains("SeqCst"));
        assert!(code.contains("&'a u8"));
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // A `\`-continued string literal spans two physical lines; the
        // scanner used to swallow the newline while consuming the escape
        // pair, shifting every later line number (so waivers stopped
        // matching and the cfg(test) mask drifted).
        let src = "let s = \"first \\\n    second\";\nlet x = 1;\n";
        let code = blank_comments_and_strings(src);
        assert_eq!(
            code.matches('\n').count(),
            src.matches('\n').count(),
            "blanked text must preserve the physical line structure"
        );
        // A violation after the continued string is reported on its true line.
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/demo/src/lib.rs"),
            "let s = \"a \\\n   b\";\nlet t = a.load(Ordering::SeqCst);\n",
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3, "line numbers must survive string continuations");
    }

    #[test]
    fn escaped_newline_in_char_scan_keeps_line_numbers() {
        // Not valid Rust, but the scanner must stay line-accurate even on
        // malformed char literals rather than desynchronize.
        let src = "let c = '\\\n';\nlet x = 1;\n";
        let code = blank_comments_and_strings(src);
        assert_eq!(code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn raw_string_opener_is_identifier_atomic() {
        // The trailing `r` of `bar` is part of the identifier; it used to be
        // mis-scanned as a raw-string prefix, truncating the identifier in
        // the blanked stream.
        let code = blank_comments_and_strings("foo(bar\"baz\", r\"SeqCst\")");
        assert!(code.contains("bar"), "identifier must survive intact: {code:?}");
        assert!(!code.contains("SeqCst"), "the real raw string is still blanked: {code:?}");
    }

    #[test]
    fn nested_block_comments() {
        let code = blank_comments_and_strings("/* outer /* SeqCst */ still comment */ let z = 2;");
        assert!(!code.contains("SeqCst"));
        assert!(code.contains("let z = 2;"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let sf = ScannedFile::new(src);
        assert!(!sf.test_mask[0]);
        assert!(sf.test_mask[3], "unwrap line inside cfg(test) must be masked");
        assert!(!sf.test_mask[5]);
    }

    #[test]
    fn waiver_applies_to_same_and_next_line() {
        let src = "// xtask: allow(unwrap) — invariant: non-empty by construction\nv.unwrap();\nw.unwrap(); // xtask: allow(unwrap) — ditto\nz.unwrap();\n";
        let sf = ScannedFile::new(src);
        assert!(sf.waived(1, "unwrap"));
        assert!(sf.waived(2, "unwrap"));
        assert!(!sf.waived(3, "unwrap"));
    }

    #[test]
    fn violations_are_detected_and_waived() {
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/demo/src/lib.rs"),
            "use std::sync::atomic::AtomicU32;\nfn f() { a.load(Ordering::SeqCst); }\n",
            &mut out,
        );
        let rules: Vec<&str> = out.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"seqcst"));
        assert!(rules.contains(&"direct-atomics"));
    }

    #[test]
    fn test_paths_are_exempt_from_library_rules() {
        let mut out = Vec::new();
        lint_file(
            Path::new("crates/demo/tests/it.rs"),
            "fn f() { v.unwrap(); use std::sync::atomic::AtomicU32; }\n",
            &mut out,
        );
        assert!(out.is_empty(), "{:?}", out.iter().map(|v| v.rule).collect::<Vec<_>>());
    }

    #[test]
    fn wall_clock_banned_only_in_deterministic_paths() {
        let mut out = Vec::new();
        lint_file(Path::new("crates/mpisim/src/engine.rs"), "let t = Instant::now();\n", &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        lint_file(
            Path::new("crates/cluster/src/calibrate.rs"),
            "let t = Instant::now();\n",
            &mut out,
        );
        assert!(out.is_empty());
        // The graph crate is in wallclock scope (sampling hot path), not in
        // the deterministic-simulation nondeterminism scope.
        lint_file(Path::new("crates/graph/src/diameter.rs"), "let t = Instant::now();\n", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wallclock");
        out.clear();
        // Graph test/bench code may still time things directly.
        lint_file(
            Path::new("crates/graph/tests/path_uniformity.rs"),
            "let t = Instant::now();\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn comm_panic_rule_guards_mpisim_only() {
        let src = "fn f() { panic!(\"boom\"); }\nfn g() { todo!() }\n";
        let mut out = Vec::new();
        // `todo!()` without arguments still matches on the `todo!(` token.
        lint_file(Path::new("crates/mpisim/src/comm.rs"), src, &mut out);
        assert_eq!(out.len(), 2, "{:?}", out.iter().map(|v| v.rule).collect::<Vec<_>>());
        assert!(out.iter().all(|v| v.rule == "comm-panic"));
        // Test files within the crate and other crates' libraries are out of
        // scope.
        out.clear();
        lint_file(Path::new("crates/mpisim/src/tests.rs"), src, &mut out);
        assert!(out.is_empty());
        lint_file(Path::new("crates/core/src/mpi.rs"), src, &mut out);
        assert!(out.is_empty());
        // Waivers are honored like every other rule.
        lint_file(
            Path::new("crates/mpisim/src/engine.rs"),
            "// xtask: allow(comm-panic) — unreachable: seq is validated above\n\
             fn f() { panic!(\"boom\"); }\n",
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn wallclock_rule_guards_core_and_accepts_waivers() {
        let mut out = Vec::new();
        lint_file(Path::new("crates/core/src/naive.rs"), "let t = Instant::now();\n", &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "wallclock");
        out.clear();
        lint_file(
            Path::new("crates/core/src/naive.rs"),
            "// xtask: allow(wallclock) — calibration measures real time by design\n\
             let t = Instant::now();\n",
            &mut out,
        );
        assert!(out.is_empty());
        // The telemetry crate itself is the one place allowed to read the
        // clock — it is outside crates/core and thus out of rule scope.
        lint_file(
            Path::new("crates/telemetry/src/clock.rs"),
            "let t = Instant::now();\n",
            &mut out,
        );
        assert!(out.is_empty());
    }
}
