//! Brandes' exact betweenness algorithm (sequential and source-parallel).
//!
//! One augmented BFS per source plus a reverse accumulation of the
//! dependency recursion `δ_s(v) = Σ_{w : v ∈ pred(w)} (σ_v/σ_w)(1 + δ_s(w))`
//! (Ref. [8] of the paper). Scores are normalized by `n(n-1)`.

use kadabra_graph::bfs::sigma_bfs;
use kadabra_graph::{Graph, NodeId};

/// Exact normalized betweenness of every vertex, sequentially.
pub fn brandes(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    for s in 0..n as NodeId {
        accumulate_source(g, s, &mut bc, &mut delta);
    }
    normalize(&mut bc, n);
    bc
}

/// Exact normalized betweenness, parallelized over sources with
/// `num_threads` worker threads (crossbeam scoped threads; sources are
/// claimed from an atomic counter, per-thread partial scores merged at the
/// end). This mirrors the standard shared-memory Brandes parallelization the
/// paper cites as Ref. [15].
pub fn brandes_parallel(g: &Graph, num_threads: usize) -> Vec<f64> {
    assert!(num_threads >= 1);
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    // xtask: allow(direct-atomics) — plain work-stealing counter in a baseline
    // crate; carries no protocol state worth model-checking under loom.
    let next_source = std::sync::atomic::AtomicU32::new(0);
    let mut partials: Vec<Vec<f64>> = Vec::new();
    let scope_result = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..num_threads)
            .map(|_| {
                let next_source = &next_source;
                scope.spawn(move |_| {
                    let mut bc = vec![0.0f64; n];
                    let mut delta = vec![0.0f64; n];
                    loop {
                        // xtask: allow(direct-atomics) — see counter above.
                        let s = next_source.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if s as usize >= n {
                            break;
                        }
                        accumulate_source(g, s, &mut bc, &mut delta);
                    }
                    bc
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(bc) => partials.push(bc),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    if let Err(payload) = scope_result {
        std::panic::resume_unwind(payload);
    }
    let mut bc = vec![0.0f64; n];
    for p in partials {
        for (a, b) in bc.iter_mut().zip(p) {
            *a += b;
        }
    }
    normalize(&mut bc, n);
    bc
}

/// Adds source `s`'s dependency contributions to `bc`. `delta` is scratch.
fn accumulate_source(g: &Graph, s: NodeId, bc: &mut [f64], delta: &mut [f64]) {
    let res = sigma_bfs(g, s);
    for &v in &res.order {
        delta[v as usize] = 0.0;
    }
    // Reverse BFS order: every successor is processed before its
    // predecessors.
    for &w in res.order.iter().rev() {
        let dw = res.dist[w as usize];
        let coeff = (1.0 + delta[w as usize]) / res.sigma[w as usize] as f64;
        for &v in g.neighbors(w) {
            if res.dist[v as usize] + 1 == dw {
                delta[v as usize] += res.sigma[v as usize] as f64 * coeff;
            }
        }
        if w != s {
            bc[w as usize] += delta[w as usize];
        }
    }
}

fn normalize(bc: &mut [f64], n: usize) {
    if n >= 2 {
        let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
        for b in bc.iter_mut() {
            *b *= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, GnmConfig};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn path_graph_center() {
        // P3: middle vertex lies on the single shortest path between the two
        // ends, in both directions: b = 2 / (3*2) = 1/3.
        let g = graph_from_edges(3, &[(0, 1), (1, 2)]);
        let bc = brandes(&g);
        assert!(close(bc[0], 0.0));
        assert!(close(bc[1], 1.0 / 3.0));
        assert!(close(bc[2], 0.0));
    }

    #[test]
    fn star_graph_hub() {
        // Star K1,4: hub lies on all 4*3 ordered leaf pairs; b = 12/20.
        let g = graph_from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = brandes(&g);
        assert!(close(bc[0], 12.0 / 20.0));
        for b in &bc[1..5] {
            assert!(close(*b, 0.0));
        }
    }

    #[test]
    fn cycle_symmetry() {
        let n = 8u32;
        let edges: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = graph_from_edges(n as usize, &edges);
        let bc = brandes(&g);
        for v in 1..n as usize {
            assert!(close(bc[v], bc[0]), "cycle must be vertex-transitive");
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn complete_graph_zero() {
        let mut edges = Vec::new();
        for u in 0..5 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(5, &edges);
        for b in brandes(&g) {
            assert!(close(b, 0.0));
        }
    }

    #[test]
    fn four_cycle_split_paths() {
        // C4: between opposite corners there are two shortest paths, each
        // middle vertex carries 1/2 per ordered pair; b(v) = 2 * (1/2) / 12.
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = brandes(&g);
        for (v, b) in bc.iter().enumerate() {
            assert!(close(*b, 2.0 * 0.5 / 12.0), "bc[{v}] = {b}");
        }
    }

    #[test]
    fn disconnected_components_are_independent() {
        let g = graph_from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let bc = brandes(&g);
        // Each middle vertex: 2 ordered pairs / (6*5).
        assert!(close(bc[1], 2.0 / 30.0));
        assert!(close(bc[4], 2.0 / 30.0));
        assert!(close(bc[0], 0.0));
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm(GnmConfig { n: 10, m: 18, seed });
            let exact = brandes(&g);
            let brute = crate::brute::brute_force_betweenness(&g);
            for v in 0..10 {
                assert!(
                    (exact[v] - brute[v]).abs() < 1e-9,
                    "seed {seed} vertex {v}: {} vs {}",
                    exact[v],
                    brute[v]
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gnm(GnmConfig { n: 80, m: 240, seed: 42 });
        let seq = brandes(&g);
        for threads in [1, 2, 4] {
            let par = brandes_parallel(&g, threads);
            for v in 0..80 {
                assert!((seq[v] - par[v]).abs() < 1e-9, "threads={threads} vertex {v}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(brandes(&graph_from_edges(0, &[])).is_empty());
        assert_eq!(brandes(&graph_from_edges(1, &[])), vec![0.0]);
        assert!(brandes_parallel(&graph_from_edges(0, &[]), 2).is_empty());
    }

    #[test]
    fn scores_are_probabilities() {
        let g = gnm(GnmConfig { n: 40, m: 100, seed: 9 });
        for b in brandes(&g) {
            assert!((0.0..=1.0).contains(&b));
        }
    }
}
