//! Brute-force betweenness by exhaustive shortest-path enumeration.
//!
//! Independent of both Brandes and the samplers (it goes through
//! [`kadabra_graph::bibfs::enumerate_shortest_paths`], which itself is
//! validated against σ-counting), so it provides a genuinely independent
//! oracle for tiny graphs. Exponential time — keep `n` small.

use kadabra_graph::bibfs::enumerate_shortest_paths;
use kadabra_graph::{Graph, NodeId};

/// Exact normalized betweenness by enumerating every shortest path of every
/// ordered vertex pair.
pub fn brute_force_betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    if n < 2 {
        return bc;
    }
    for s in 0..n as NodeId {
        for t in 0..n as NodeId {
            if s == t {
                continue;
            }
            let paths = enumerate_shortest_paths(g, s, t);
            if paths.is_empty() {
                continue;
            }
            let w = 1.0 / paths.len() as f64;
            for p in &paths {
                for &v in p {
                    bc[v as usize] += w;
                }
            }
        }
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    for b in bc.iter_mut() {
        *b *= norm;
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::csr::graph_from_edges;

    #[test]
    fn path_graph() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let bc = brute_force_betweenness(&g);
        // Vertex 1 is interior of pairs (0,2),(2,0),(0,3),(3,0): 4/12.
        assert!((bc[1] - 4.0 / 12.0).abs() < 1e-12);
        assert!((bc[2] - 4.0 / 12.0).abs() < 1e-12);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn singleton_and_empty() {
        assert!(brute_force_betweenness(&graph_from_edges(0, &[])).is_empty());
        assert_eq!(brute_force_betweenness(&graph_from_edges(1, &[])), vec![0.0]);
    }

    #[test]
    fn tied_paths_share_weight() {
        let g = graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let bc = brute_force_betweenness(&g);
        for b in &bc {
            assert!((b - 1.0 / 12.0).abs() < 1e-12);
        }
    }
}
