//! The RK algorithm (Riondato & Kornaropoulos): betweenness approximation
//! with a **fixed** number of sampled shortest paths.
//!
//! Ref. [18] of the paper. RK draws `r` vertex pairs and one uniform
//! shortest path per pair; `b̃(v)` is the fraction of paths with `v` as an
//! interior vertex. With
//! `r = (c/ε²)(⌊log₂(VD − 2)⌋ + 1 + ln(1/δ))` (VD = vertex diameter, the
//! VC-dimension bound of the RK paper, universal constant c ≈ 0.5), all
//! scores are within ±ε of the truth with probability ≥ 1 − δ.
//!
//! KADABRA keeps this estimator and sampler but replaces the fixed `r` with
//! adaptive stopping — RK is therefore the natural non-adaptive baseline for
//! the ablation benchmarks.

use kadabra_graph::bibfs::sample_shortest_path;
use kadabra_graph::{Graph, NodeId, TraversalScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RK parameters.
#[derive(Debug, Clone, Copy)]
pub struct RkConfig {
    /// Absolute error bound ε.
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Upper bound on the vertex diameter (e.g. diameter + 1); use
    /// `kadabra_graph::diameter`.
    pub vertex_diameter: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RkConfig {
    /// The fixed sample size `r` mandated by the VC-dimension bound.
    pub fn sample_size(&self) -> u64 {
        assert!(self.epsilon > 0.0 && self.epsilon < 1.0, "epsilon in (0,1)");
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta in (0,1)");
        let vd = self.vertex_diameter.max(2) as f64;
        let log_term = if vd > 2.0 { (vd - 2.0).log2().floor() } else { 0.0 };
        let c = 0.5;
        ((c / (self.epsilon * self.epsilon)) * (log_term + 1.0 + (1.0 / self.delta).ln())).ceil()
            as u64
    }
}

/// Result of an RK run.
pub struct RkResult {
    /// Normalized approximate betweenness per vertex.
    pub scores: Vec<f64>,
    /// Number of samples taken (the fixed `r`).
    pub samples: u64,
}

/// Runs RK on `g` (which should be connected; pairs falling into different
/// components are resampled, matching how the experiments extract the
/// largest connected component first).
pub fn rk_betweenness(g: &Graph, cfg: RkConfig) -> RkResult {
    let n = g.num_nodes();
    assert!(n >= 2, "RK needs at least two vertices");
    let r = cfg.sample_size();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut scratch = TraversalScratch::new(n);
    let mut counts = vec![0u64; n];
    let mut taken = 0u64;
    while taken < r {
        let s = rng.gen_range(0..n as NodeId);
        let t = rng.gen_range(0..n as NodeId);
        if s == t {
            continue;
        }
        match sample_shortest_path(g, s, t, &mut scratch, &mut rng) {
            Some(p) => {
                for &v in &p.interior {
                    counts[v as usize] += 1;
                }
                taken += 1;
            }
            None => continue, // different components: resample
        }
    }
    let scores = counts.iter().map(|&c| c as f64 / r as f64).collect();
    RkResult { scores, samples: r }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kadabra_graph::components::largest_component;
    use kadabra_graph::csr::graph_from_edges;
    use kadabra_graph::generators::{gnm, GnmConfig};

    #[test]
    fn sample_size_formula() {
        let cfg = RkConfig { epsilon: 0.1, delta: 0.1, vertex_diameter: 10, seed: 0 };
        // (0.5/0.01) * (floor(log2 8) + 1 + ln 10) = 50 * (3 + 1 + 2.3026).
        assert_eq!(cfg.sample_size(), (50.0f64 * (4.0 + 10.0f64.ln())).ceil() as u64);
    }

    #[test]
    fn sample_size_small_diameter() {
        let cfg = RkConfig { epsilon: 0.1, delta: 0.1, vertex_diameter: 2, seed: 0 };
        assert!(cfg.sample_size() > 0);
    }

    #[test]
    fn approximates_exact_on_star() {
        let edges: Vec<_> = (1..8).map(|v| (0, v)).collect();
        let g = graph_from_edges(8, &edges);
        let cfg = RkConfig { epsilon: 0.05, delta: 0.1, vertex_diameter: 3, seed: 1 };
        let res = rk_betweenness(&g, cfg);
        let exact = crate::brandes::brandes(&g);
        for (v, (s, e)) in res.scores.iter().zip(&exact).enumerate() {
            assert!((s - e).abs() <= 0.05, "vertex {v}: {s} vs {e}");
        }
    }

    #[test]
    fn approximates_exact_on_random_graph() {
        let g = gnm(GnmConfig { n: 60, m: 150, seed: 7 });
        let (lcc, _) = largest_component(&g);
        let exact = crate::brandes::brandes(&lcc);
        let cfg = RkConfig { epsilon: 0.05, delta: 0.05, vertex_diameter: 12, seed: 2 };
        let res = rk_betweenness(&lcc, cfg);
        let worst =
            res.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
        assert!(worst <= cfg.epsilon, "max error {worst} > eps");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gnm(GnmConfig { n: 30, m: 60, seed: 3 });
        let (lcc, _) = largest_component(&g);
        let cfg = RkConfig { epsilon: 0.2, delta: 0.2, vertex_diameter: 10, seed: 5 };
        let a = rk_betweenness(&lcc, cfg);
        let b = rk_betweenness(&lcc, cfg);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn scores_are_fractions() {
        let g = gnm(GnmConfig { n: 25, m: 50, seed: 4 });
        let (lcc, _) = largest_component(&g);
        let cfg = RkConfig { epsilon: 0.2, delta: 0.1, vertex_diameter: 10, seed: 6 };
        for s in rk_betweenness(&lcc, cfg).scores {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_trivial_graph() {
        let g = graph_from_edges(1, &[]);
        rk_betweenness(&g, RkConfig { epsilon: 0.1, delta: 0.1, vertex_diameter: 2, seed: 0 });
    }
}
