//! Baseline betweenness-centrality algorithms.
//!
//! These are the comparators and oracles the reproduction needs:
//!
//! * [`brandes`] — the exact O(|V||E|) algorithm of Brandes (Ref. [8] of the
//!   paper), sequential and source-parallel. The paper's Section II calls
//!   exact algorithms "hardly practical" beyond ~100M edges; the experiment
//!   harness uses Brandes both as ground truth for accuracy validation and
//!   to illustrate that cost gap.
//! * [`rk`] — the fixed-sample-size approximation of Riondato &
//!   Kornaropoulos (Ref. [18]), the non-adaptive predecessor of KADABRA;
//!   the ablation benches quantify how much adaptivity buys.
//! * [`brute`] — brute-force betweenness by exhaustive shortest-path
//!   enumeration; exponential, but an independent oracle for tiny graphs.
//!
//! All scores are **normalized**: `b(v) = (1/(n(n-1))) Σ_{s≠t} σ_st(v)/σ_st`
//! over ordered pairs, matching the paper's definition in Section I, so
//! results are directly comparable across all algorithms in the workspace.

pub mod brandes;
pub mod brandes_variants;
pub mod brute;
pub mod rk;

pub use brandes::{brandes, brandes_parallel};
pub use brandes_variants::{
    brandes_directed, brandes_weighted, brute_force_directed, brute_force_weighted,
};
pub use brute::brute_force_betweenness;
pub use rk::{rk_betweenness, RkConfig};
