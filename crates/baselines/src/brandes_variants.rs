//! Exact Brandes betweenness for the directed and weighted graph variants
//! (the paper's footnote 1). These are the oracles against which
//! `kadabra_core::variants` is validated.

use kadabra_graph::digraph::{directed_bfs, DiGraph};
use kadabra_graph::scratch::UNREACHED;
use kadabra_graph::weighted::{dijkstra_sigma, WeightedGraph, UNREACHED_W};
use kadabra_graph::NodeId;

/// Exact normalized betweenness on a digraph (dependency accumulation over
/// the out-BFS DAG; predecessors come from the stored transpose).
pub fn brandes_directed(g: &DiGraph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    if n < 2 {
        return bc;
    }
    let mut delta = vec![0.0f64; n];
    for s in 0..n as NodeId {
        // Forward BFS with σ counting on out-edges.
        let mut dist = vec![UNREACHED; n];
        let mut sigma = vec![0u64; n];
        let mut order = Vec::new();
        dist[s as usize] = 0;
        sigma[s as usize] = 1;
        order.push(s);
        let mut head = 0;
        while head < order.len() {
            let u = order[head];
            head += 1;
            let (du, su) = (dist[u as usize], sigma[u as usize]);
            for &v in g.out_neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = du + 1;
                    sigma[v as usize] = su;
                    order.push(v);
                } else if dist[v as usize] == du + 1 {
                    sigma[v as usize] = sigma[v as usize].saturating_add(su);
                }
            }
        }
        for &v in &order {
            delta[v as usize] = 0.0;
        }
        for &w in order.iter().rev() {
            let dw = dist[w as usize];
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize] as f64;
            for &u in g.in_neighbors(w) {
                if dist[u as usize] != UNREACHED && dist[u as usize] + 1 == dw {
                    delta[u as usize] += sigma[u as usize] as f64 * coeff;
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    bc.iter().map(|b| b * norm).collect()
}

/// Exact normalized betweenness on a positively weighted undirected graph
/// (Dijkstra-based Brandes: accumulate in reverse settled order).
pub fn brandes_weighted(g: &WeightedGraph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    if n < 2 {
        return bc;
    }
    let mut delta = vec![0.0f64; n];
    for s in 0..n as NodeId {
        let (dist, sigma, order) = dijkstra_sigma(g, s, None);
        for &v in &order {
            delta[v as usize] = 0.0;
        }
        for &w in order.iter().rev() {
            let coeff = (1.0 + delta[w as usize]) / sigma[w as usize] as f64;
            for (u, wt) in g.neighbors(w) {
                if dist[u as usize] != UNREACHED_W
                    && dist[u as usize] + wt as u64 == dist[w as usize]
                {
                    delta[u as usize] += sigma[u as usize] as f64 * coeff;
                }
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    bc.iter().map(|b| b * norm).collect()
}

/// Brute-force directed betweenness by path enumeration (tiny graphs only).
pub fn brute_force_directed(g: &DiGraph) -> Vec<f64> {
    use kadabra_graph::digraph::enumerate_directed_shortest_paths;
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    if n < 2 {
        return bc;
    }
    for s in 0..n as NodeId {
        let dist = directed_bfs(g, s);
        for t in 0..n as NodeId {
            if s == t || dist[t as usize] == UNREACHED {
                continue;
            }
            let paths = enumerate_directed_shortest_paths(g, s, t);
            let w = 1.0 / paths.len() as f64;
            for p in &paths {
                for &v in p {
                    bc[v as usize] += w;
                }
            }
        }
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    bc.iter().map(|b| b * norm).collect()
}

/// Brute-force weighted betweenness by path enumeration (tiny graphs only).
pub fn brute_force_weighted(g: &WeightedGraph) -> Vec<f64> {
    use kadabra_graph::weighted::enumerate_weighted_shortest_paths;
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    if n < 2 {
        return bc;
    }
    for s in 0..n as NodeId {
        for t in 0..n as NodeId {
            if s == t {
                continue;
            }
            let paths = enumerate_weighted_shortest_paths(g, s, t);
            if paths.is_empty() {
                continue;
            }
            let w = 1.0 / paths.len() as f64;
            for p in &paths {
                for &v in p {
                    bc[v as usize] += w;
                }
            }
        }
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    bc.iter().map(|b| b * norm).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng};

    #[test]
    fn directed_path_graph() {
        // 0 -> 1 -> 2: vertex 1 is interior of the single (0,2) pair only
        // (no reverse pairs exist): bc(1) = 1/6.
        let g = DiGraph::from_arcs(3, &[(0, 1), (1, 2)]);
        let bc = brandes_directed(&g);
        assert!((bc[1] - 1.0 / 6.0).abs() < 1e-12, "{bc:?}");
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn directed_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let n = 8usize;
            let mut arcs = Vec::new();
            for u in 0..n as NodeId {
                for v in 0..n as NodeId {
                    if u != v && rng.gen_bool(0.25) {
                        arcs.push((u, v));
                    }
                }
            }
            let g = DiGraph::from_arcs(n, &arcs);
            let fast = brandes_directed(&g);
            let slow = brute_force_directed(&g);
            for v in 0..n {
                assert!((fast[v] - slow[v]).abs() < 1e-9, "vertex {v}: {} vs {}", fast[v], slow[v]);
            }
        }
    }

    #[test]
    fn directed_cycle_is_transitive() {
        let n = 6u32;
        let arcs: Vec<_> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let g = DiGraph::from_arcs(n as usize, &arcs);
        let bc = brandes_directed(&g);
        for v in 1..n as usize {
            assert!((bc[v] - bc[0]).abs() < 1e-12);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn weighted_unit_weights_match_unweighted() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 15usize;
        let mut wedges = Vec::new();
        let mut uedges = Vec::new();
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                if rng.gen_bool(0.3) {
                    wedges.push((u, v, 1));
                    uedges.push((u, v));
                }
            }
        }
        let wg = WeightedGraph::from_edges(n, &wedges);
        let ug = kadabra_graph::csr::graph_from_edges(n, &uedges);
        let a = brandes_weighted(&wg);
        let b = crate::brandes::brandes(&ug);
        for v in 0..n {
            assert!((a[v] - b[v]).abs() < 1e-9, "vertex {v}");
        }
    }

    #[test]
    fn weighted_matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..8 {
            let n = 8usize;
            let mut edges = Vec::new();
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v, rng.gen_range(1..4)));
                    }
                }
            }
            let g = WeightedGraph::from_edges(n, &edges);
            let fast = brandes_weighted(&g);
            let slow = brute_force_weighted(&g);
            for v in 0..n {
                assert!((fast[v] - slow[v]).abs() < 1e-9, "vertex {v}");
            }
        }
    }

    #[test]
    fn weighted_detour_moves_centrality() {
        // Heavy direct edge 0-3; light chain 0-1-2-3: the chain's interior
        // vertices carry the betweenness.
        let g = WeightedGraph::from_edges(4, &[(0, 3, 10), (0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        let bc = brandes_weighted(&g);
        assert!(bc[1] > 0.0 && bc[2] > 0.0);
    }

    #[test]
    fn trivial_graphs() {
        assert!(brandes_directed(&DiGraph::from_arcs(1, &[])).iter().all(|&b| b == 0.0));
        assert!(brandes_weighted(&WeightedGraph::from_edges(1, &[])).iter().all(|&b| b == 0.0));
    }
}
