//! Property-based tests: Brandes agrees with the brute-force oracle on
//! arbitrary small graphs, and structural betweenness facts hold.

use kadabra_baselines::{brandes, brandes_parallel, brute_force_betweenness};
use kadabra_graph::csr::{graph_from_edges, NodeId};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edge = (0..n as NodeId, 0..n as NodeId);
        proptest::collection::vec(edge, 0..max_m).prop_map(move |edges| (n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn brandes_matches_brute_force((n, edges) in arb_edges(12, 30)) {
        let g = graph_from_edges(n, &edges);
        let fast = brandes(&g);
        let slow = brute_force_betweenness(&g);
        for v in 0..n {
            prop_assert!((fast[v] - slow[v]).abs() < 1e-9, "vertex {}: {} vs {}", v, fast[v], slow[v]);
        }
    }

    #[test]
    fn parallel_brandes_matches_sequential((n, edges) in arb_edges(30, 120), threads in 1usize..5) {
        let g = graph_from_edges(n, &edges);
        let seq = brandes(&g);
        let par = brandes_parallel(&g, threads);
        for v in 0..n {
            prop_assert!((seq[v] - par[v]).abs() < 1e-9);
        }
    }

    /// Betweenness values are probabilities, degree-1 vertices have zero
    /// betweenness, and the total mass is bounded by 1 per interior slot.
    #[test]
    fn structural_facts((n, edges) in arb_edges(25, 100)) {
        let g = graph_from_edges(n, &edges);
        let bc = brandes(&g);
        for (v, b) in bc.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(b));
            if g.degree(v as NodeId) <= 1 {
                prop_assert!(b.abs() < 1e-12, "leaf {} has bc {}", v, b);
            }
        }
    }
}
