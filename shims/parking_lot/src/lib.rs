//! Offline shim for [`parking_lot`](https://crates.io/crates/parking_lot):
//! the `Mutex`/`Condvar` API subset this workspace uses, implemented over
//! `std::sync`.
//!
//! Two API differences of parking_lot are reproduced:
//!
//! * `lock()` returns the guard directly (no poison `Result`). Poisoning from
//!   the underlying std mutex is swallowed via `into_inner`, matching
//!   parking_lot's "no poisoning" semantics.
//! * `Condvar::wait`/`wait_for` take the guard by `&mut` instead of by value.
//!   The guard internally holds an `Option<std::sync::MutexGuard>` so the
//!   shim can move the std guard through the std condvar and put it back.

#![forbid(unsafe_code)]

use std::time::Duration;

/// Mutual exclusion with the parking_lot API (guard without `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    // `None` only transiently inside `Condvar` waits.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking. Unlike std, never returns a poison error:
    /// parking_lot has no poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        MutexGuard { guard: Some(guard) }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside condvar wait")
    }
}

impl<T: ?Sized> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside condvar wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with the parking_lot API (`&mut guard` waits).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    /// parking_lot's `Condvar::new` is `const`; std's `wait` panics if used
    /// with multiple mutexes, which we simply inherit.
    _private: (),
}

impl Condvar {
    /// Creates the condvar.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new(), _private: () }
    }

    /// Blocks until notified. Spurious wakeups possible, as usual.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        };
        guard.guard = Some(inner);
    }

    /// Blocks until notified or `timeout` elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poison) => {
                let (g, r) = poison.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(30));
        assert!(res.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*state2;
            let mut g = m.lock();
            while !*g {
                let res = cv.wait_for(&mut g, Duration::from_secs(5));
                assert!(!res.timed_out(), "notify should arrive well before 5s");
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*state;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().expect("waiter");
    }
}
