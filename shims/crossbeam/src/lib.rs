//! Offline shim for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate — the subset this workspace uses: [`scope`] (scoped threads) and
//! [`utils::CachePadded`].
//!
//! Scoped threads are implemented directly on [`std::thread::scope`]
//! (stabilized in Rust 1.63), which did not exist when crossbeam's scope API
//! was designed. One behavioural difference: if a spawned thread panics and
//! its handle is never joined, `std::thread::scope` re-raises the panic when
//! the scope closes, so `scope(...)` returns `Err` only for panics observed
//! through unjoined handles — callers that `.unwrap()`/`.expect()` the result
//! see the same test-failure behaviour either way.

#![forbid(unsafe_code)]

use std::thread::ScopedJoinHandle;

/// Re-exports mirroring `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope};
}

pub mod utils {
    //! Utility types (`CachePadded`).

    /// Pads and aligns a value to (at least) one cache line, preventing
    /// false sharing between adjacent hot atomics.
    ///
    /// 128 bytes covers the spatial-prefetcher pairing on x86-64 and the
    /// 128-byte lines on apple-silicon; other targets simply get extra slack.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> core::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> core::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}

/// A scope for spawning borrowing threads; mirrors `crossbeam::thread::Scope`.
///
/// `Copy` so closures can receive it by value — crossbeam passes `&Scope`,
/// and every call site in this workspace ignores the argument (`|_|`), so the
/// by-value signature is interchangeable here.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it can
    /// spawn siblings, exactly like crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let this = *self;
        self.inner.spawn(move || f(this))
    }

    /// Returns a builder for configuring the thread (name) before spawning,
    /// mirroring `crossbeam`'s `ScopedThreadBuilder`.
    pub fn builder(&self) -> ScopedThreadBuilder<'scope, 'env> {
        ScopedThreadBuilder { scope: *self, builder: std::thread::Builder::new() }
    }
}

/// Configures a scoped thread before spawning; mirrors
/// `crossbeam::thread::ScopedThreadBuilder`.
pub struct ScopedThreadBuilder<'scope, 'env> {
    scope: Scope<'scope, 'env>,
    builder: std::thread::Builder,
}

impl<'scope, 'env> ScopedThreadBuilder<'scope, 'env> {
    /// Names the thread-to-be (visible in panics and debuggers).
    pub fn name(mut self, name: String) -> Self {
        self.builder = self.builder.name(name);
        self
    }

    /// Spawns the configured scoped thread.
    ///
    /// # Errors
    /// Returns an error if the OS fails to create the thread.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<ScopedJoinHandle<'scope, T>>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let this = self.scope;
        self.builder.spawn_scoped(this.inner, move || f(this))
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack frame
/// can be spawned; returns once all of them finished.
///
/// Mirrors `crossbeam::scope`. Panics from spawned threads propagate when the
/// scope closes (via `std::thread::scope`), which makes the `Result` wrapper
/// effectively always `Ok` — kept for call-site compatibility.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        let out = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        7u64
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(out, 28);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::scope(|s| {
            let h = s.spawn(|inner| inner.spawn(|_| 21u32).join().expect("inner"));
            h.join().expect("outer") * 2
        })
        .expect("scope");
        assert_eq!(v, 42);
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let p = CachePadded::new(5u8);
        assert_eq!(*p, 5);
        assert_eq!(core::mem::align_of_val(&p), 128);
        assert_eq!(p.into_inner(), 5);
    }
}
