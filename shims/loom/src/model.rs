//! The model driver: DFS over schedules, mirroring `loom::model` /
//! `loom::model::Builder`.

use crate::rt;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Configures and runs a model. Mirrors the upstream `loom::model::Builder`
/// field style (public fields, `new()`, `check()`).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Maximum involuntary context switches per execution (CHESS-style
    /// bound; `None` means the shim default). Almost all real ordering bugs
    /// manifest within 2–3 preemptions.
    pub preemption_bound: Option<usize>,
    /// Maximum consecutive stale (non-newest) reads one thread may observe
    /// of one location before the newest store is forced; this is the
    /// eventual-visibility bound that lets polling loops terminate.
    pub max_staleness: u32,
    /// Per-execution operation budget; exceeding it is reported as a
    /// livelock (a spin loop without a yield point).
    pub max_ops: usize,
    /// Total execution budget for the whole search; exhausting it without
    /// finishing the DFS is reported as an error rather than silently
    /// claiming exhaustiveness.
    pub max_executions: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let d = rt::Config::default();
        Builder {
            preemption_bound: None,
            max_staleness: d.max_staleness,
            max_ops: d.max_ops,
            max_executions: d.max_executions,
        }
    }
}

impl Builder {
    /// A builder with default bounds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exhaustively explores schedules of `f` within the configured bounds.
    ///
    /// # Panics
    /// Panics with the failing schedule if any execution of `f` panics
    /// (assertion failure, deadlock, or livelock), or if the search exceeds
    /// `max_executions`.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Sync + Send + 'static,
    {
        let cfg = rt::Config {
            preemption_bound: self
                .preemption_bound
                .unwrap_or(rt::Config::default().preemption_bound),
            max_staleness: self.max_staleness,
            max_ops: self.max_ops,
            max_executions: self.max_executions,
        };
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions: usize = 0;
        loop {
            executions += 1;
            let exec = rt::Execution::new(cfg, prefix.clone());
            let result = {
                let _guard = rt::ContextGuard::enter(Arc::clone(&exec), 0);
                std::panic::catch_unwind(AssertUnwindSafe(&f))
            };
            if let Err(payload) = result {
                let msg = rt::payload_to_string(&*payload);
                if msg != rt::ABORT_MSG {
                    exec.fail(format!("main model thread panicked: {msg}"));
                }
            }
            exec.thread_finish(0);
            exec.wait_all_finished();
            let handles: Vec<_> = match exec.real_handles.lock() {
                Ok(mut hs) => hs.drain(..).collect(),
                Err(poisoned) => poisoned.into_inner().drain(..).collect(),
            };
            for h in handles {
                // Aborted threads unwound deliberately; the interesting
                // failure (if any) is already recorded on the execution.
                let _ = h.join();
            }
            let st = exec.lock();
            if let Some(msg) = &st.failed {
                let (choices, options) = st.consumed_prefix();
                panic!(
                    "loom shim: model failed on execution {executions}: {msg}\n  \
                     failing schedule choices: {choices:?}\n  \
                     alternatives per choice point: {options:?}"
                );
            }
            let (choices, options) = st.consumed_prefix();
            let (choices, options) = (choices.to_vec(), options.to_vec());
            drop(st);
            match rt::next_prefix(choices, &options) {
                Some(next) => prefix = next,
                None => break,
            }
            assert!(
                executions < cfg.max_executions,
                "loom shim: search exceeded max_executions ({}) without \
                 exhausting the schedule space — raise the bound or shrink the model",
                cfg.max_executions
            );
        }
        eprintln!("loom shim: exhausted schedule space in {executions} execution(s)");
    }
}

/// Exhaustively explores schedules of `f` with default bounds; see
/// [`Builder::check`].
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    Builder::new().check(f);
}
