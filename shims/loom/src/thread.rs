//! `loom::thread` subset: `spawn`, `JoinHandle`, `yield_now`.
//!
//! Inside [`crate::model`] spawned closures run on real OS threads that are
//! sequentialized by the execution's token scheduler; outside a model they
//! delegate to `std::thread` unchanged.

use crate::rt;
use std::sync::mpsc;
use std::sync::Arc;

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Model { exec: Arc<rt::Execution>, child: usize, rx: mpsc::Receiver<T> },
    Std(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    /// Returns the child's panic payload if it panicked (fallback mode); in
    /// model mode a child panic fails the whole model instead.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { exec, child, rx } => {
                let me = rt::with_context(|_, tid| tid)
                    .expect("loom shim: JoinHandle::join called outside the owning model");
                exec.join_thread(me, child);
                match rx.try_recv() {
                    Ok(v) => Ok(v),
                    Err(_) => Err(Box::new("loom shim: joined thread produced no value")),
                }
            }
            Inner::Std(h) => h.join(),
        }
    }
}

/// Spawns a thread. Inside a model it participates in the exhaustive
/// schedule exploration; outside it is a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let ctx = rt::with_context(|exec, tid| (Arc::clone(exec), tid));
    match ctx {
        Some((exec, parent)) => {
            let child = exec.lock().register_thread(parent);
            let (tx, rx) = mpsc::channel();
            let exec2 = Arc::clone(&exec);
            let handle = std::thread::spawn(move || {
                let _guard = rt::ContextGuard::enter(Arc::clone(&exec2), child);
                exec2.wait_for_token(child);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                    Ok(v) => {
                        // The receiver may already be dropped (detached
                        // handle); the value is then simply discarded.
                        let _ = tx.send(v);
                    }
                    Err(payload) => {
                        let msg = rt::payload_to_string(&*payload);
                        if msg != rt::ABORT_MSG {
                            exec2.fail(format!("model thread {child} panicked: {msg}"));
                        }
                    }
                }
                exec2.thread_finish(child);
            });
            match exec.real_handles.lock() {
                Ok(mut hs) => hs.push(handle),
                Err(poisoned) => poisoned.into_inner().push(handle),
            }
            // Spawning is itself a scheduling point: the child may run first.
            exec.schedule(parent);
            JoinHandle { inner: Inner::Model { exec, child, rx } }
        }
        None => JoinHandle { inner: Inner::Std(std::thread::spawn(f)) },
    }
}

/// Yield point. Inside a model the calling thread is descheduled until some
/// other thread has run (spin loops MUST yield or the model flags livelock).
pub fn yield_now() {
    if rt::with_context(|exec, tid| exec.yield_now_model(tid)).is_none() {
        std::thread::yield_now();
    }
}
