//! Execution engine: sequentialized scheduling with DFS over choice points,
//! plus the release/acquire view-based memory model.
//!
//! One *execution* = one run of the user closure under one schedule. The
//! schedule is a prefix of choices (`Vec<usize>`); every nondeterministic
//! decision (which thread runs the next operation, which store a load
//! returns) consumes one position. Replaying a prefix is deterministic, so
//! after each execution the driver computes the lexicographically next
//! unexplored prefix and reruns until the tree is exhausted.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) use std::sync::atomic::Ordering;

/// Message used to unwind threads of an execution that already failed; the
/// driver reports the original failure, not this marker.
pub(crate) const ABORT_MSG: &str = "__loom_shim_abort__";

/// Distinguishes locations registered in the current execution from stale
/// registrations left in atomics that outlived a previous execution.
static GENERATION: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Scheduler state of one modelled thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Run {
    Runnable,
    /// Voluntarily gave up the token (spin-loop hint); only schedulable
    /// again after another thread has run, or if nothing else can.
    Yielded,
    /// Waiting for the given thread to finish.
    Blocked(usize),
    Finished,
}

pub(crate) struct ThreadInfo {
    pub state: Run,
    /// Per-location minimum visible store index (vector-clock view).
    pub view: Vec<usize>,
    /// Consecutive stale (non-newest) reads per location, for the
    /// eventual-visibility cap.
    stale: Vec<u32>,
    /// Value of the global store clock when this thread last yielded; a
    /// yielded thread is only re-promoted after a new store happened (its
    /// loads could not observe anything new earlier, so re-running it would
    /// only multiply equivalent schedules).
    yielded_at: u64,
}

pub(crate) struct Store {
    pub val: u64,
    /// The writer's view snapshot if this store releases (or continues a
    /// release sequence); acquiring readers join it into their view.
    pub release: Option<Vec<usize>>,
}

pub(crate) struct Location {
    pub stores: Vec<Store>,
}

/// Search configuration; see `model::Builder` for the public wrapper.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Config {
    pub preemption_bound: usize,
    pub max_staleness: u32,
    pub max_ops: usize,
    pub max_executions: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config { preemption_bound: 3, max_staleness: 2, max_ops: 50_000, max_executions: 2_000_000 }
    }
}

pub(crate) struct ExecState {
    /// Choice prefix being replayed / extended.
    prefix: Vec<usize>,
    /// Number of alternatives at each consumed prefix position.
    options: Vec<usize>,
    cursor: usize,
    pub threads: Vec<ThreadInfo>,
    /// Thread holding the token (allowed to perform operations).
    pub current: usize,
    pub locations: Vec<Location>,
    pub failed: Option<String>,
    ops: usize,
    preemptions: usize,
    /// Incremented by every store/RMW; drives re-promotion of yielded
    /// threads (see [`ThreadInfo::yielded_at`]).
    store_clock: u64,
    cfg: Config,
    pub generation: u32,
}

pub(crate) struct Execution {
    pub st: Mutex<ExecState>,
    pub cv: Condvar,
    /// Real OS handles of spawned model threads; joined by the driver at the
    /// end of every execution so nothing leaks across executions.
    pub real_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn lock_ignore_poison(m: &Mutex<ExecState>) -> MutexGuard<'_, ExecState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Execution {
    pub fn new(cfg: Config, prefix: Vec<usize>) -> Arc<Self> {
        let generation = GENERATION.fetch_add(1, StdOrdering::Relaxed);
        Arc::new(Execution {
            st: Mutex::new(ExecState {
                prefix,
                options: Vec::new(),
                cursor: 0,
                threads: vec![ThreadInfo {
                    state: Run::Runnable,
                    view: Vec::new(),
                    stale: Vec::new(),
                    yielded_at: 0,
                }],
                current: 0,
                locations: Vec::new(),
                failed: None,
                ops: 0,
                preemptions: 0,
                store_clock: 0,
                cfg,
                generation,
            }),
            cv: Condvar::new(),
            real_handles: Mutex::new(Vec::new()),
        })
    }

    pub fn lock(&self) -> MutexGuard<'_, ExecState> {
        lock_ignore_poison(&self.st)
    }

    /// Records a failure (first writer wins) and wakes every waiter.
    pub fn fail(&self, msg: String) {
        let mut st = self.lock();
        if st.failed.is_none() {
            st.failed = Some(msg);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Scheduling point: before performing its next operation, the running
    /// thread offers the token to every runnable thread (one DFS choice),
    /// waiting until the token returns if it handed it away.
    ///
    /// # Panics
    /// Unwinds with [`ABORT_MSG`] if the execution has already failed.
    pub fn schedule(&self, me: usize) {
        let mut st = self.lock();
        if st.failed.is_some() {
            drop(st);
            panic!("{ABORT_MSG}");
        }
        st.ops += 1;
        if st.ops > st.cfg.max_ops {
            let states: Vec<String> =
                st.threads.iter().map(|t| format!("{:?}@{}", t.state, t.yielded_at)).collect();
            let msg = format!(
                "execution exceeded {} operations — livelock or unbounded loop \
                 under the model (spin loops must use loom yield points); \
                 scheduling thread {me}, thread states {states:?}, store clock {}",
                st.cfg.max_ops, st.store_clock
            );
            drop(st);
            self.fail(msg);
            panic!("{ABORT_MSG}");
        }
        // Wake yielded threads that could now observe something new (a store
        // happened since they yielded); waking them earlier would only
        // multiply equivalent schedules in which they re-read the same state.
        let clock = st.store_clock;
        for (i, t) in st.threads.iter_mut().enumerate() {
            if i != me && t.state == Run::Yielded && clock > t.yielded_at {
                t.state = Run::Runnable;
            }
        }
        let me_runnable = st.threads[me].state == Run::Runnable;
        let mut cands: Vec<usize> =
            (0..st.threads.len()).filter(|&i| st.threads[i].state == Run::Runnable).collect();
        if cands.is_empty() {
            // Every live thread is parked at a yield point with no store
            // since it yielded. Re-running `me` could only re-read the same
            // state, so hand the token to another yielder (round-robin keeps
            // mutual spin loops converging); `me` continues only when it is
            // the sole yielder left.
            let others: Vec<usize> = (0..st.threads.len())
                .filter(|&i| i != me && st.threads[i].state == Run::Yielded)
                .collect();
            if others.is_empty() {
                if st.threads[me].state == Run::Yielded {
                    st.threads[me].state = Run::Runnable;
                    cands.push(me);
                }
            } else {
                for &i in &others {
                    st.threads[i].state = Run::Runnable;
                }
                cands = others;
            }
        }
        if cands.is_empty() {
            drop(st);
            self.fail("deadlock: no runnable thread at a scheduling point".to_string());
            panic!("{ABORT_MSG}");
        }
        // Keep "stay on the current thread" as choice 0 so the DFS explores
        // preemption-free schedules first.
        if let Some(pos) = cands.iter().position(|&c| c == me) {
            cands.swap(0, pos);
        }
        let next = if me_runnable && st.preemptions >= st.cfg.preemption_bound {
            me
        } else {
            let n = cands.len();
            cands[st.choose(n)]
        };
        if next == me {
            return;
        }
        if me_runnable {
            st.preemptions += 1;
        }
        st.current = next;
        self.cv.notify_all();
        loop {
            if st.failed.is_some() {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.current == me && st.threads[me].state == Run::Runnable {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Marks `me` finished, wakes its joiners, and hands the token onward.
    pub fn thread_finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].state = Run::Finished;
        for t in st.threads.iter_mut() {
            if t.state == Run::Blocked(me) {
                t.state = Run::Runnable;
            }
        }
        if st.failed.is_some() {
            drop(st);
            self.cv.notify_all();
            return;
        }
        for t in st.threads.iter_mut() {
            if t.state == Run::Yielded {
                t.state = Run::Runnable;
            }
        }
        let cands: Vec<usize> =
            (0..st.threads.len()).filter(|&i| st.threads[i].state == Run::Runnable).collect();
        if cands.is_empty() {
            let stuck = st.threads.iter().any(|t| matches!(t.state, Run::Blocked(_)));
            drop(st);
            if stuck {
                self.fail("deadlock: all remaining threads are blocked".to_string());
            }
            // Either everything finished or the failure is already recorded;
            // wake the driver in both cases.
            self.cv.notify_all();
            return;
        }
        let n = cands.len();
        let next = cands[st.choose(n)];
        st.current = next;
        drop(st);
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes (join protocol). Completion of
    /// `target` synchronizes-with the return of the join, so the child's
    /// final view is merged into the joiner's (mirror of `register_thread`,
    /// which gives spawn its happens-before edge).
    pub fn join_thread(&self, me: usize, target: usize) {
        let mut st = self.lock();
        loop {
            if st.failed.is_some() {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.threads[target].state == Run::Finished {
                let tv = st.threads[target].view.clone();
                ExecState::join_view(&mut st.threads[me].view, &tv);
                return;
            }
            st.threads[me].state = Run::Blocked(target);
            for (i, t) in st.threads.iter_mut().enumerate() {
                if i != me && t.state == Run::Yielded {
                    t.state = Run::Runnable;
                }
            }
            let cands: Vec<usize> =
                (0..st.threads.len()).filter(|&i| st.threads[i].state == Run::Runnable).collect();
            if cands.is_empty() {
                drop(st);
                self.fail(format!("deadlock: thread {me} joins {target} but nothing can run"));
                panic!("{ABORT_MSG}");
            }
            let n = cands.len();
            let next = cands[st.choose(n)];
            st.current = next;
            self.cv.notify_all();
            while !(st.current == me && st.threads[me].state == Run::Runnable) {
                if st.failed.is_some() {
                    drop(st);
                    panic!("{ABORT_MSG}");
                }
                st = match self.cv.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
    }

    /// Blocks a freshly spawned thread until it is first handed the token.
    pub fn wait_for_token(&self, me: usize) {
        let mut st = self.lock();
        loop {
            if st.failed.is_some() {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.current == me && st.threads[me].state == Run::Runnable {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Voluntary yield: demote `me` until another thread has run.
    pub fn yield_now_model(&self, me: usize) {
        {
            let mut st = self.lock();
            if st.failed.is_some() {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            let clock = st.store_clock;
            let t = &mut st.threads[me];
            t.state = Run::Yielded;
            t.yielded_at = clock;
        }
        self.schedule(me);
    }

    /// Waits (driver side) until every modelled thread finished.
    pub fn wait_all_finished(&self) {
        let mut st = self.lock();
        while !st.threads.iter().all(|t| t.state == Run::Finished) {
            if st.failed.is_some() {
                // Threads waiting for the token observe the failure and
                // finish on their own; keep waiting for them.
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

impl ExecState {
    /// Consumes one DFS choice with `n` alternatives. Trivial decisions
    /// (`n <= 1`) are not recorded, keeping the search tree minimal.
    pub fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let i = self.cursor;
        self.cursor += 1;
        let c = if i < self.prefix.len() {
            self.prefix[i]
        } else {
            self.prefix.push(0);
            0
        };
        if self.options.len() <= i {
            self.options.resize(i + 1, 0);
        }
        self.options[i] = n;
        debug_assert!(c < n, "replayed choice out of range — nondeterministic replay?");
        c
    }

    /// Registers a new modelled thread whose initial view inherits the
    /// spawner's (everything before `spawn` happens-before the child).
    pub fn register_thread(&mut self, parent: usize) -> usize {
        let view = self.threads[parent].view.clone();
        self.threads.push(ThreadInfo {
            state: Run::Runnable,
            view,
            stale: Vec::new(),
            yielded_at: 0,
        });
        self.threads.len() - 1
    }

    /// Resolves (registering on first use this execution) an atomic's
    /// location id.
    pub fn resolve_location(&mut self, packed: u64, init: u64) -> (usize, Option<u64>) {
        let generation = self.generation;
        if (packed >> 32) == generation as u64 && (packed & 0xffff_ffff) != 0 {
            (((packed & 0xffff_ffff) - 1) as usize, None)
        } else {
            let idx = self.locations.len();
            self.locations.push(Location { stores: vec![Store { val: init, release: None }] });
            let repacked = ((generation as u64) << 32) | (idx as u64 + 1);
            (idx, Some(repacked))
        }
    }

    fn view_entry(view: &mut Vec<usize>, loc: usize) -> &mut usize {
        if view.len() <= loc {
            view.resize(loc + 1, 0);
        }
        &mut view[loc]
    }

    fn join_view(dst: &mut Vec<usize>, src: &[usize]) {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = (*d).max(s);
        }
    }

    fn acquires(ord: Ordering) -> bool {
        matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
    }

    fn releases(ord: Ordering) -> bool {
        matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
    }

    /// Atomic load: may return any store at or after the thread's view of
    /// the location (a DFS choice); acquiring loads join the release view of
    /// the store they read.
    pub fn load(&mut self, tid: usize, loc: usize, ord: Ordering) -> u64 {
        let n = self.locations[loc].stores.len();
        let min = *Self::view_entry(&mut self.threads[tid].view, loc);
        debug_assert!(min < n);
        let stale_cnt = {
            let stale = &mut self.threads[tid].stale;
            if stale.len() <= loc {
                stale.resize(loc + 1, 0);
            }
            stale[loc]
        };
        // Eventual visibility: after `max_staleness` consecutive stale reads
        // the newest store must be returned, so polling loops terminate.
        let (base, span) =
            if stale_cnt >= self.cfg.max_staleness { (n - 1, 1) } else { (min, n - min) };
        let pick = base + self.choose(span);
        self.threads[tid].stale[loc] = if pick + 1 < n { stale_cnt + 1 } else { 0 };
        *Self::view_entry(&mut self.threads[tid].view, loc) = pick;
        if Self::acquires(ord) {
            if let Some(rv) = self.locations[loc].stores[pick].release.clone() {
                Self::join_view(&mut self.threads[tid].view, &rv);
            }
        }
        self.locations[loc].stores[pick].val
    }

    /// Atomic store: appends to the location's modification order; releasing
    /// stores snapshot the writer's view.
    pub fn store(&mut self, tid: usize, loc: usize, val: u64, ord: Ordering) {
        self.store_clock += 1;
        let idx = self.locations[loc].stores.len();
        *Self::view_entry(&mut self.threads[tid].view, loc) = idx;
        let release = if Self::releases(ord) { Some(self.threads[tid].view.clone()) } else { None };
        self.locations[loc].stores.push(Store { val, release });
    }

    /// Atomic read-modify-write: reads the newest store (atomicity),
    /// continues its release sequence, and appends the modified value.
    pub fn rmw(
        &mut self,
        tid: usize,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        self.store_clock += 1;
        let idx = self.locations[loc].stores.len() - 1;
        let old = self.locations[loc].stores[idx].val;
        if Self::acquires(ord) {
            if let Some(rv) = self.locations[loc].stores[idx].release.clone() {
                Self::join_view(&mut self.threads[tid].view, &rv);
            }
        }
        *Self::view_entry(&mut self.threads[tid].view, loc) = idx + 1;
        // RMWs do not reset the stale counter: the counter tracks *loads*.
        let mut release = self.locations[loc].stores[idx].release.clone();
        if Self::releases(ord) {
            let mine = self.threads[tid].view.clone();
            release = Some(match release {
                Some(mut r) => {
                    Self::join_view(&mut r, &mine);
                    r
                }
                None => mine,
            });
        }
        self.locations[loc].stores.push(Store { val: f(old), release });
        old
    }

    /// Compare-and-swap: reads the newest store (atomicity); on success
    /// behaves as an RMW with `success` ordering, on failure as a load of
    /// the newest value with `failure` ordering.
    pub fn cas(
        &mut self,
        tid: usize,
        loc: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let idx = self.locations[loc].stores.len() - 1;
        let old = self.locations[loc].stores[idx].val;
        if old == current {
            Ok(self.rmw(tid, loc, success, |_| new))
        } else {
            if Self::acquires(failure) {
                if let Some(rv) = self.locations[loc].stores[idx].release.clone() {
                    Self::join_view(&mut self.threads[tid].view, &rv);
                }
            }
            *Self::view_entry(&mut self.threads[tid].view, loc) = idx;
            Err(old)
        }
    }

    /// The schedule consumed so far, for failure reports.
    pub fn consumed_prefix(&self) -> (&[usize], &[usize]) {
        (&self.prefix[..], &self.options[..])
    }
}

/// Enters a model context for the driver thread (tid 0); restores the
/// previous context on drop so panics cannot leak a stale context.
pub(crate) struct ContextGuard;

impl ContextGuard {
    pub fn enter(exec: Arc<Execution>, tid: usize) -> ContextGuard {
        CURRENT.with(|c| {
            let mut c = c.borrow_mut();
            assert!(c.is_none(), "nested loom::model is not supported");
            *c = Some((exec, tid));
        });
        ContextGuard
    }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.borrow_mut().take());
    }
}

/// Runs `f` with the current execution context, or returns `None` when the
/// caller is not inside [`crate::model`] (atomics then fall back to std).
pub(crate) fn with_context<R>(f: impl FnOnce(&Arc<Execution>, usize) -> R) -> Option<R> {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    ctx.map(|(exec, tid)| f(&exec, tid))
}

/// Computes the lexicographically next unexplored choice prefix, or `None`
/// when the search tree is exhausted.
pub(crate) fn next_prefix(mut prefix: Vec<usize>, options: &[usize]) -> Option<Vec<usize>> {
    while let Some(last) = prefix.pop() {
        let n = options.get(prefix.len()).copied().unwrap_or(1);
        if last + 1 < n {
            prefix.push(last + 1);
            return Some(prefix);
        }
    }
    None
}

/// Renders a panic payload for failure reports.
pub(crate) fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
