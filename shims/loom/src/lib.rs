//! Offline shim for [`loom`](https://crates.io/crates/loom): a small but real
//! model checker for concurrent code, exposing the loom API subset the
//! workspace's verification tests use (`loom::model`, `loom::thread::spawn`,
//! `loom::sync::atomic::*`).
//!
//! # What it checks
//!
//! [`model`] runs the given closure repeatedly, exploring thread
//! interleavings by depth-first search over every nondeterministic choice:
//!
//! * **Scheduling** — threads are sequentialized; before each atomic
//!   operation the running thread offers the "token" to every runnable
//!   thread. The DFS backtracks over these decisions, bounded by a
//!   configurable preemption budget ([`model::Builder::preemption_bound`],
//!   the CHESS result: almost all real bugs need very few preemptions).
//! * **Memory ordering** — the store history of every atomic location is
//!   kept, and a `Relaxed`/unsynchronized load may return *any* store the
//!   loading thread has not yet observed, not just the newest one. Threads
//!   carry per-location *views* (vector clocks): a `Release` store snapshots
//!   the writer's view; an `Acquire` load that reads it joins that snapshot
//!   into the reader's view, which is exactly the happens-before edge of the
//!   C11 model. Read-modify-writes always read the newest store (atomicity)
//!   and continue release sequences. A missing `Release`/`Acquire` pair
//!   therefore lets the DFS drive a reader into stale values — the bug class
//!   this shim exists to catch.
//!
//! An assertion failure in any execution aborts the search and panics with
//! the failing schedule, so `#[should_panic]`-style negative tests work.
//!
//! # Honest limitations (vs. upstream loom)
//!
//! * Operations of one thread execute in program order against a global
//!   interleaving; cross-location effects forbidden only by exotic
//!   non-multi-copy-atomic hardware (e.g. IRIW outcomes) are not explored.
//!   Stale-value reads — the observable effect of missing release/acquire
//!   edges — are explored.
//! * `SeqCst` is treated as `AcqRel` (no total order across locations). The
//!   workspace bans `SeqCst` anyway (`cargo xtask lint`).
//! * Consecutive stale reads of one location by one thread are capped
//!   ([`model::Builder::max_staleness`]) so polling loops terminate; an
//!   execution is also capped at `max_ops` operations, and the whole search
//!   at `max_executions` executions.
//! * No `loom::sync::Mutex`/`Condvar`/`Notify` modelling — the epoch
//!   protocol under test is wait-free and uses none of them.

#![forbid(unsafe_code)]

pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::model;

pub mod hint {
    //! Spin-loop hint: under the model a spin is a scheduling point.

    /// Equivalent to [`crate::thread::yield_now`] inside a model (spinning
    /// without yielding would livelock the sequentialized scheduler).
    pub fn spin_loop() {
        crate::thread::yield_now();
    }
}
