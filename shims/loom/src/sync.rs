//! `loom::sync` subset: model-aware atomics plus `Arc`.
//!
//! Each atomic wraps two real `std` atomics: `loc` caches the model's
//! generation-tagged location id (`gen << 32 | idx + 1`), and `val` holds
//! the value used when no model is running. Inside [`crate::model`] every
//! operation is (1) a scheduling point and (2) an action on the modelled
//! store history; outside a model the wrapper delegates straight to `val`,
//! so code compiled with `--features loom` still behaves normally in
//! ordinary tests.

pub use std::sync::Arc;

/// Model-aware atomic types mirroring `std::sync::atomic`.
pub mod atomic {
    use crate::rt;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    pub use std::sync::atomic::Ordering;

    /// Failure ordering for a fallback `fetch_update` derived from the
    /// operation's ordering (`Release`/`AcqRel` are invalid for loads).
    fn fail_ord(ord: Ordering) -> Ordering {
        match ord {
            Ordering::Release => Ordering::Relaxed,
            Ordering::AcqRel => Ordering::Acquire,
            other => other,
        }
    }

    /// Resolves this atomic's location id inside the running model,
    /// registering it (with `val`'s current value as the initial store) on
    /// first use in this execution.
    fn resolve(st: &mut rt::ExecState, loc: &StdAtomicU64, val: &StdAtomicU64) -> usize {
        let packed = loc.load(Ordering::Relaxed);
        let (l, repack) = st.resolve_location(packed, val.load(Ordering::Relaxed));
        if let Some(p) = repack {
            loc.store(p, Ordering::Relaxed);
        }
        l
    }

    fn shim_load(loc: &StdAtomicU64, val: &StdAtomicU64, ord: Ordering) -> u64 {
        match rt::with_context(|exec, tid| {
            exec.schedule(tid);
            let mut st = exec.lock();
            let l = resolve(&mut st, loc, val);
            st.load(tid, l, ord)
        }) {
            Some(v) => v,
            None => val.load(ord),
        }
    }

    fn shim_store(loc: &StdAtomicU64, val: &StdAtomicU64, v: u64, ord: Ordering) {
        if rt::with_context(|exec, tid| {
            exec.schedule(tid);
            let mut st = exec.lock();
            let l = resolve(&mut st, loc, val);
            st.store(tid, l, v, ord);
        })
        .is_none()
        {
            val.store(v, ord);
        }
    }

    fn shim_rmw(
        loc: &StdAtomicU64,
        val: &StdAtomicU64,
        ord: Ordering,
        f: impl Fn(u64) -> u64,
    ) -> u64 {
        let f = &f;
        match rt::with_context(|exec, tid| {
            exec.schedule(tid);
            let mut st = exec.lock();
            let l = resolve(&mut st, loc, val);
            st.rmw(tid, l, ord, f)
        }) {
            Some(v) => v,
            None => match val.fetch_update(ord, fail_ord(ord), |v| Some(f(v))) {
                Ok(prev) => prev,
                Err(prev) => prev,
            },
        }
    }

    fn shim_cas(
        loc: &StdAtomicU64,
        val: &StdAtomicU64,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        match rt::with_context(|exec, tid| {
            exec.schedule(tid);
            let mut st = exec.lock();
            let l = resolve(&mut st, loc, val);
            st.cas(tid, l, current, new, success, failure)
        }) {
            Some(r) => r,
            None => val.compare_exchange(current, new, success, failure),
        }
    }

    macro_rules! atomic_int {
        ($(#[$meta:meta])* $name:ident, $ty:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            pub struct $name {
                loc: StdAtomicU64,
                val: StdAtomicU64,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $ty) -> Self {
                    Self { loc: StdAtomicU64::new(0), val: StdAtomicU64::new(v as u64) }
                }

                /// Atomic load; under the model the value read is any store
                /// this thread has not yet synchronized past.
                pub fn load(&self, ord: Ordering) -> $ty {
                    shim_load(&self.loc, &self.val, ord) as $ty
                }

                /// Atomic store.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    shim_store(&self.loc, &self.val, v as u64, ord);
                }

                /// Atomically replaces the value, returning the previous one.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    shim_rmw(&self.loc, &self.val, ord, |_| v as u64) as $ty
                }

                /// Atomic wrapping add, returning the previous value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    shim_rmw(&self.loc, &self.val, ord, |o| (o as $ty).wrapping_add(v) as u64)
                        as $ty
                }

                /// Atomic wrapping subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    shim_rmw(&self.loc, &self.val, ord, |o| (o as $ty).wrapping_sub(v) as u64)
                        as $ty
                }

                /// Atomic bitwise OR, returning the previous value.
                pub fn fetch_or(&self, v: $ty, ord: Ordering) -> $ty {
                    shim_rmw(&self.loc, &self.val, ord, |o| ((o as $ty) | v) as u64) as $ty
                }

                /// Atomic bitwise AND, returning the previous value.
                pub fn fetch_and(&self, v: $ty, ord: Ordering) -> $ty {
                    shim_rmw(&self.loc, &self.val, ord, |o| ((o as $ty) & v) as u64) as $ty
                }

                /// Atomic compare-and-swap.
                ///
                /// # Errors
                /// Returns the observed value when it differs from `current`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    shim_cas(&self.loc, &self.val, current as u64, new as u64, success, failure)
                        .map(|v| v as $ty)
                        .map_err(|v| v as $ty)
                }

                /// Weak compare-and-swap; the shim never fails spuriously.
                ///
                /// # Errors
                /// Returns the observed value when it differs from `current`.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(
        /// Model-aware `AtomicU32`.
        AtomicU32,
        u32
    );
    atomic_int!(
        /// Model-aware `AtomicU64`.
        AtomicU64,
        u64
    );
    atomic_int!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize,
        usize
    );

    /// Model-aware `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        loc: StdAtomicU64,
        val: StdAtomicU64,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub fn new(v: bool) -> Self {
            Self { loc: StdAtomicU64::new(0), val: StdAtomicU64::new(u64::from(v)) }
        }

        /// Atomic load; under the model the value read is any store this
        /// thread has not yet synchronized past.
        pub fn load(&self, ord: Ordering) -> bool {
            shim_load(&self.loc, &self.val, ord) != 0
        }

        /// Atomic store.
        pub fn store(&self, v: bool, ord: Ordering) {
            shim_store(&self.loc, &self.val, u64::from(v), ord);
        }

        /// Atomically replaces the value, returning the previous one.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            shim_rmw(&self.loc, &self.val, ord, |_| u64::from(v)) != 0
        }

        /// Atomic OR, returning the previous value.
        pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
            shim_rmw(&self.loc, &self.val, ord, |o| o | u64::from(v)) != 0
        }

        /// Atomic AND, returning the previous value.
        pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
            shim_rmw(&self.loc, &self.val, ord, |o| o & u64::from(v)) != 0
        }

        /// Atomic compare-and-swap.
        ///
        /// # Errors
        /// Returns the observed value when it differs from `current`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            shim_cas(&self.loc, &self.val, u64::from(current), u64::from(new), success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }
}
