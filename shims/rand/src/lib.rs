//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate (0.8 API
//! subset).
//!
//! The build container has no access to crates.io, so the workspace replaces
//! every external dependency with a local shim crate that reproduces exactly
//! the API surface the workspace uses (`[workspace.dependencies]` points the
//! familiar crate names at `shims/*` path dependencies). This one provides:
//!
//! * [`RngCore`], [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`, `fill_bytes`),
//! * [`rngs::StdRng`] — deterministic, seedable, implemented as xoshiro256++
//!   seeded through SplitMix64. Stream values differ from upstream `StdRng`
//!   (ChaCha12), which is fine: the workspace only relies on seed-determinism
//!   and statistical quality, never on golden output values.
//!
//! Uniform range sampling uses Lemire's widening-multiply rejection method,
//! so the shim is unbiased like the original.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core randomness source: 32/64-bit uniform words.
pub trait RngCore {
    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (the conventional
    /// seeding scheme for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values that `Rng::gen` can produce uniformly (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (sample_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<u128> for Range<u128> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        if span <= u64::MAX as u128 {
            return self.start + sample_u64_below(rng, span as u64) as u128;
        }
        // Modulo rejection over full 128-bit draws (no 256-bit widening
        // multiply available for the Lemire trick at this width).
        let rem = ((u128::MAX % span) + 1) % span;
        let threshold = u128::MAX - rem;
        loop {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if x <= threshold {
                return self.start + x % span;
            }
        }
    }
}

/// Unbiased uniform draw from `[0, bound)` (Lemire widening-multiply).
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= lo.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng` — seed-determinism and statistical
    /// quality are preserved, exact output streams are not (nothing in the
    /// workspace depends on them).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..13);
            assert!((3..13).contains(&v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range reachable");
        for _ in 0..100 {
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
        let v = rng.gen_range(5usize..=5);
        assert_eq!(v, 5);
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
