//! Offline shim for [`proptest`](https://crates.io/crates/proptest): the API
//! subset this workspace's property tests use.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro — `#![proptest_config(...)]` header, `#[test]`
//!   functions with `pat in strategy` arguments;
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer and float ranges and for 2-/3-/4-tuples of strategies;
//! * [`strategy::Just`], [`strategy::any`], [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted for an offline shim:
//! no shrinking (a failing case reports its generated inputs and
//! deterministic case seed instead), and value generation is uniform rather
//! than upstream's bias-towards-edge-cases. Every run is fully deterministic:
//! case `i` of a test derives its RNG seed from a fixed constant and `i`
//! only, so failures reproduce without a persistence file.

#![forbid(unsafe_code)]

pub use rand;

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default.
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange, Standard};

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy producing uniform values of `T` over its whole domain
    /// (upstream's `any::<T>()`).
    pub fn any<T: Standard>() -> AnyStrategy<T> {
        AnyStrategy { _marker: core::marker::PhantomData }
    }

    /// See [`any`].
    pub struct AnyStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Standard> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    macro_rules! impl_strategy_for_range {
        ($($range:ty => $t:ty),* $(,)?) => {$(
            impl Strategy for $range {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_single(rng)
                }
            }
        )*};
    }

    impl_strategy_for_range!(
        core::ops::Range<u8> => u8,
        core::ops::Range<u16> => u16,
        core::ops::Range<u32> => u32,
        core::ops::Range<u64> => u64,
        core::ops::Range<usize> => usize,
        core::ops::Range<i8> => i8,
        core::ops::Range<i16> => i16,
        core::ops::Range<i32> => i32,
        core::ops::Range<i64> => i64,
        core::ops::Range<isize> => isize,
        core::ops::Range<f32> => f32,
        core::ops::Range<f64> => f64,
        core::ops::RangeInclusive<u8> => u8,
        core::ops::RangeInclusive<u16> => u16,
        core::ops::RangeInclusive<u32> => u32,
        core::ops::RangeInclusive<u64> => u64,
        core::ops::RangeInclusive<usize> => usize,
    );

    macro_rules! impl_strategy_for_tuple {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_strategy_for_tuple!(A, B);
    impl_strategy_for_tuple!(A, B, C);
    impl_strategy_for_tuple!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic per-case RNG derivation (used by the `proptest!` macro).

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fixed base so every run of the suite explores the same cases; failures
    /// reproduce by rerunning the same test binary.
    const BASE_SEED: u64 = 0x6b61_6461_6272_6121; // "kadabra!"

    /// RNG for case `case` of the test named `name`.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(BASE_SEED ^ h ^ ((case as u64) << 32))
    }

    /// Debug-renders a generated input for the failure report.
    pub fn render_input<T: core::fmt::Debug>(value: &T) -> String {
        format!("{value:?}")
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property test.
///
/// The shim maps this to a panic (upstream returns a `TestCaseError`); the
/// surrounding macro-generated harness attributes the panic to the failing
/// case and prints its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test. See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs through the body.
///
/// On failure the case index and every generated input are printed before the
/// panic propagates (no shrinking in the shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                let mut inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    inputs.push($crate::test_runner::render_input(&value));
                    let $pat = value;
                )*
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let ::std::result::Result::Err(payload) = outcome {
                    ::std::eprintln!(
                        "proptest shim: {} failed at case {}/{} with inputs:",
                        stringify!($name), case, config.cases,
                    );
                    for (i, input) in inputs.iter().enumerate() {
                        ::std::eprintln!("  arg[{i}] = {input}");
                    }
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(max: usize) -> impl Strategy<Value = (usize, Vec<u32>)> {
        (1..max)
            .prop_flat_map(move |n| collection::vec(0..n as u32, 0..8).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_dependency_holds((n, v) in arb_pair(20)) {
            prop_assert!((1..20).contains(&n));
            for &e in &v {
                prop_assert!((e as usize) < n, "element {} out of range {}", e, n);
            }
        }

        #[test]
        fn tuples_and_any(p in (0u32..4, any::<u64>()), j in Just(9u8)) {
            prop_assert!(p.0 < 4);
            prop_assert_eq!(j, 9);
            prop_assert_ne!(j, 10);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1000, 0u64..1000);
        let a: Vec<_> = {
            let mut rng = crate::test_runner::case_rng("d", 3);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::test_runner::case_rng("d", 3);
            (0..10).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
