//! Offline shim for [`criterion`](https://crates.io/crates/criterion): a
//! small wall-clock benchmarking harness exposing the API subset the bench
//! crate uses (`criterion_group!`/`criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! `BenchmarkId`, `Throughput`, `black_box`).
//!
//! Methodology is intentionally simple — calibrate an iteration count to
//! roughly `MEASURE_TARGET` of wall time, run it, report the mean — with no
//! statistics, outlier analysis, or HTML reports. Good enough to eyeball
//! regressions offline; CI uses the real criterion when a registry is
//! reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_TARGET: Duration = Duration::from_millis(50);
const MEASURE_TARGET: Duration = Duration::from_millis(300);

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim only uses it to
/// bound how many setup outputs are pre-built per measurement batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many setup outputs per batch (cheap setup values).
    SmallInput,
    /// Few setup outputs per batch (expensive setup values).
    LargeInput,
    /// Exactly one setup output per iteration.
    PerIteration,
}

/// Throughput annotation; the shim reports it alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, repeating it enough times for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count filling the target.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= WARMUP_TARGET || iters >= u64::MAX / 4 {
                // max(1) after the division: a sub-ns-per-iteration routine in
                // release mode would otherwise round per_iter to zero.
                let per_iter = (elapsed.as_nanos() / iters as u128).max(1);
                let measured = (MEASURE_TARGET.as_nanos() / per_iter).clamp(1, u64::MAX as u128);
                let t1 = Instant::now();
                for _ in 0..measured {
                    black_box(routine());
                }
                let per = t1.elapsed().as_nanos() / measured;
                self.mean = Some(Duration::from_nanos(per.min(u64::MAX as u128) as u64));
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }

    /// Measures `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the reported mean.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut count: u64 = 0;
        while total < MEASURE_TARGET && count < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            total += t0.elapsed();
            count += 1;
        }
        let per = total.as_nanos() / count.max(1) as u128;
        self.mean = Some(Duration::from_nanos(per.min(u64::MAX as u128) as u64));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sample-size hint; accepted for API compatibility, the shim sizes
    /// samples by wall-time instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean: None };
        f(&mut b);
        self.criterion.report(&format!("{}/{}", self.name, id.label), b.mean, self.throughput);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean: None };
        f(&mut b, input);
        self.criterion.report(&format!("{}/{}", self.name, id.label), b.mean, self.throughput);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean: None };
        f(&mut b);
        let mean = b.mean;
        self.report(name, mean, None);
        self
    }

    fn report(&mut self, label: &str, mean: Option<Duration>, throughput: Option<Throughput>) {
        match mean {
            Some(mean) => {
                let ns = mean.as_nanos();
                let rate = throughput.map(|t| match t {
                    Throughput::Bytes(b) => {
                        let gib = b as f64 / mean.as_secs_f64() / (1u64 << 30) as f64;
                        format!("  ({gib:.3} GiB/s)")
                    }
                    Throughput::Elements(e) => {
                        let meps = e as f64 / mean.as_secs_f64() / 1e6;
                        format!("  ({meps:.3} Melem/s)")
                    }
                });
                println!("bench {label:<50} {ns:>12} ns/iter{}", rate.unwrap_or_default());
            }
            None => println!("bench {label:<50}  (no measurement recorded)"),
        }
    }
}

/// Declares a benchmark group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target of this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
