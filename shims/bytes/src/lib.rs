//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate: the
//! [`Buf`]/[`BufMut`] trait subset the workspace's binary graph IO uses
//! (little-endian integer accessors over `&[u8]` readers and `Vec<u8>`
//! writers). No `Bytes`/`BytesMut` ref-counted buffers — nothing here needs
//! them.

#![forbid(unsafe_code)]

/// Sequential reader over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u32`, consuming 4 bytes.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, consuming 8 bytes.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// Sequential writer into a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut w: Vec<u8> = Vec::new();
        w.put_slice(b"MAGC");
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_u8(7);

        let mut r: &[u8] = &w;
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGC");
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
