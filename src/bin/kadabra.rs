//! `kadabra` — command-line betweenness approximation.
//!
//! ```text
//! kadabra <GRAPH> [--eps 0.01] [--delta 0.1] [--mode seq|shared|mpi|epoch-mpi]
//!                 [--threads T] [--ranks P] [--top K] [--seed S] [--all]
//!                 [--trace FILE] [--metrics]
//! ```
//!
//! `--trace FILE` records the run's telemetry events and writes a Chrome
//! trace-event JSON (open in `chrome://tracing` or Perfetto; one process
//! row per MPI rank, one thread row per sampling thread). `--metrics`
//! prints the phase-breakdown table (spans, counters, reduction overlap)
//! to stderr after the run. Both observe the run without changing it.
//!
//! `GRAPH` is an edge-list text file (`u v` per line, `#`/`%` comments —
//! the SNAP/KONECT interchange format) or a `.bin` CSR cache written by
//! this tool's `--save-bin` option. By default the graph is read as
//! undirected and unweighted and reduced to its largest connected component,
//! exactly like the paper's experimental setup. `--directed` reads an arc
//! list and runs directed KADABRA; `--weighted` reads `u v w` triples and
//! runs weighted KADABRA (both sequential, paper footnote 1).

use kadabra_mpi::core::{kadabra_directed, kadabra_weighted};
use kadabra_mpi::core::{
    kadabra_epoch_mpi_traced, kadabra_mpi_flat_traced, kadabra_sequential_traced,
    kadabra_shared_traced, ClusterShape, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::io::{read_arc_list, read_path, read_weighted_edge_list, write_path};
use kadabra_mpi::telemetry::{chrome, Telemetry};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    graph: PathBuf,
    eps: f64,
    delta: f64,
    mode: String,
    threads: usize,
    ranks: usize,
    top: usize,
    seed: u64,
    all: bool,
    save_bin: Option<PathBuf>,
    directed: bool,
    weighted: bool,
    trace: Option<PathBuf>,
    metrics: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: kadabra <GRAPH> [--eps 0.01] [--delta 0.1] \
         [--mode seq|shared|mpi|epoch-mpi] [--threads T] [--ranks P] \
         [--top K] [--seed S] [--all] [--save-bin FILE] [--directed] [--weighted] \
         [--trace FILE] [--metrics]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        graph: PathBuf::new(),
        eps: 0.01,
        delta: 0.1,
        mode: "seq".into(),
        threads: 2,
        ranks: 2,
        top: 10,
        seed: 42,
        all: false,
        save_bin: None,
        directed: false,
        weighted: false,
        trace: None,
        metrics: false,
    };
    let mut it = std::env::args().skip(1);
    let mut have_graph = false;
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match a.as_str() {
            "--eps" => args.eps = val("--eps").parse().unwrap_or_else(|_| usage()),
            "--delta" => args.delta = val("--delta").parse().unwrap_or_else(|_| usage()),
            "--mode" => args.mode = val("--mode"),
            "--threads" => args.threads = val("--threads").parse().unwrap_or_else(|_| usage()),
            "--ranks" => args.ranks = val("--ranks").parse().unwrap_or_else(|_| usage()),
            "--top" => args.top = val("--top").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--all" => args.all = true,
            "--directed" => args.directed = true,
            "--weighted" => args.weighted = true,
            "--save-bin" => args.save_bin = Some(PathBuf::from(val("--save-bin"))),
            "--trace" => args.trace = Some(PathBuf::from(val("--trace"))),
            "--metrics" => args.metrics = true,
            "--help" | "-h" => usage(),
            _ if !have_graph => {
                args.graph = PathBuf::from(a);
                have_graph = true;
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if !have_graph {
        usage();
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.directed || args.weighted {
        return run_variant(&args);
    }
    let raw = match read_path(&args.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.graph.display());
            return ExitCode::FAILURE;
        }
    };
    let (g, mapping) = largest_component(&raw);
    eprintln!(
        "loaded {}: {} vertices, {} edges (lcc of {} / {})",
        args.graph.display(),
        g.num_nodes(),
        g.num_edges(),
        raw.num_nodes(),
        raw.num_edges()
    );
    if let Some(path) = &args.save_bin {
        if let Err(e) = write_path(&g, path) {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("cached lcc to {}", path.display());
    }
    if g.num_nodes() < 2 {
        eprintln!("graph too small for betweenness");
        return ExitCode::FAILURE;
    }

    let cfg = KadabraConfig {
        epsilon: args.eps,
        delta: args.delta,
        seed: args.seed,
        ..Default::default()
    };
    // One telemetry registry observes the whole run: buffered events when a
    // Chrome trace was requested, counters/spans only otherwise.
    let tel = if args.trace.is_some() { Telemetry::tracing() } else { Telemetry::stats_only() };
    let result = match args.mode.as_str() {
        "seq" => kadabra_sequential_traced(&g, &cfg, &tel),
        "shared" => kadabra_shared_traced(&g, &cfg, args.threads, &tel),
        "mpi" => kadabra_mpi_flat_traced(&g, &cfg, args.ranks, &tel),
        "epoch-mpi" => kadabra_epoch_mpi_traced(
            &g,
            &cfg,
            ClusterShape {
                ranks: args.ranks,
                ranks_per_node: 2.min(args.ranks),
                threads_per_rank: args.threads,
            },
            &tel,
        ),
        other => {
            eprintln!("unknown mode: {other}");
            usage();
        }
    };

    if let Some(path) = &args.trace {
        if let Err(e) = write_chrome_trace(&tel, path) {
            eprintln!("error writing trace {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if args.metrics {
        eprint!("{}", tel.summary());
    }

    eprintln!(
        "done: {} samples (omega {}), {} epochs, diameter {:.2?} / calibration {:.2?} / sampling {:.2?}",
        result.samples,
        result.omega,
        result.stats.epochs,
        result.timings.diameter,
        result.timings.calibration,
        result.timings.adaptive_sampling,
    );

    if args.all {
        // Full score dump: `original_vertex_id score` per line on stdout.
        for (new_id, &orig) in mapping.iter().enumerate() {
            println!("{orig} {:.8}", result.scores[new_id]);
        }
    } else {
        println!("top {} vertices by approximate betweenness:", args.top);
        for (v, score) in result.top_k(args.top) {
            let orig = mapping[v as usize];
            println!("{orig} {score:.8}");
        }
    }
    ExitCode::SUCCESS
}

/// Writes the buffered telemetry events as Chrome trace-event JSON.
fn write_chrome_trace(tel: &Telemetry, path: &PathBuf) -> std::io::Result<()> {
    use std::io::Write;
    let events = tel.events();
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    chrome::write_trace(&events, tel.time_base(), &mut out)?;
    out.flush()?;
    eprintln!(
        "wrote {} trace events to {}{}",
        events.len(),
        path.display(),
        if tel.dropped_events() > 0 {
            format!(" ({} dropped: ring buffer full)", tel.dropped_events())
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Directed/weighted runs (sequential; paper footnote 1). These operate on
/// the raw input (no LCC reduction: component structure differs for
/// digraphs, and disconnected pairs are handled by the estimator).
fn run_variant(args: &Args) -> ExitCode {
    if args.directed && args.weighted {
        eprintln!("--directed and --weighted are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if args.trace.is_some() || args.metrics {
        eprintln!("note: --trace/--metrics cover the undirected modes only; ignoring");
    }
    let cfg = KadabraConfig {
        epsilon: args.eps,
        delta: args.delta,
        seed: args.seed,
        ..Default::default()
    };
    let file = match std::fs::File::open(&args.graph) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error opening {}: {e}", args.graph.display());
            return ExitCode::FAILURE;
        }
    };
    let result = if args.directed {
        match read_arc_list(file) {
            Ok(g) => {
                eprintln!("loaded digraph: {} vertices, {} arcs", g.num_nodes(), g.num_arcs());
                if g.num_nodes() < 2 {
                    eprintln!("graph too small for betweenness");
                    return ExitCode::FAILURE;
                }
                kadabra_directed(&g, &cfg)
            }
            Err(e) => {
                eprintln!("error reading arc list: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match read_weighted_edge_list(file) {
            Ok(g) => {
                eprintln!(
                    "loaded weighted graph: {} vertices, {} edges",
                    g.num_nodes(),
                    g.num_edges()
                );
                if g.num_nodes() < 2 {
                    eprintln!("graph too small for betweenness");
                    return ExitCode::FAILURE;
                }
                kadabra_weighted(&g, &cfg)
            }
            Err(e) => {
                eprintln!("error reading weighted edge list: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!(
        "done: {} samples (omega {}), {} epochs",
        result.samples, result.omega, result.stats.epochs
    );
    println!("top {} vertices by approximate betweenness:", args.top);
    for (v, score) in result.top_k(args.top) {
        println!("{v} {score:.8}");
    }
    ExitCode::SUCCESS
}
