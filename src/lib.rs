//! # kadabra-mpi
//!
//! A Rust reproduction of *"Scaling Betweenness Approximation to Billions of
//! Edges by MPI-based Adaptive Sampling"* (van der Grinten & Meyerhenke,
//! IPDPS 2020): the KADABRA betweenness-approximation algorithm, its
//! epoch-based shared-memory parallelization, and its MPI-style distributed
//! parallelization, together with every substrate they need (graph storage,
//! generators, a simulated MPI runtime and a calibrated cluster simulator).
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`graph`] — CSR graphs, traversal, diameter, generators ([`kadabra_graph`]).
//! * [`epoch`] — the wait-free epoch-based aggregation framework ([`kadabra_epoch`]).
//! * [`mpisim`] — the simulated MPI runtime ([`kadabra_mpisim`]).
//! * [`telemetry`] — wait-free tracing, phase metrics and benchmark
//!   artifacts ([`kadabra_telemetry`]).
//! * [`cluster`] — the calibrated discrete-event cluster simulator
//!   ([`kadabra_cluster`]).
//! * [`core`] — the KADABRA algorithms themselves ([`kadabra_core`]).
//! * [`baselines`] — Brandes exact betweenness and non-adaptive samplers
//!   ([`kadabra_baselines`]).
//! * [`server`] — the resident multi-tenant centrality service
//!   ([`kadabra_server`]).
//! * [`dynamic`] — incremental betweenness on streaming edge updates
//!   ([`kadabra_dynamic`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour.
//!
//! # Example
//!
//! Approximate betweenness with a (ε, δ) guarantee, then verify against the
//! exact algorithm:
//!
//! ```
//! use kadabra_mpi::baselines::brandes;
//! use kadabra_mpi::core::{kadabra_sequential, KadabraConfig};
//! use kadabra_mpi::graph::generators::{barabasi_albert, BaConfig};
//!
//! let g = barabasi_albert(BaConfig { n: 300, m: 3, seed: 7 });
//! let cfg = KadabraConfig::new(0.05, 0.1);
//! let approx = kadabra_sequential(&g, &cfg);
//! let exact = brandes(&g);
//! let worst = approx
//!     .scores
//!     .iter()
//!     .zip(&exact)
//!     .map(|(a, e)| (a - e).abs())
//!     .fold(0.0_f64, f64::max);
//! assert!(worst <= cfg.epsilon);
//! ```
//!
//! Run the same computation on a simulated MPI cluster (Algorithm 2):
//!
//! ```
//! use kadabra_mpi::core::{kadabra_epoch_mpi, ClusterShape, KadabraConfig};
//! use kadabra_mpi::graph::generators::{barabasi_albert, BaConfig};
//!
//! let g = barabasi_albert(BaConfig { n: 200, m: 3, seed: 1 });
//! let shape = ClusterShape { ranks: 2, ranks_per_node: 2, threads_per_rank: 2 };
//! let result = kadabra_epoch_mpi(&g, &KadabraConfig::new(0.1, 0.1), shape);
//! assert_eq!(result.scores.len(), 200);
//! ```

pub use kadabra_baselines as baselines;
pub use kadabra_cluster as cluster;
pub use kadabra_core as core;
pub use kadabra_dynamic as dynamic;
pub use kadabra_epoch as epoch;
pub use kadabra_graph as graph;
pub use kadabra_mpisim as mpisim;
pub use kadabra_server as server;
pub use kadabra_telemetry as telemetry;

/// Workspace version, for experiment logs.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
