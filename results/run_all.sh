#!/bin/bash
# Full experiment campaign. Human-readable tables land in results/*.txt;
# every binary also writes a machine-readable results/BENCH_<name>.json
# (kadabra-bench/v1 schema, see DESIGN.md §9) — except exp_table1, which
# benchmarks nothing. Override the JSON directory with KADABRA_RESULTS_DIR.
cd /root/repo
export KADABRA_SCALE=0.25
export KADABRA_SEED=42
export KADABRA_RESULTS_DIR=results
B=target/release
echo "== table1 ==" && $B/exp_table1 > results/table1.txt 2>results/table1.err
echo "== fig2 ==" && KADABRA_EPS=0.005 $B/exp_fig2 > results/fig2.txt 2>results/fig2.err
echo "== fig3 ==" && KADABRA_EPS=0.005 $B/exp_fig3 > results/fig3.txt 2>results/fig3.err
echo "== table2 ==" && KADABRA_EPS=0.005 $B/exp_table2 > results/table2.txt 2>results/table2.err
echo "== fig4 ==" && $B/exp_fig4 > results/fig4.txt 2>results/fig4.err
echo "== ablation_n0 ==" && $B/exp_ablation_n0 > results/ablation_n0.txt 2>results/ablation_n0.err
echo "== ablation_reduce ==" && $B/exp_ablation_reduce > results/ablation_reduce.txt 2>results/ablation_reduce.err
echo "== ablation_naive ==" && $B/exp_ablation_naive > results/ablation_naive.txt 2>results/ablation_naive.err
echo "== topk ==" && $B/exp_topk > results/topk.txt 2>results/topk.err
echo "== accuracy ==" && $B/exp_accuracy > results/accuracy.txt 2>results/accuracy.err
echo ALL_EXPERIMENTS_DONE
