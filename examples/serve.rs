//! Centrality as a service: load a graph as a resident tenant, let the
//! server refine it in the background, and answer queries from the shared
//! estimate cache — including a live socket round-trip.
//!
//! Run: `cargo run --release --example serve`

use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{rmat, RmatConfig};
use kadabra_mpi::server::{Server, ServerConfig, TenantConfig};
use std::io::{BufRead, BufReader, Write};

fn main() {
    // 1. A resident server; background refinement drives every tenant
    //    toward its schedule floor while queries are being answered.
    let server = Server::new(ServerConfig::default());

    // 2. Load a tenant: a named graph plus its accuracy schedule. Each
    //    entry of `schedule` becomes a frozen ε-stage — once refinement
    //    reaches it, `estimate` answers at that stage are bit-stable.
    let (social, _) = largest_component(&rmat(RmatConfig::graph500(10, 8, 7)));
    let cfg = TenantConfig { schedule: vec![0.1, 0.05, 0.025], ..TenantConfig::new(7) };
    server.add_tenant("social", &social, &cfg);

    // 3. Query in-process. `refine` is accuracy-on-deadline: it returns as
    //    soon as the requested ε is met (here: the 0.05 stage).
    let client = server.client();
    let outcome = client.refine("social", 0.05, 64).expect("0.05 is on the schedule");
    println!(
        "refined to ε = {:.4} in {} round(s), τ = {} samples, {} sampler ranks live",
        outcome.achieved, outcome.rounds_run, outcome.tau, outcome.live
    );

    let est = client.vertex("social", 0).expect("frontier published");
    println!(
        "vertex 0: betweenness ≈ {:.5} ∈ [{:.5}, {:.5}] (ε = {:.4}, round {})",
        est.estimate, est.lower, est.upper, est.eps, est.round
    );

    let mut scratch = client.scratch("social").expect("tenant exists");
    let mut top = Vec::new();
    let meta = client.topk_into("social", 5, &mut scratch, &mut top).expect("frontier");
    println!("top 5 at ε = {:.4}:", meta.eps);
    for (v, score) in &top {
        println!("  vertex {v:>6}: {score:.5}");
    }

    // 4. The same service over a socket: one line-delimited JSON request
    //    per query, one JSON reply per line.
    let sock = server.listen("127.0.0.1:0").expect("bind");
    let mut conn = std::net::TcpStream::connect(sock.addr()).expect("connect");
    conn.write_all(b"{\"op\":\"vertex\",\"tenant\":\"social\",\"v\":0}\n").expect("send");
    let mut reply = String::new();
    BufReader::new(conn.try_clone().expect("clone")).read_line(&mut reply).expect("recv");
    println!("wire reply: {}", reply.trim_end());

    server.shutdown();
}
