//! Directed and weighted betweenness — the paper's footnote 1 extensions.
//!
//! KADABRA's machinery only needs a uniform-shortest-path sampler; swapping
//! in the directed bidirectional BFS or the weighted Dijkstra sampler
//! extends the guarantee to directed/weighted betweenness unchanged.
//!
//! Run: `cargo run --release --example directed_weighted`

use kadabra_mpi::baselines::{brandes_directed, brandes_weighted};
use kadabra_mpi::core::{kadabra_directed, kadabra_weighted, KadabraConfig};
use kadabra_mpi::graph::digraph::DiGraph;
use kadabra_mpi::graph::weighted::WeightedGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cfg = KadabraConfig::new(0.02, 0.1);
    let mut rng = StdRng::seed_from_u64(11);

    // --- Directed: a random "web graph" with asymmetric links. ---
    let n = 600usize;
    let mut arcs = Vec::new();
    for u in 0..n as u32 {
        for _ in 0..4 {
            let v = rng.gen_range(0..n as u32);
            if u != v {
                arcs.push((u, v));
            }
        }
    }
    let dg = DiGraph::from_arcs(n, &arcs);
    let dr = kadabra_directed(&dg, &cfg);
    let exact = brandes_directed(&dg);
    let worst = dr.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
    println!(
        "directed: {} vertices, {} arcs -> {} samples, max |err| vs exact = {worst:.4} (eps {})",
        dg.num_nodes(),
        dg.num_arcs(),
        dr.samples,
        cfg.epsilon
    );

    // --- Weighted: a toy road network where the "highway" reroutes flow. ---
    // Grid-ish city streets (weight 3) plus a diagonal highway (weight 1).
    let side = 12u32;
    let id = |r: u32, c: u32| r * side + c;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                edges.push((id(r, c), id(r, c + 1), 3));
            }
            if r + 1 < side {
                edges.push((id(r, c), id(r + 1, c), 3));
            }
        }
    }
    for i in 0..side - 1 {
        edges.push((id(i, i), id(i + 1, i + 1), 1)); // the highway
    }
    let wg = WeightedGraph::from_edges((side * side) as usize, &edges);
    let wr = kadabra_weighted(&wg, &cfg);
    let wexact = brandes_weighted(&wg);
    let worst = wr.scores.iter().zip(&wexact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
    println!(
        "weighted: {} vertices, {} edges -> {} samples, max |err| vs exact = {worst:.4}",
        wg.num_nodes(),
        wg.num_edges(),
        wr.samples
    );
    println!("\ntop 5 weighted-betweenness vertices (expect the highway diagonal):");
    for (v, score) in wr.top_k(5) {
        let (r, c) = (v / side, v % side);
        println!("  ({r:>2},{c:>2}): {score:.4}");
    }
}
