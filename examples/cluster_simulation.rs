//! Simulating the paper's 16-node cluster on a laptop: runs the calibrated
//! discrete-event simulator across node counts and prints the projected
//! speedup of the epoch-based MPI algorithm over the shared-memory state of
//! the art — a miniature of the paper's Figure 2a for one instance.
//!
//! Run: `cargo run --release --example cluster_simulation`

use kadabra_mpi::cluster::{simulate, ClusterSpec, CostModel, ReduceStrategy, SimConfig};
use kadabra_mpi::core::{prepare, ClusterShape, KadabraConfig};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{rmat, RmatConfig};

fn main() {
    let g_raw = rmat(RmatConfig::graph500(13, 8, 5));
    let (g, _) = largest_component(&g_raw);
    let cfg = KadabraConfig::new(0.005, 0.1);
    println!("instance: R-MAT scale 13, {} vertices, {} edges", g.num_nodes(), g.num_edges());

    // Real preparation (diameter, omega, calibration) and cost measurement.
    let prepared = prepare(&g, &cfg);
    let cost = CostModel::measure(&g, &cfg, 300);
    println!(
        "measured: mean sample {:.0}us, diameter phase {:.1}ms, omega {}",
        cost.mean_sample_ns() / 1000.0,
        cost.diameter_ns as f64 / 1e6,
        prepared.omega
    );

    let spec = ClusterSpec::default();
    // Baseline: Ref. [24] — one process spanning both sockets of one node.
    let baseline_cfg = SimConfig {
        shape: ClusterShape { ranks: 1, ranks_per_node: 1, threads_per_rank: 24 },
        strategy: ReduceStrategy::IbarrierThenBlockingReduce,
        numa_penalty: true,
        steal: false,
    };
    let baseline = simulate(&g, &cfg, &prepared, &baseline_cfg, &spec, &cost);
    println!(
        "\nshared-memory baseline (1 node x 24 threads, NUMA penalty): ADS {:.3}s, {} epochs",
        baseline.ads_ns as f64 / 1e9,
        baseline.epochs
    );

    println!(
        "\n{:>6} {:>10} {:>10} {:>8} {:>9} {:>12}",
        "nodes", "ADS (s)", "total (s)", "epochs", "speedup", "MiB/epoch"
    );
    for nodes in [1usize, 2, 4, 8, 16] {
        let sim_cfg = SimConfig {
            shape: ClusterShape { ranks: 2 * nodes, ranks_per_node: 2, threads_per_rank: 12 },
            strategy: ReduceStrategy::IbarrierThenBlockingReduce,
            numa_penalty: false,
            steal: false,
        };
        let r = simulate(&g, &cfg, &prepared, &sim_cfg, &spec, &cost);
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>8} {:>8.2}x {:>12.1}",
            nodes,
            r.ads_ns as f64 / 1e9,
            r.total_ns() as f64 / 1e9,
            r.epochs,
            baseline.total_ns() as f64 / r.total_ns() as f64,
            r.comm_mib_per_epoch()
        );
    }
    println!("\n(one rank per NUMA socket, 12 threads each; Ibarrier + blocking reduce)");
}
