//! Identifying the most central actors of a social network — the paper's
//! motivating use case (Section I cites key-actor identification in covert
//! and organizational networks).
//!
//! The example shows why small ε matters: with ε = 0.01 only a handful of
//! vertices are reliably separated from zero (the paper counts 38 of 41M
//! twitter vertices above 0.01), while ε = 0.001-class accuracy resolves an
//! order of magnitude more of the ranking. It also demonstrates the
//! epoch-based shared-memory algorithm as a drop-in for the sequential one.
//!
//! Run: `cargo run --release --example social_topk`

use kadabra_mpi::core::{
    confident_top_k, kadabra_sequential, kadabra_shared, prepare, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{hyperbolic, HyperbolicConfig};

fn main() {
    // A hyperbolic random graph has the power-law hubs of a real social
    // network (power-law exponent 3, like the paper's synthetic inputs).
    let g = hyperbolic(HyperbolicConfig { n: 20_000, avg_deg: 12.0, alpha: 1.0, seed: 7 });
    let (lcc, _) = largest_component(&g);
    println!("social network proxy: {} vertices, {} edges", lcc.num_nodes(), lcc.num_edges());

    for eps in [0.01, 0.002] {
        let cfg = KadabraConfig::new(eps, 0.1);
        let result = kadabra_sequential(&lcc, &cfg);
        let above = result.count_above(eps);
        println!(
            "\neps = {eps}: {} samples, {} vertices with score > eps (reliably nonzero)",
            result.samples, above
        );
        println!("  top 5:");
        for (v, score) in result.top_k(5) {
            println!("    vertex {v:>6}: {score:.5} (degree {})", lcc.degree(v));
        }
    }

    // Which vertices are *provably* in the top 10? Confidence intervals
    // separate the clear winners from the statistical ties.
    let cfg = KadabraConfig::new(0.002, 0.1);
    let prepared = prepare(&lcc, &cfg);
    let result = kadabra_sequential(&lcc, &cfg);
    let topk = confident_top_k(&result, &prepared.calibration, 10);
    println!(
        "\nprovable top-10 membership at eps={}: {} confirmed, {} undecided",
        cfg.epsilon,
        topk.confirmed.len(),
        topk.undecided.len()
    );
    for ci in topk.confirmed.iter().take(3) {
        println!(
            "  vertex {:>6}: [{:.5}, {:.5}] (point {:.5})",
            ci.vertex, ci.lower, ci.upper, ci.estimate
        );
    }

    // The same computation on 4 threads with the epoch-based framework —
    // same guarantee, same API shape.
    let cfg = KadabraConfig::new(0.005, 0.1);
    let par = kadabra_shared(&lcc, &cfg, 4);
    println!(
        "\nepoch-based shared-memory run (T=4): {} samples in {} epochs, {:?} ADS time",
        par.samples, par.stats.epochs, par.timings.adaptive_sampling
    );
    println!(
        "aggregation volume: {:.1} MiB over {} epochs",
        par.stats.comm_bytes as f64 / (1024.0 * 1024.0),
        par.stats.epochs
    );
}
