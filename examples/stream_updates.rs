//! Streaming updates: converge a dynamic tenant, mutate its graph through
//! the delta log, and keep answering from the maintained sample population
//! — only the invalidated samples are redrawn (`DESIGN.md` §14).
//!
//! Run: `cargo run --release --example stream_updates`

use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{rmat, RmatConfig};
use kadabra_mpi::graph::NodeId;
use kadabra_mpi::server::{Server, ServerConfig, TenantConfig};
use std::io::{BufRead, BufReader, Write};

/// First `want` vertex pairs (u < v) absent from the tenant's base graph.
fn non_edges(g: &kadabra_mpi::graph::Graph, want: usize) -> Vec<(NodeId, NodeId)> {
    let n = g.num_nodes() as NodeId;
    let mut out = Vec::with_capacity(want);
    'scan: for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                out.push((u, v));
                if out.len() == want {
                    break 'scan;
                }
            }
        }
    }
    out
}

fn main() {
    // 1. A resident server hosting one *dynamic* tenant: alongside the
    //    estimate cache it keeps a delta log + overlay view, so the graph
    //    can change while the sampled state stays maintained.
    let server = Server::new(ServerConfig::default());
    let (social, _) = largest_component(&rmat(RmatConfig::graph500(10, 8, 7)));
    let cfg = TenantConfig { dynamic: true, schedule: vec![0.1, 0.05], ..TenantConfig::new(7) };
    server.add_tenant("social", &social, &cfg);

    // 2. Converge on the base graph first, exactly like a static tenant.
    let client = server.client();
    let outcome = client.refine("social", 0.1, 64).expect("0.1 is on the schedule");
    println!(
        "base graph: ε = {:.4} after {} round(s), τ = {} samples",
        outcome.achieved, outcome.rounds_run, outcome.tau
    );
    let before = client.vertex("social", 0).expect("frontier published");

    // 3. One update batch, original vertex ids: drop two existing edges,
    //    add two absent ones. The delta log validates and sequences the
    //    batch; bounded BFS sweeps classify every retained sample; only
    //    the invalidated ones are redrawn (τ is conserved), and the cache
    //    generation is bumped so no reader ever mixes old and new answers.
    let deletes: Vec<(NodeId, NodeId)> = social.edges().take(2).collect();
    let inserts = non_edges(&social, 2);
    let up =
        client.update("social", &inserts, &deletes, 64).expect("valid batch on a dynamic tenant");
    println!(
        "update #{}: {} of {} samples invalidated ({} retained), ε = {:.4}, \
         generation {}, compacted: {}",
        up.seq,
        up.invalidated,
        up.invalidated + up.retained,
        up.retained,
        up.achieved,
        up.generation,
        up.compacted
    );

    // 4. Queries now answer for the *mutated* graph — same wait-free read
    //    path, one generation newer.
    let after = client.vertex("social", 0).expect("post-update frontier");
    println!(
        "vertex 0: {:.5} (ε = {:.4}) -> {:.5} (ε = {:.4})",
        before.estimate, before.eps, after.estimate, after.eps
    );

    // 5. The same op over the socket: re-insert one of the deleted edges.
    let sock = server.listen("127.0.0.1:0").expect("bind");
    let mut conn = std::net::TcpStream::connect(sock.addr()).expect("connect");
    let (u, v) = deletes[0];
    let req = format!(
        "{{\"op\":\"update\",\"tenant\":\"social\",\"inserts\":[[{u},{v}]],\"refine_rounds\":64}}\n"
    );
    conn.write_all(req.as_bytes()).expect("send");
    let mut reply = String::new();
    BufReader::new(conn.try_clone().expect("clone")).read_line(&mut reply).expect("recv");
    println!("wire reply: {}", reply.trim_end());

    server.shutdown();
}
