//! Road networks vs complex networks — the two behavioural extremes of the
//! paper's evaluation (Table II): high-diameter road networks need orders of
//! magnitude more samples (large ω, many epochs) than low-diameter social
//! networks of comparable size, because ω grows with log₂ of the vertex
//! diameter and the per-sample bidirectional BFS explores much more of a
//! high-diameter graph.
//!
//! Run: `cargo run --release --example road_vs_social`

use kadabra_mpi::core::{kadabra_sequential, KadabraConfig};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::diameter::diameter;
use kadabra_mpi::graph::generators::{grid, rmat, GridConfig, RmatConfig};
use std::time::Instant;

fn main() {
    let road = grid(GridConfig { rows: 120, cols: 100, diagonal_prob: 0.05, seed: 1 });
    let social_raw = rmat(RmatConfig::graph500(13, 4, 1));
    let (social, _) = largest_component(&social_raw);

    let cfg = KadabraConfig::new(0.01, 0.1);
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>10} {:>8} {:>10}",
        "instance", "|V|", "|E|", "diameter", "omega", "samples", "ADS time"
    );
    for (name, g) in [("road (grid)", &road), ("social (R-MAT)", &social)] {
        let d = diameter(g, 0, 64);
        let t = Instant::now();
        let r = kadabra_sequential(g, &cfg);
        let elapsed = t.elapsed();
        println!(
            "{:<18} {:>9} {:>9} {:>9} {:>10} {:>8} {:>9.2?}",
            name,
            g.num_nodes(),
            g.num_edges(),
            format!("{}..{}", d.lower, d.upper),
            r.omega,
            r.samples,
            elapsed
        );
    }
    println!();
    println!("Expected: the road network's diameter (and hence omega and sample count)");
    println!("dwarfs the social network's — exactly why the paper calls road networks");
    println!("'previously very challenging inputs' where the MPI speedup is largest.");
}
