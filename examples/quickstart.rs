//! Quickstart: approximate betweenness centrality on a synthetic social
//! network in a few lines.
//!
//! Run: `cargo run --release --example quickstart`

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::core::{kadabra_sequential, KadabraConfig};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{rmat, RmatConfig};

fn main() {
    // 1. Build a graph (here: a Graph500-style R-MAT social-network proxy;
    //    use `kadabra_mpi::graph::io::read_path` for edge-list files).
    let g = rmat(RmatConfig::graph500(12, 8, 42));
    let (lcc, _) = largest_component(&g);
    println!(
        "graph: {} vertices, {} edges (largest connected component)",
        lcc.num_nodes(),
        lcc.num_edges()
    );

    // 2. Configure the approximation: ±0.01 absolute error with probability
    //    at least 90%.
    let cfg = KadabraConfig::new(0.01, 0.1);

    // 3. Run KADABRA.
    let result = kadabra_sequential(&lcc, &cfg);
    println!(
        "KADABRA: {} samples (cap ω = {}), {} epochs, {:?} total",
        result.samples,
        result.omega,
        result.stats.epochs,
        result.timings.total()
    );

    // 4. Inspect the ranking.
    println!("\ntop 5 vertices by approximate betweenness:");
    for (v, score) in result.top_k(5) {
        println!("  vertex {v:>6}: {score:.5}");
    }

    // 5. (Optional) compare against exact Brandes — feasible at this size.
    let exact = brandes(&lcc);
    let max_err =
        result.scores.iter().zip(&exact).map(|(a, e)| (a - e).abs()).fold(0.0f64, f64::max);
    println!("\nmax |approx - exact| = {max_err:.5} (guarantee: <= {} w.p. 0.9)", cfg.epsilon);
}
