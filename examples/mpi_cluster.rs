//! Running the *functional* MPI algorithms (not the DES): Algorithm 1 and
//! Algorithm 2 execute on the in-process simulated MPI runtime with real OS
//! threads per rank — every collective, epoch transition and termination
//! broadcast actually happens.
//!
//! Run: `cargo run --release --example mpi_cluster`

use kadabra_mpi::core::{
    kadabra_epoch_mpi, kadabra_mpi_flat, kadabra_sequential, ClusterShape, KadabraConfig,
};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};

fn main() {
    let g_raw = gnm(GnmConfig { n: 2_000, m: 12_000, seed: 3 });
    let (g, _) = largest_component(&g_raw);
    let cfg = KadabraConfig::new(0.02, 0.1);
    println!("instance: G(n,m), {} vertices, {} edges\n", g.num_nodes(), g.num_edges());

    let seq = kadabra_sequential(&g, &cfg);
    println!("sequential reference: {} samples, top vertex {:?}", seq.samples, seq.top_k(1)[0]);

    // Algorithm 1: four single-threaded MPI ranks, non-blocking reduce +
    // broadcast overlapped with sampling.
    let flat = kadabra_mpi_flat(&g, &cfg, 4);
    println!(
        "\nAlgorithm 1 (4 ranks): {} samples, {} epochs, {:.1} KiB communicated",
        flat.samples,
        flat.stats.epochs,
        flat.stats.comm_bytes as f64 / 1024.0
    );

    // Algorithm 2: 4 ranks on 2 "compute nodes" (2 ranks/node, as the paper
    // places one rank per NUMA socket), 2 epoch-framework threads per rank.
    let shape = ClusterShape { ranks: 4, ranks_per_node: 2, threads_per_rank: 2 };
    let epoch = kadabra_epoch_mpi(&g, &cfg, shape);
    println!(
        "Algorithm 2 (2 nodes x 2 ranks x 2 threads): {} samples, {} epochs, {:.1} KiB communicated",
        epoch.samples,
        epoch.stats.epochs,
        epoch.stats.comm_bytes as f64 / 1024.0
    );

    // All three must agree within 2*eps on every vertex (each is within eps
    // of the truth with high probability).
    let agree =
        seq.scores.iter().zip(&epoch.scores).all(|(a, b)| (a - b).abs() <= 2.0 * cfg.epsilon);
    println!("\nsequential and Algorithm 2 agree within 2*eps everywhere: {agree}");
}
