//! Elastic scale-out, end to end: a run that grows its world mid-flight
//! (standby ranks admitted at a round boundary, ledgers rebalanced, the
//! (ε, δ) guarantee intact), a straggler shedding quota to work stealing,
//! and a resident tenant resizing its sampler pool under a fresh cache
//! generation — converge, grow, re-query, shed back.
//!
//! Run: `cargo run --release --example elastic`

use kadabra_mpi::baselines::brandes;
use kadabra_mpi::core::{kadabra_mpi_flat_elastic, ElasticOptions, KadabraConfig};
use kadabra_mpi::graph::components::largest_component;
use kadabra_mpi::graph::generators::{gnm, GnmConfig};
use kadabra_mpi::mpisim::FaultPlan;
use kadabra_mpi::server::{Server, ServerConfig, TenantConfig};

fn main() {
    // ------------------------------------------------------------------
    // 1. The elastic driver: 2 founding ranks converge while 2 standbys
    //    wait parked; the plan admits both at round 1 and marks rank 1 as
    //    a 4× straggler, so helpers steal most of its per-round quota.
    // ------------------------------------------------------------------
    let (g, _) = largest_component(&gnm(GnmConfig { n: 120, m: 360, seed: 7 }));
    let cfg = KadabraConfig { epsilon: 0.05, delta: 0.1, seed: 7, ..Default::default() };
    let opts = ElasticOptions::all(FaultPlan::ideal(7).with_join(1, 2).with_straggler(1, 4));
    let r = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &opts);
    r.assert_invariants(); // epoch-gap + sample-conservation audits pass
    println!(
        "elastic driver: {} ranks joined mid-run, {} samples stolen from the straggler, \
         τ = {} over {} epochs",
        r.ranks_joined, r.samples_stolen, r.result.samples, r.result.stats.epochs
    );

    // The guarantee survives the membership change: compare to exact
    // Brandes on this small instance.
    let exact = brandes(&g);
    let worst =
        r.result.scores.iter().zip(&exact).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("  max error vs exact Brandes: {worst:.4} (ε = {})", cfg.epsilon);

    // Bit-reproducible from (plan, seed): the grow and the steals replay.
    let again = kadabra_mpi_flat_elastic(&g, &cfg, 2, 2, &opts);
    assert_eq!(r.result.scores, again.result.scores);
    println!("  replay is bit-identical across the grow");

    // ------------------------------------------------------------------
    // 2. The resident server: converge a tenant, grow its pool, re-query
    //    under the new cache generation, then shed back to provisioned
    //    size. τ is conserved across both resizes.
    // ------------------------------------------------------------------
    let server = Server::new(ServerConfig::default());
    let cfg = TenantConfig { schedule: vec![0.25, 0.1, 0.01], ..TenantConfig::new(7) };
    server.add_tenant("social", &g, &cfg);
    let client = server.client();

    let out = client.refine("social", 0.1, 64).expect("0.1 is on the schedule");
    println!(
        "tenant: converged to ε = {:.4} with {} sampler ranks, τ = {}",
        out.achieved, out.live, out.tau
    );

    let tenant = server.tenant("social").expect("tenant exists");
    let w = server.telemetry().writer(0, 0);
    let grown = tenant.resize(4, server.telemetry(), &w).expect("static pools resize");
    println!(
        "  grow: +{} ranks ({} live), cache generation {} — τ conserved at {}",
        grown.joined, grown.live, grown.generation, grown.tau
    );

    // Queries answer immediately from the re-published frontier, and the
    // wider pool refines on toward the schedule floor.
    let est = client.vertex("social", 0).expect("post-grow frontier published");
    println!("  vertex 0 after grow: {:.5} ∈ [{:.5}, {:.5}]", est.estimate, est.lower, est.upper);
    let out = client.refine("social", 0.01, 64).expect("0.01 is on the schedule");
    println!("  refined to ε = {:.4} at the wider size, τ = {}", out.achieved, out.tau);

    let shed = tenant.resize(grown.live - grown.joined, server.telemetry(), &w).expect("sheds");
    println!(
        "  shed: -{} ranks back to {} (their ledgers folded into a survivor), τ = {}",
        shed.shed, shed.live, shed.tau
    );
    let est = client.vertex("social", 0).expect("post-shed frontier published");
    println!("  vertex 0 after shed: {:.5} ∈ [{:.5}, {:.5}]", est.estimate, est.lower, est.upper);

    server.shutdown();
}
